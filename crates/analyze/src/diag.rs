//! Structured diagnostics: severities, findings, and rendered reports.

use core::fmt;
use rmd_machine::mdl::Span;

/// How serious a finding is.
///
/// Ordered most-severe-first so `min` over a report yields the worst
/// finding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// The description is broken: a scheduler driven by it would make
    /// wrong decisions, or the pipeline would reject it outright.
    Error,
    /// Almost certainly a mistake in the description, but one the
    /// pipeline tolerates.
    Warning,
    /// An observation — redundancy reports, merge suggestions.
    Info,
}

impl Severity {
    /// The lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding: a lint id, a severity, a message, and (when the subject
/// came from MDL source) the declaration span it points at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Catalog id, e.g. `RMD-L001`.
    pub id: &'static str,
    /// Severity the finding was reported at.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source position of the offending declaration, if known.
    pub span: Option<Span>,
}

/// Every finding for one subject (a file, a built-in model, a trace).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Report {
    /// What was analyzed — a path, a model name, or a trace label.
    pub subject: String,
    /// Content fingerprint of the analyzed machine (`rmd-` + 16 hex
    /// digits), when the subject expanded to a valid description. This
    /// is the same key `rmd serve` caches under and `rmd certify` binds
    /// certificates to, so findings from all three tools can be joined.
    pub fingerprint: Option<String>,
    /// The findings, in registry order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            fingerprint: None,
            diagnostics: Vec::new(),
        }
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// The most severe finding present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).min()
    }

    /// Escalates every warning to an error (`--deny warnings`).
    pub fn escalate_warnings(&mut self) {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
    }

    /// Renders the report for terminals: a one-line summary followed by
    /// one indented line per finding, positions first when known.
    pub fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "{}: clean", self.subject);
            return out;
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} info",
            self.subject,
            self.errors(),
            self.warnings(),
            self.count(Severity::Info)
        );
        for d in &self.diagnostics {
            let _ = write!(out, "  {}[{}] ", d.severity, d.id);
            if let Some(s) = d.span {
                let _ = write!(out, "{}:{}: ", s.line, s.column);
            }
            let _ = writeln!(out, "{}", d.message);
        }
        out
    }

    /// Renders the report as a single JSON object on one line:
    /// `{"subject":…,"errors":N,"warnings":N,"infos":N,"diagnostics":[…]}`.
    /// Spans contribute `"line"`/`"column"` keys; spanless findings omit
    /// them.
    pub fn render_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"subject\":\"{}\",", json_escape(&self.subject));
        if let Some(fp) = &self.fingerprint {
            let _ = write!(out, "\"fingerprint\":\"{}\",", json_escape(fp));
        }
        let _ = write!(
            out,
            "\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.errors(),
            self.warnings(),
            self.count(Severity::Info)
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
                json_escape(d.id),
                d.severity,
                json_escape(&d.message)
            );
            if let Some(s) = d.span {
                let _ = write!(out, ",\"line\":{},\"column\":{}", s.line, s.column);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the report as a minimal SARIF 2.1.0 log so findings
    /// surface in GitHub code scanning. One run, driver `rmd`; each
    /// diagnostic becomes a result with its catalog id as `ruleId`, the
    /// subject as the artifact URI, and spans as start line/column.
    /// Severities map to SARIF levels: error → `error`, warning →
    /// `warning`, info → `note`.
    pub fn render_sarif(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
        out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":");
        out.push_str("{\"name\":\"rmd\",\"informationUri\":");
        out.push_str("\"https://github.com/rmd-contributors/rmd\"}},\"results\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let level = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
                Severity::Info => "note",
            };
            let _ = write!(
                out,
                "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}}",
                json_escape(d.id),
                json_escape(&d.message),
                json_escape(&self.subject)
            );
            if let Some(s) = d.span {
                let _ = write!(
                    out,
                    ",\"region\":{{\"startLine\":{},\"startColumn\":{}}}",
                    s.line, s.column
                );
            }
            out.push_str("}}]}");
        }
        out.push_str("]}]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(id: &'static str, sev: Severity, msg: &str) -> Diagnostic {
        Diagnostic {
            id,
            severity: sev,
            message: msg.to_owned(),
            span: None,
        }
    }

    #[test]
    fn counts_and_worst() {
        let mut r = Report::new("m");
        assert_eq!(r.worst(), None);
        r.diagnostics.push(diag("RMD-L001", Severity::Warning, "w"));
        r.diagnostics.push(diag("RMD-L009", Severity::Info, "i"));
        assert_eq!((r.errors(), r.warnings()), (0, 1));
        assert_eq!(r.worst(), Some(Severity::Warning));
        r.escalate_warnings();
        assert_eq!((r.errors(), r.warnings()), (1, 0));
        assert_eq!(r.worst(), Some(Severity::Error));
    }

    #[test]
    fn text_render_is_clean_or_itemized() {
        let mut r = Report::new("m");
        assert_eq!(r.render_text(), "m: clean\n");
        r.diagnostics.push(diag("RMD-L006", Severity::Error, "empty table"));
        let t = r.render_text();
        assert!(t.contains("1 error(s)"), "{t}");
        assert!(t.contains("error[RMD-L006] empty table"), "{t}");
    }

    #[test]
    fn json_includes_fingerprint_only_when_known() {
        let mut r = Report::new("fig1");
        assert!(!r.render_json().contains("fingerprint"));
        r.fingerprint = Some("rmd-0123456789abcdef".into());
        let j = r.render_json();
        assert!(
            j.starts_with("{\"subject\":\"fig1\",\"fingerprint\":\"rmd-0123456789abcdef\","),
            "{j}"
        );
    }

    #[test]
    fn sarif_maps_severities_and_spans() {
        use rmd_machine::mdl::Span;
        let mut r = Report::new("machines/example.mdl");
        r.diagnostics.push(diag("RMD-L006", Severity::Error, "empty"));
        r.diagnostics.push(Diagnostic {
            id: "RMD-L009",
            severity: Severity::Info,
            message: "redundancy".into(),
            span: Some(Span {
                start: 20,
                end: 25,
                line: 3,
                column: 7,
            }),
        });
        let s = r.render_sarif();
        assert!(s.contains("\"version\":\"2.1.0\""), "{s}");
        assert!(s.contains("\"ruleId\":\"RMD-L006\",\"level\":\"error\""), "{s}");
        assert!(s.contains("\"ruleId\":\"RMD-L009\",\"level\":\"note\""), "{s}");
        assert!(s.contains("\"region\":{\"startLine\":3,\"startColumn\":7}"), "{s}");
        assert!(s.contains("\"uri\":\"machines/example.mdl\""), "{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let mut r = Report::new("a\"b");
        r.diagnostics.push(diag(
            "RMD-L001",
            Severity::Warning,
            "line1\nline2\ttab \\ \u{1}",
        ));
        let j = r.render_json();
        assert!(j.contains("\"subject\":\"a\\\"b\""), "{j}");
        assert!(j.contains("line1\\nline2\\ttab \\\\ \\u0001"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
