//! Structured diagnostics: severities, findings, and rendered reports.

use core::fmt;
use rmd_machine::mdl::Span;

/// How serious a finding is.
///
/// Ordered most-severe-first so `min` over a report yields the worst
/// finding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// The description is broken: a scheduler driven by it would make
    /// wrong decisions, or the pipeline would reject it outright.
    Error,
    /// Almost certainly a mistake in the description, but one the
    /// pipeline tolerates.
    Warning,
    /// An observation — redundancy reports, merge suggestions.
    Info,
}

impl Severity {
    /// The lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding: a lint id, a severity, a message, and (when the subject
/// came from MDL source) the declaration span it points at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Catalog id, e.g. `RMD-L001`.
    pub id: &'static str,
    /// Severity the finding was reported at.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source position of the offending declaration, if known.
    pub span: Option<Span>,
}

/// Every finding for one subject (a file, a built-in model, a trace).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Report {
    /// What was analyzed — a path, a model name, or a trace label.
    pub subject: String,
    /// The findings, in registry order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// The most severe finding present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).min()
    }

    /// Escalates every warning to an error (`--deny warnings`).
    pub fn escalate_warnings(&mut self) {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
    }

    /// Renders the report for terminals: a one-line summary followed by
    /// one indented line per finding, positions first when known.
    pub fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "{}: clean", self.subject);
            return out;
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} info",
            self.subject,
            self.errors(),
            self.warnings(),
            self.count(Severity::Info)
        );
        for d in &self.diagnostics {
            let _ = write!(out, "  {}[{}] ", d.severity, d.id);
            if let Some(s) = d.span {
                let _ = write!(out, "{}:{}: ", s.line, s.column);
            }
            let _ = writeln!(out, "{}", d.message);
        }
        out
    }

    /// Renders the report as a single JSON object on one line:
    /// `{"subject":…,"errors":N,"warnings":N,"infos":N,"diagnostics":[…]}`.
    /// Spans contribute `"line"`/`"column"` keys; spanless findings omit
    /// them.
    pub fn render_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"subject\":\"{}\",\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            json_escape(&self.subject),
            self.errors(),
            self.warnings(),
            self.count(Severity::Info)
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
                json_escape(d.id),
                d.severity,
                json_escape(&d.message)
            );
            if let Some(s) = d.span {
                let _ = write!(out, ",\"line\":{},\"column\":{}", s.line, s.column);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(id: &'static str, sev: Severity, msg: &str) -> Diagnostic {
        Diagnostic {
            id,
            severity: sev,
            message: msg.to_owned(),
            span: None,
        }
    }

    #[test]
    fn counts_and_worst() {
        let mut r = Report::new("m");
        assert_eq!(r.worst(), None);
        r.diagnostics.push(diag("RMD-L001", Severity::Warning, "w"));
        r.diagnostics.push(diag("RMD-L009", Severity::Info, "i"));
        assert_eq!((r.errors(), r.warnings()), (0, 1));
        assert_eq!(r.worst(), Some(Severity::Warning));
        r.escalate_warnings();
        assert_eq!((r.errors(), r.warnings()), (1, 0));
        assert_eq!(r.worst(), Some(Severity::Error));
    }

    #[test]
    fn text_render_is_clean_or_itemized() {
        let mut r = Report::new("m");
        assert_eq!(r.render_text(), "m: clean\n");
        r.diagnostics.push(diag("RMD-L006", Severity::Error, "empty table"));
        let t = r.render_text();
        assert!(t.contains("1 error(s)"), "{t}");
        assert!(t.contains("error[RMD-L006] empty table"), "{t}");
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let mut r = Report::new("a\"b");
        r.diagnostics.push(diag(
            "RMD-L001",
            Severity::Warning,
            "line1\nline2\ttab \\ \u{1}",
        ));
        let j = r.render_json();
        assert!(j.contains("\"subject\":\"a\\\"b\""), "{j}");
        assert!(j.contains("line1\\nline2\\ttab \\\\ \\u0001"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
