//! Static analysis for machine descriptions and query traces.
//!
//! Two analysis families, one diagnostic vocabulary:
//!
//! * **Description lints** (`RMD-L001` …) inspect a machine description
//!   — parsed MDL with its pre-expansion alternative structure and
//!   declaration spans, or an already-built
//!   [`MachineDescription`](rmd_machine::MachineDescription) — for
//!   declaration smells (dead, duplicate, dominated resources; dominated
//!   alternatives; empty or over-long tables), violations of the
//!   forbidden-matrix invariants the pipeline rests on (paper §3), and
//!   redundancy headroom the reduction could reclaim (paper §5). See the
//!   [`lints`] catalog.
//! * **Protocol checks** (`RMD-P001` …) statically validate recorded
//!   [`QueryTrace`](rmd_query::QueryTrace)s — the same format
//!   `rmd-fault`'s differential replayer records — against the paper's
//!   `check`/`assign`/`assign&free`/`free` query protocol (§7), without
//!   running any query module. See [`check_trace`].
//! * **Schedule certifiers** (`RMD-S001` …) re-validate an emitted
//!   modulo schedule against the *unreduced* description by
//!   re-simulating its resource usage directly from reservation tables,
//!   so IMS output is never trusted on the reduced tables alone. See
//!   [`certify_schedule`] and [`certify_schedule_pair`].
//!
//! Findings are [`Diagnostic`]s with a stable catalog id, a
//! [`Severity`], and (for MDL input) the declaration span to point an
//! editor at; a [`Report`] renders them as terminal text or one-line
//! JSON. The `rmd lint` command and the `lint-machines` CI job are thin
//! wrappers over [`lint_alt`] / [`lint_machine`].
//!
//! # Example
//!
//! ```
//! use rmd_analyze::{lint_alt, Severity};
//! use rmd_machine::mdl;
//!
//! let src = r#"machine "m" {
//!     resources { alu; spare; }
//!     op add { use alu @ 0; }
//! }"#;
//! let (d, map) = mdl::parse_with_source_map(src).unwrap();
//! let report = lint_alt(&d, Some(&map));
//! // `spare` is never used: RMD-L001, a warning.
//! assert_eq!(report.errors(), 0);
//! assert!(report.diagnostics.iter().any(|d| d.id == "RMD-L001"));
//! assert_eq!(report.worst(), Some(Severity::Warning));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod diag;
mod lint;
pub mod lints;
mod model;
mod protocol;
mod schedule;

pub use diag::{Diagnostic, Report, Severity};
pub use lint::{all_lints, lint_alt, lint_machine, lint_subject, Lint, INVALID_MACHINE};
pub use model::{LintSubject, OpGroup};
pub use protocol::{check_trace, violation_id};
pub use schedule::{
    certify_schedule, certify_schedule_pair, SCHED_DEPENDENCE, SCHED_REDUCED_ONLY, SCHED_RESOURCE,
};
