//! The lint trait, the registry, and the lint runners.

use crate::diag::{Diagnostic, Report, Severity};
use crate::lints;
use crate::model::LintSubject;
use rmd_machine::alternatives::AltDescription;
use rmd_machine::mdl::SourceMap;
use rmd_machine::MachineDescription;

/// Id of the pseudo-lint reporting that a parsed description does not
/// expand into a valid machine at all.
pub const INVALID_MACHINE: &str = "RMD-L000";

/// One description lint.
///
/// A lint inspects a [`LintSubject`] and appends [`Diagnostic`]s; it
/// must not assume the subject expanded (matrix lints return early when
/// [`LintSubject::machine`] is `None`).
pub trait Lint {
    /// Catalog id, e.g. `RMD-L001`.
    fn id(&self) -> &'static str;
    /// Short kebab-case name, e.g. `dead-resource`.
    fn name(&self) -> &'static str;
    /// Severity this lint reports at by default.
    fn default_severity(&self) -> Severity;
    /// Runs the lint, appending findings to `out`.
    fn run(&self, subject: &LintSubject, out: &mut Vec<Diagnostic>);
}

/// Every registered description lint, in catalog order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(lints::DeadResource),
        Box::new(lints::DuplicateResource),
        Box::new(lints::DominatedResource),
        Box::new(lints::IdenticalTables),
        Box::new(lints::TableOverrun),
        Box::new(lints::EmptyTable),
        Box::new(lints::MatrixInvariant),
        Box::new(lints::DominatedAlternative),
        Box::new(lints::Redundancy),
        Box::new(lints::NeverSelectable),
        Box::new(lints::IiInfeasible),
    ]
}

/// Runs every registered lint over `subject`.
///
/// A subject that failed to expand additionally yields one
/// [`INVALID_MACHINE`] error carrying the expansion failure.
pub fn lint_subject(subject: &LintSubject) -> Report {
    let mut report = Report::new(subject.name());
    report.fingerprint = subject.machine().map(rmd_machine::content_fingerprint);
    if let Some(e) = subject.expand_error() {
        report.diagnostics.push(Diagnostic {
            id: INVALID_MACHINE,
            severity: Severity::Error,
            message: format!("description does not expand into a valid machine: {e}"),
            span: None,
        });
    }
    for lint in all_lints() {
        lint.run(subject, &mut report.diagnostics);
    }
    report
}

/// Lints an already-expanded machine (a built-in model, a reduction
/// output).
pub fn lint_machine(m: &MachineDescription) -> Report {
    lint_subject(&LintSubject::from_machine(m))
}

/// Lints a parsed (pre-expansion) description, attaching declaration
/// spans when a [`SourceMap`] is supplied.
pub fn lint_alt(d: &AltDescription, map: Option<&SourceMap>) -> Report {
    lint_subject(&LintSubject::from_alt(d, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::mdl;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let lints = all_lints();
        let ids: Vec<&str> = lints.iter().map(|l| l.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), lints.len(), "duplicate lint ids: {ids:?}");
        assert_eq!(ids, sorted, "registry must stay in catalog order");
        assert!(ids.iter().all(|i| i.starts_with("RMD-L")));
    }

    #[test]
    fn unexpandable_machine_reports_l000() {
        let (d, map) = mdl::parse_with_source_map(
            r#"machine "m" { resources { r; } op nop { } op x { use r @ 0; } }"#,
        )
        .expect("parses");
        let r = lint_alt(&d, Some(&map));
        assert!(
            r.diagnostics.iter().any(|d| d.id == INVALID_MACHINE),
            "{r:?}"
        );
        assert!(r.errors() >= 1);
        assert!(r.fingerprint.is_none(), "no fingerprint without a machine");
    }

    #[test]
    fn reports_carry_the_machine_content_fingerprint() {
        let m = rmd_machine::models::example_machine();
        let r = lint_machine(&m);
        assert_eq!(r.fingerprint, Some(rmd_machine::content_fingerprint(&m)));
    }
}
