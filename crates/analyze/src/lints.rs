//! The description-lint catalog, `RMD-L001` … `RMD-L011`.
//!
//! | id       | name                  | default severity |
//! |----------|-----------------------|------------------|
//! | RMD-L001 | dead-resource         | warning          |
//! | RMD-L002 | duplicate-resource    | info             |
//! | RMD-L003 | dominated-resource    | info             |
//! | RMD-L004 | identical-tables      | info             |
//! | RMD-L005 | table-overrun         | error            |
//! | RMD-L006 | empty-table           | error            |
//! | RMD-L007 | matrix-invariant      | error            |
//! | RMD-L008 | dominated-alternative | warning / info   |
//! | RMD-L009 | redundancy            | info             |
//! | RMD-L010 | never-selectable      | warning          |
//! | RMD-L011 | ii-infeasible         | info             |
//!
//! Redundancy findings (`L002`, `L003`, `L009`) are *info*, not
//! warnings: redundant resources in real descriptions are the paper's
//! premise — the reduction exists to remove them (the MIPS R3010 model
//! really does use `if` and `rd` in lockstep) — so their presence is
//! headroom to report, not a defect to deny.

use crate::diag::{Diagnostic, Severity};
use crate::lint::Lint;
use crate::model::{LintSubject, OpGroup};
use rmd_core::{dominated_by, generating_set, prune_dominated, Limits, SynthResource, SynthUsage};
use rmd_latency::{ClassPartition, ForbiddenMatrix};
use rmd_machine::mdl::Span;
use rmd_machine::{ReservationTable, ResourceId};
use std::collections::HashMap;

fn diag(lint: &dyn Lint, span: Option<Span>, message: String) -> Diagnostic {
    Diagnostic {
        id: lint.id(),
        severity: lint.default_severity(),
        message,
        span,
    }
}

/// Per-resource: is it reserved by any alternative of any operation?
fn used_resources(s: &LintSubject) -> Vec<bool> {
    let mut used = vec![false; s.resource_names().len()];
    for g in s.groups() {
        for t in &g.alternatives {
            for u in t.usages() {
                if let Some(slot) = used.get_mut(u.resource.index()) {
                    *slot = true;
                }
            }
        }
    }
    used
}

/// RMD-L001: a declared resource no operation ever reserves. It
/// constrains nothing and is either leftover or a typo.
pub struct DeadResource;

impl Lint for DeadResource {
    fn id(&self) -> &'static str {
        "RMD-L001"
    }
    fn name(&self) -> &'static str {
        "dead-resource"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        let used = used_resources(s);
        for (i, name) in s.resource_names().iter().enumerate() {
            if !used[i] {
                out.push(diag(
                    self,
                    s.resource_spans()[i],
                    format!("resource `{name}` is never used by any operation"),
                ));
            }
        }
    }
}

/// RMD-L002: two resources reserved at identical cycles by every
/// alternative of every operation. They impose the same constraints
/// twice; one is redundant by construction (lockstep pipeline stages
/// do this legitimately, hence info).
pub struct DuplicateResource;

impl Lint for DuplicateResource {
    fn id(&self) -> &'static str {
        "RMD-L002"
    }
    fn name(&self) -> &'static str {
        "duplicate-resource"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        let used = used_resources(s);
        // Signature: usage cycles in every alternative, in declaration
        // order — equal signatures ⇒ interchangeable resources.
        let mut first_with: HashMap<Vec<Vec<u32>>, usize> = HashMap::new();
        for (i, name) in s.resource_names().iter().enumerate() {
            if !used[i] {
                continue; // dead resources are RMD-L001's finding
            }
            let sig: Vec<Vec<u32>> = s
                .groups()
                .iter()
                .flat_map(|g| &g.alternatives)
                .map(|t| t.usage_set(ResourceId(i as u32)))
                .collect();
            match first_with.get(&sig) {
                Some(&j) => out.push(diag(
                    self,
                    s.resource_spans()[i],
                    format!(
                        "resource `{name}` is used identically to `{}`; one of them is redundant",
                        s.resource_names()[j]
                    ),
                )),
                None => {
                    first_with.insert(sig, i);
                }
            }
        }
    }
}

/// RMD-L003: a resource whose every forbidden latency is already
/// forbidden by a single other resource — exactly the domination
/// relation `prune_dominated` removes during reduction.
pub struct DominatedResource;

impl Lint for DominatedResource {
    fn id(&self) -> &'static str {
        "RMD-L003"
    }
    fn name(&self) -> &'static str {
        "dominated-resource"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        let Some(m) = s.machine() else { return };
        // View each declared resource as a synthesized resource over the
        // expanded operations (one class per op), then reuse the
        // reduction's own domination scan.
        let mut ids = Vec::new();
        let mut synth = Vec::new();
        for r in 0..m.num_resources() {
            let rid = ResourceId(r as u32);
            let usages: Vec<SynthUsage> = m
                .ops()
                .flat_map(|(id, op)| {
                    op.table()
                        .usage_set(rid)
                        .into_iter()
                        .map(move |c| SynthUsage::new(id.0, c))
                })
                .collect();
            if !usages.is_empty() {
                ids.push(r);
                synth.push(SynthResource::from_usages(usages));
            }
        }
        for (k, dom) in dominated_by(&synth).iter().enumerate() {
            if let Some(j) = dom {
                let name = &s.resource_names()[ids[k]];
                let by = &s.resource_names()[ids[*j]];
                out.push(diag(
                    self,
                    s.resource_spans()[ids[k]],
                    format!(
                        "resource `{name}` is dominated by `{by}`: every latency it \
                         forbids is already forbidden by `{by}` (reduction would prune it)"
                    ),
                ));
            }
        }
    }
}

/// RMD-L004: two operations with identical alternative tables. They form
/// one latency equivalence class and could share a definition.
pub struct IdenticalTables;

impl Lint for IdenticalTables {
    fn id(&self) -> &'static str {
        "RMD-L004"
    }
    fn name(&self) -> &'static str {
        "identical-tables"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        let gs = s.groups();
        for (i, g) in gs.iter().enumerate() {
            if let Some(first) = gs[..i].iter().find(|o| o.alternatives == g.alternatives) {
                out.push(diag(
                    self,
                    g.span,
                    format!(
                        "operations `{}` and `{}` have identical reservation tables; \
                         they behave as one class and could be merged",
                        first.name, g.name
                    ),
                ));
            }
        }
    }
}

/// RMD-L005: a reservation past the pipeline's maximum table length —
/// the validation [`Limits`] every pipeline entry point enforces would
/// reject the machine.
pub struct TableOverrun;

impl Lint for TableOverrun {
    fn id(&self) -> &'static str {
        "RMD-L005"
    }
    fn name(&self) -> &'static str {
        "table-overrun"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        let max = Limits::default().max_table_cycles;
        for g in s.groups() {
            for (i, t) in g.alternatives.iter().enumerate() {
                if t.length() > max {
                    out.push(diag(
                        self,
                        g.span,
                        format!(
                            "operation `{}`{} reserves through cycle {}, past the \
                             pipeline's maximum table length of {max} cycles",
                            g.name,
                            alt_label(g, i),
                            t.length() - 1
                        ),
                    ));
                }
            }
        }
    }
}

/// RMD-L006: an operation (or one of its alternatives) reserving
/// nothing. It would contend with nothing — including itself.
pub struct EmptyTable;

impl Lint for EmptyTable {
    fn id(&self) -> &'static str {
        "RMD-L006"
    }
    fn name(&self) -> &'static str {
        "empty-table"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        for g in s.groups() {
            for (i, t) in g.alternatives.iter().enumerate() {
                if t.is_empty() {
                    out.push(diag(
                        self,
                        g.span,
                        format!(
                            "operation `{}`{} has an empty reservation table",
                            g.name,
                            alt_label(g, i)
                        ),
                    ));
                }
            }
        }
    }
}

/// RMD-L007: the forbidden-matrix invariants the whole pipeline rests
/// on — mirror symmetry `f ∈ F[X][Y] ⇔ −f ∈ F[Y][X]` and structural
/// self-contention `0 ∈ F[X][X]` (paper §3).
pub struct MatrixInvariant;

impl Lint for MatrixInvariant {
    fn id(&self) -> &'static str {
        "RMD-L007"
    }
    fn name(&self) -> &'static str {
        "matrix-invariant"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        // Self-contention is checkable without expansion: an alternative
        // reserving nothing can issue concurrently with itself, so
        // 0 ∈ F[X][X] cannot hold.
        for g in s.groups() {
            if g.alternatives.iter().any(ReservationTable::is_empty) {
                out.push(diag(
                    self,
                    g.span,
                    format!(
                        "self-contention invariant 0 ∈ F[X][X] cannot hold for \
                         `{}`: it reserves no resource",
                        g.name
                    ),
                ));
            }
        }
        let Some(m) = s.machine() else { return };
        let f = crate::lints::matrix_of(m);
        if let Err((x, y, lat)) = f.check_symmetry() {
            out.push(diag(
                self,
                None,
                format!(
                    "forbidden matrix violates mirror symmetry: {lat} ∈ F[`{}`][`{}`] \
                     but {} ∉ F[`{}`][`{}`]",
                    m.operations()[x].name(),
                    m.operations()[y].name(),
                    -lat,
                    m.operations()[y].name(),
                    m.operations()[x].name()
                ),
            ));
        }
        for (id, op) in m.ops() {
            if !op.table().is_empty() && !f.forbids(id, 0, id) {
                out.push(diag(
                    self,
                    None,
                    format!(
                        "self-contention invariant violated: 0 ∉ F[`{0}`][`{0}`]",
                        op.name()
                    ),
                ));
            }
        }
    }
}

/// RMD-L008: an alternative that duplicates another in its group
/// (warning — pure redundancy that skews weights), or reserves a strict
/// superset of another's usages (info — any placement where it is free,
/// the subset alternative is free too, so it is never *required*).
pub struct DominatedAlternative;

impl Lint for DominatedAlternative {
    fn id(&self) -> &'static str {
        "RMD-L008"
    }
    fn name(&self) -> &'static str {
        "dominated-alternative"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        for g in s.groups() {
            let alts = &g.alternatives;
            for j in 0..alts.len() {
                if let Some(k) = (0..j).find(|&k| alts[k] == alts[j]) {
                    out.push(diag(
                        self,
                        g.span,
                        format!(
                            "alternative {j} of `{}` duplicates alternative {k}",
                            g.name
                        ),
                    ));
                } else if let Some(k) =
                    (0..alts.len()).find(|&k| k != j && table_strict_subset(&alts[k], &alts[j]))
                {
                    out.push(Diagnostic {
                        id: self.id(),
                        severity: Severity::Info,
                        message: format!(
                            "alternative {j} of `{}` reserves a strict superset of \
                             alternative {k}; it is dominated and never required",
                            g.name
                        ),
                        span: g.span,
                    });
                }
            }
        }
    }
}

/// RMD-L009: the redundancy report. Fingerprints the forbidden matrix
/// and estimates reduction headroom by running the paper's generating
/// set + pruning over the class machine.
pub struct Redundancy;

impl Lint for Redundancy {
    fn id(&self) -> &'static str {
        "RMD-L009"
    }
    fn name(&self) -> &'static str {
        "redundancy"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        let Some(m) = s.machine() else { return };
        let f = matrix_of(m);
        let fp = rmd_core::fingerprints::matrix_fingerprint(&f);
        let classes = ClassPartition::compute(m, &f);
        let Ok(cm) = classes.class_machine(m) else {
            return;
        };
        let cf = matrix_of(&cm);
        let pruned = prune_dominated(&generating_set(&cf));
        out.push(diag(
            self,
            None,
            format!(
                "matrix fingerprint {fp:016x}: {} forbidden latencies (max {}) over {} \
                 classes; {} resources / {} usages could reduce to {} maximal resources",
                f.total_nonneg(),
                f.max_latency(),
                classes.num_classes(),
                m.num_resources(),
                m.total_usages(),
                pruned.len()
            ),
        ));
    }
}

/// RMD-L010: an alternative that can never be *selected*.
/// `check-with-alt` probes a group's alternatives in declaration order
/// and returns the first contention-free one; when an **earlier**
/// alternative reserves a strict subset of a later one's cells, the
/// earlier is free whenever the later is, so first-fit selection never
/// reaches the later alternative — it is dead weight in every schedule.
/// (Equal tables are RMD-L008's duplicate finding; a subset declared
/// *after* its superset is still selectable and only draws L008's info.)
pub struct NeverSelectable;

impl Lint for NeverSelectable {
    fn id(&self) -> &'static str {
        "RMD-L010"
    }
    fn name(&self) -> &'static str {
        "never-selectable"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        for g in s.groups() {
            let alts = &g.alternatives;
            for j in 1..alts.len() {
                if let Some(k) = (0..j).find(|&k| table_strict_subset(&alts[k], &alts[j])) {
                    out.push(diag(
                        self,
                        g.span,
                        format!(
                            "alternative {j} of `{}` is never selectable: alternative {k} \
                             reserves a strict subset of its cells and is probed first",
                            g.name
                        ),
                    ));
                }
            }
        }
    }
}

/// RMD-L011: an operation that cannot sustain the initiation interval
/// its resource counts promise. An alternative's resource-minimum II
/// (ResMII) is the largest number of times it reserves any single
/// resource; when two same-resource reservations sit a multiple of that
/// ResMII apart, the operation conflicts with its own next initiation at
/// II = ResMII, so its true per-op minimum II is strictly larger than
/// the bound a scheduler would compute from usage counts.
pub struct IiInfeasible;

impl Lint for IiInfeasible {
    fn id(&self) -> &'static str {
        "RMD-L011"
    }
    fn name(&self) -> &'static str {
        "ii-infeasible"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn run(&self, s: &LintSubject, out: &mut Vec<Diagnostic>) {
        for g in s.groups() {
            for (i, table) in g.alternatives.iter().enumerate() {
                let mut cycles_by_res: Vec<(u32, Vec<u32>)> = Vec::new();
                for u in table.usages() {
                    match cycles_by_res.iter_mut().find(|(r, _)| *r == u.resource.0) {
                        Some((_, cs)) => cs.push(u.cycle),
                        None => cycles_by_res.push((u.resource.0, vec![u.cycle])),
                    }
                }
                let Some(resmii) = cycles_by_res.iter().map(|(_, cs)| cs.len()).max() else {
                    continue; // empty table: RMD-L006's finding
                };
                let resmii = resmii as u32;
                if resmii < 2 {
                    continue; // no resource reused; II=1 is trivially clean
                }
                let collision = cycles_by_res.iter().find_map(|&(r, ref cs)| {
                    cs.iter()
                        .flat_map(|&c1| cs.iter().map(move |&c2| (c1, c2)))
                        .find(|&(c1, c2)| c1 < c2 && (c2 - c1) % resmii == 0)
                        .map(|(c1, c2)| (r, c1, c2))
                });
                if let Some((r, c1, c2)) = collision {
                    let rname = s
                        .resource_names()
                        .get(r as usize)
                        .map(String::as_str)
                        .unwrap_or("?");
                    out.push(diag(
                        self,
                        g.span,
                        format!(
                            "`{}`{}: cannot sustain II={resmii} (its ResMII): `{rname}`@{c1} \
                             and `{rname}`@{c2} are {} cycles apart, a multiple of {resmii}",
                            g.name,
                            alt_label(g, i),
                            c2 - c1
                        ),
                    ));
                }
            }
        }
    }
}

fn alt_label(g: &OpGroup, i: usize) -> String {
    if g.alternatives.len() > 1 {
        format!(" (alternative {i})")
    } else {
        String::new()
    }
}

/// Whether `a`'s usages are a strict subset of `b`'s.
fn table_strict_subset(a: &ReservationTable, b: &ReservationTable) -> bool {
    a.num_usages() < b.num_usages() && a.usages().iter().all(|u| b.uses(u.resource, u.cycle))
}

pub(crate) fn matrix_of(m: &rmd_machine::MachineDescription) -> ForbiddenMatrix {
    ForbiddenMatrix::compute(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint_subject;
    use rmd_latency::LatencySet;
    use rmd_machine::mdl;

    fn subject(src: &str) -> LintSubject {
        let (d, map) = mdl::parse_with_source_map(src).expect("fixture parses");
        LintSubject::from_alt(&d, Some(&map))
    }

    fn ids(src: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = lint_subject(&subject(src))
            .diagnostics
            .iter()
            .map(|d| d.id)
            .collect();
        v.dedup();
        v
    }

    #[test]
    fn dead_resource_is_flagged_with_its_span() {
        let s = subject(r#"machine "m" { resources { alu; spare; } op x { use alu @ 0; } }"#);
        let mut out = Vec::new();
        DeadResource.run(&s, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`spare`"), "{}", out[0].message);
        assert!(out[0].span.is_some());
    }

    #[test]
    fn duplicate_resources_point_at_the_redundant_one() {
        let s = subject(
            r#"machine "m" { resources { a; b; }
                op x { use a @ 0; use b @ 0; }
                op y { use a @ 2; use b @ 2; } }"#,
        );
        let mut out = Vec::new();
        DuplicateResource.run(&s, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`b` is used identically to `a`"));
    }

    #[test]
    fn dominated_resource_names_its_dominator() {
        let s = subject(
            r#"machine "m" { resources { light; heavy; }
                op x { use light @ 0; use heavy @ 0..3; } }"#,
        );
        let mut out = Vec::new();
        DominatedResource.run(&s, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("`light` is dominated by `heavy`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn superset_alternative_is_dominated() {
        let s = subject(
            r#"machine "m" { resources { p; q; }
                op ld alt { { use p @ 0; } { use p @ 0; use q @ 1; } } }"#,
        );
        let mut out = Vec::new();
        DominatedAlternative.run(&s, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].severity, Severity::Info);
        assert!(out[0].message.contains("strict superset"));
    }

    #[test]
    fn symmetry_violation_is_reported_on_a_forged_matrix() {
        // Construction can never violate mirror symmetry, so forge a
        // matrix: 2 ∈ F[x][y] without −2 ∈ F[y][x].
        let mut sets = vec![LatencySet::new(); 4];
        sets[0].insert(0);
        sets[3].insert(0);
        sets[1].insert(2); // F[0][1] ∋ 2, mirror missing
        let f = ForbiddenMatrix::from_sets(2, sets);
        assert_eq!(f.check_symmetry(), Err((0, 1, 2)));
    }

    #[test]
    fn empty_alternative_flags_both_l006_and_l007() {
        let found = ids(r#"machine "m" { resources { r; } op nop { } op x { use r @ 0; } }"#);
        assert!(found.contains(&"RMD-L006"), "{found:?}");
        assert!(found.contains(&"RMD-L007"), "{found:?}");
        assert!(found.contains(&"RMD-L000"), "{found:?}");
    }

    #[test]
    fn redundancy_fingerprint_tracks_semantics() {
        let base = r#"machine "m" { resources { s0; s1; }
            op x { use s0 @ 0; use s1 @ 1; } op y { use s1 @ 0; } }"#;
        let shifted = r#"machine "m" { resources { s0; s1; }
            op x { use s0 @ 0; use s1 @ 2; } op y { use s1 @ 0; } }"#;
        let renamed = r#"machine "m" { resources { u0; u1; }
            op x { use u0 @ 0; use u1 @ 1; } op y { use u1 @ 0; } }"#;
        let report = |src| {
            lint_subject(&subject(src))
                .diagnostics
                .iter()
                .find(|d| d.id == "RMD-L009")
                .expect("L009 always fires on expandable machines")
                .message
                .clone()
        };
        assert_ne!(report(base), report(shifted), "matrix change must show");
        assert_eq!(report(base), report(renamed), "renames are not semantic");
    }

    #[test]
    fn never_selectable_is_order_sensitive() {
        // (source, expected L010 findings, message fragment)
        let cases: [(&str, usize, &str); 4] = [
            // Subset first: the superset alternative is unreachable.
            (
                r#"machine "m" { resources { p; q; }
                    op ld alt { { use p @ 0; } { use p @ 0; use q @ 1; } } }"#,
                1,
                "alternative 1 of `ld` is never selectable: alternative 0",
            ),
            // Superset first: the subset is still reached when p is busy.
            (
                r#"machine "m" { resources { p; q; }
                    op ld alt { { use p @ 0; use q @ 1; } { use p @ 0; } } }"#,
                0,
                "",
            ),
            // Disjoint alternatives: both selectable.
            (
                r#"machine "m" { resources { p; q; }
                    op ld alt { { use p @ 0; } { use q @ 0; } } }"#,
                0,
                "",
            ),
            // Equal tables are L008's duplicate, not L010's.
            (
                r#"machine "m" { resources { p; }
                    op ld alt { { use p @ 0; } { use p @ 0; } } }"#,
                0,
                "",
            ),
        ];
        for (src, expected, fragment) in cases {
            let s = subject(src);
            let mut out = Vec::new();
            NeverSelectable.run(&s, &mut out);
            assert_eq!(out.len(), expected, "{src}: {out:?}");
            if expected > 0 {
                assert_eq!(out[0].severity, Severity::Warning);
                assert!(out[0].message.contains(fragment), "{}", out[0].message);
            }
        }
    }

    #[test]
    fn ii_infeasible_flags_resmii_collisions() {
        // (source, expected L011 findings, message fragment)
        let cases: [(&str, usize, &str); 4] = [
            // r reused twice, 2 cycles apart: self-conflict at II = 2.
            (
                r#"machine "m" { resources { r; } op x { use r @ 0; use r @ 2; } }"#,
                1,
                "cannot sustain II=2 (its ResMII): `r`@0 and `r`@2",
            ),
            // 1 cycle apart: 1 is not a multiple of 2 — II = 2 works.
            (
                r#"machine "m" { resources { r; } op x { use r @ 0; use r @ 1; } }"#,
                0,
                "",
            ),
            // Collision on a non-bottleneck resource still counts:
            // ResMII = 3 (from r), but s@1 / s@4 collide mod 3.
            (
                r#"machine "m" { resources { r; s; }
                    op x { use r @ 0; use r @ 1; use r @ 2; use s @ 1; use s @ 4; } }"#,
                1,
                "`s`@1 and `s`@4",
            ),
            // No resource reused: nothing to report.
            (
                r#"machine "m" { resources { r; s; } op x { use r @ 0; use s @ 3; } }"#,
                0,
                "",
            ),
        ];
        for (src, expected, fragment) in cases {
            let s = subject(src);
            let mut out = Vec::new();
            IiInfeasible.run(&s, &mut out);
            assert_eq!(out.len(), expected, "{src}: {out:?}");
            if expected > 0 {
                assert_eq!(out[0].severity, Severity::Info);
                assert!(out[0].message.contains(fragment), "{}", out[0].message);
            }
        }
    }

    #[test]
    fn new_lints_raise_no_warnings_on_the_builtin_models() {
        // The CI machine-lint gate runs `--deny warnings` over every
        // built-in; RMD-L010 (a warning) must not fire on any of them,
        // and RMD-L011 stays informational wherever it fires.
        for m in rmd_machine::models::all_machines() {
            let s = LintSubject::from_machine(&m);
            let mut out = Vec::new();
            NeverSelectable.run(&s, &mut out);
            assert_eq!(out, Vec::new(), "{}", m.name());
            IiInfeasible.run(&s, &mut out);
            assert!(
                out.iter().all(|d| d.severity == Severity::Info),
                "{}: {out:?}",
                m.name()
            );
        }
    }
}
