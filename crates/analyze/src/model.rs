//! The linted view of a machine: operations as alternative groups.
//!
//! Lints see one [`LintSubject`] regardless of where the machine came
//! from. Parsed MDL keeps its pre-expansion alternative structure (and
//! declaration spans, via the parser's
//! [`SourceMap`](rmd_machine::mdl::SourceMap)); built-in
//! [`MachineDescription`]s are regrouped by the `base` attribution their
//! expanded alternatives carry. Structural lints run on the groups;
//! matrix lints run on the expanded machine, which is absent only when
//! expansion itself fails (that failure becomes a finding, not a crash).

use rmd_machine::alternatives::AltDescription;
use rmd_machine::mdl::{SourceMap, Span};
use rmd_machine::{MachineDescription, ReservationTable};

/// One operation as declared: a name, a total weight, and one or more
/// alternative reservation tables.
#[derive(Clone, PartialEq, Debug)]
pub struct OpGroup {
    /// Declared name (an alternative group's base name).
    pub name: String,
    /// Total declared weight of the group.
    pub weight: f64,
    /// The alternative tables (exactly one for a plain operation).
    pub alternatives: Vec<ReservationTable>,
    /// Span of the declaration, when the subject came from source.
    pub span: Option<Span>,
}

/// Everything the lints need to know about one machine.
#[derive(Clone, Debug)]
pub struct LintSubject {
    name: String,
    resource_names: Vec<String>,
    resource_spans: Vec<Option<Span>>,
    groups: Vec<OpGroup>,
    machine: Option<MachineDescription>,
    expand_error: Option<String>,
}

impl LintSubject {
    /// Builds a subject from a parsed (pre-expansion) description, with
    /// declaration spans when a [`SourceMap`] is supplied.
    ///
    /// Never fails: if the description does not expand into a valid
    /// [`MachineDescription`] (empty operation, duplicate name, …), the
    /// subject carries the error for [`expand_error`](Self::expand_error)
    /// and matrix-based lints skip themselves.
    pub fn from_alt(d: &AltDescription, map: Option<&SourceMap>) -> Self {
        let resource_names = d.resource_names().to_vec();
        let resource_spans = resource_names
            .iter()
            .map(|n| map.and_then(|m| m.resource_span(&resource_names, n)))
            .collect();
        let op_names: Vec<&str> = d.operations().iter().map(|o| o.name()).collect();
        let groups = d
            .operations()
            .iter()
            .map(|o| OpGroup {
                name: o.name().to_owned(),
                weight: o.weight(),
                alternatives: o.alternatives().to_vec(),
                span: map.and_then(|m| m.op_span(&op_names, o.name())),
            })
            .collect();
        let (machine, expand_error) = match d.expand() {
            Ok((m, _)) => (Some(m), None),
            Err(e) => (None, Some(e.to_string())),
        };
        LintSubject {
            name: d.name().to_owned(),
            resource_names,
            resource_spans,
            groups,
            machine,
            expand_error,
        }
    }

    /// Builds a subject from an already-expanded machine (a built-in
    /// model, a reduction output), regrouping runs of expanded
    /// alternatives (`X#0 .. X#{n-1}`) back into one group per base.
    pub fn from_machine(m: &MachineDescription) -> Self {
        let ops = m.operations();
        let mut groups = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            let mut j = i + 1;
            if let Some(base) = ops[i].base() {
                while j < ops.len() && ops[j].base() == Some(base) {
                    j += 1;
                }
            }
            groups.push(OpGroup {
                name: ops[i].base().unwrap_or(ops[i].name()).to_owned(),
                weight: ops[i..j].iter().map(|o| o.weight()).sum(),
                alternatives: ops[i..j].iter().map(|o| o.table().clone()).collect(),
                span: None,
            });
            i = j;
        }
        LintSubject {
            name: m.name().to_owned(),
            resource_names: m.resources().iter().map(|r| r.name().to_owned()).collect(),
            resource_spans: vec![None; m.num_resources()],
            groups,
            machine: Some(m.clone()),
            expand_error: None,
        }
    }

    /// The machine's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared resource names, in id order.
    pub fn resource_names(&self) -> &[String] {
        &self.resource_names
    }

    /// Declaration span per resource (all `None` without a source map).
    pub fn resource_spans(&self) -> &[Option<Span>] {
        &self.resource_spans
    }

    /// The operations, as declared alternative groups.
    pub fn groups(&self) -> &[OpGroup] {
        &self.groups
    }

    /// The expanded machine, when expansion succeeded.
    pub fn machine(&self) -> Option<&MachineDescription> {
        self.machine.as_ref()
    }

    /// Why expansion failed, when it did.
    pub fn expand_error(&self) -> Option<&str> {
        self.expand_error.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::mdl;
    use rmd_machine::models::example_machine;

    #[test]
    fn from_alt_keeps_groups_and_spans() {
        let src = r#"machine "m" {
            resources { p0; p1; }
            op ld weight 2 alt { { use p0 @ 0; } { use p1 @ 0; } }
        }"#;
        let (d, map) = mdl::parse_with_source_map(src).expect("parses");
        let s = LintSubject::from_alt(&d, Some(&map));
        assert_eq!(s.groups().len(), 1);
        assert_eq!(s.groups()[0].alternatives.len(), 2);
        assert_eq!(s.groups()[0].weight, 2.0);
        assert!(s.groups()[0].span.is_some());
        assert!(s.resource_spans()[1].is_some());
        assert!(s.machine().is_some());
        assert_eq!(s.expand_error(), None);
    }

    #[test]
    fn from_alt_survives_expansion_failure() {
        let src = r#"machine "m" {
            resources { r; }
            op nop { }
            op x { use r @ 0; }
        }"#;
        let (d, map) = mdl::parse_with_source_map(src).expect("parses");
        let s = LintSubject::from_alt(&d, Some(&map));
        assert!(s.machine().is_none());
        assert!(s.expand_error().expect("error kept").contains("nop"));
        assert_eq!(s.groups().len(), 2);
    }

    #[test]
    fn from_machine_regroups_expanded_alternatives() {
        let (m, _) = mdl::parse_machine(
            r#"machine "m" {
                resources { p0; p1; r; }
                op ld alt { { use p0 @ 0; } { use p1 @ 0; } }
                op add { use r @ 0; }
            }"#,
        )
        .expect("parses");
        let s = LintSubject::from_machine(&m);
        assert_eq!(s.groups().len(), 2);
        assert_eq!(s.groups()[0].name, "ld");
        assert_eq!(s.groups()[0].alternatives.len(), 2);
        assert!((s.groups()[0].weight - 1.0).abs() < 1e-12);
        assert_eq!(s.groups()[1].alternatives.len(), 1);

        let fig1 = LintSubject::from_machine(&example_machine());
        assert_eq!(fig1.groups().len(), example_machine().num_operations());
    }
}
