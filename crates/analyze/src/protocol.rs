//! Static protocol checks over recorded query traces, `RMD-P001` ….
//!
//! A scheduler (or a recorded trace of one — the same [`QueryTrace`]
//! format `rmd-fault`'s differential replayer uses) must follow the
//! paper's query protocol: `assign` only after an admitting `check`,
//! `free` only what was assigned, modulo placements only for operations
//! that fit. [`check_trace`] replays a trace through the shared
//! [`ProtocolChecker`](rmd_query::ProtocolChecker) — no query module
//! involved — and reports each violation as a diagnostic.

use crate::diag::{Diagnostic, Report, Severity};
use rmd_machine::MachineDescription;
use rmd_query::{ProtocolViolation, QueryTrace};

/// Catalog id for a protocol violation.
pub fn violation_id(v: &ProtocolViolation) -> &'static str {
    match v {
        ProtocolViolation::DoubleAssign { .. } => "RMD-P001",
        ProtocolViolation::AssignOverlap { .. } => "RMD-P002",
        ProtocolViolation::FreeWithoutAssign { .. } => "RMD-P003",
        ProtocolViolation::ForeignFree { .. } => "RMD-P004",
        ProtocolViolation::ModuloMisfit { .. } => "RMD-P005",
    }
}

/// Statically checks a recorded trace against the query protocol over
/// `machine`, honoring the trace's initiation interval for modulo
/// semantics. Every violation is an error-severity finding naming the
/// offending event; with [`rmd_obs`] tracing enabled, each also fires an
/// instant event (`cat = "analyze"`, name = the `RMD-P00x` id, arg =
/// the offending event index) so violations show up inline in profiles.
pub fn check_trace(trace: &QueryTrace, machine: &MachineDescription) -> Report {
    let mut report = Report::new(format!("trace over `{}`", trace.machine));
    for (i, v) in trace.check_protocol(machine) {
        rmd_obs::instant_with("analyze", violation_id(&v), "event", i as u64);
        report.diagnostics.push(Diagnostic {
            id: violation_id(&v),
            severity: Severity::Error,
            message: format!("event {i} ({}): {v}", trace.events[i]),
            span: None,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;
    use rmd_query::{OpInstance, QueryEvent};

    #[test]
    fn double_assign_and_unmatched_free_are_flagged() {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Assign { inst: OpInstance(0), op: a, cycle: 0 });
        t.push(QueryEvent::Assign { inst: OpInstance(0), op: a, cycle: 9 });
        t.push(QueryEvent::Free { inst: OpInstance(7), op: a, cycle: 0 });
        let r = check_trace(&t, &m);
        let ids: Vec<&str> = r.diagnostics.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec!["RMD-P001", "RMD-P003"], "{r:?}");
        assert_eq!(r.errors(), 2);
        assert!(r.diagnostics[0].message.contains("event 1"));
    }

    #[test]
    fn clean_trace_yields_a_clean_report() {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Check { op: a, cycle: 0 });
        t.push(QueryEvent::Assign { inst: OpInstance(0), op: a, cycle: 0 });
        t.push(QueryEvent::Free { inst: OpInstance(0), op: a, cycle: 0 });
        let r = check_trace(&t, &m);
        assert!(r.diagnostics.is_empty(), "{r:?}");
        assert!(r.render_text().contains("clean"));
    }

    #[test]
    fn violations_fire_obs_instants() {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Assign { inst: OpInstance(0), op: a, cycle: 0 });
        t.push(QueryEvent::Assign { inst: OpInstance(0), op: a, cycle: 9 });
        rmd_obs::set_enabled(true);
        let _ = rmd_obs::drain_events();
        let r = check_trace(&t, &m);
        let events = rmd_obs::drain_events();
        rmd_obs::set_enabled(false);
        assert_eq!(r.errors(), 1);
        let hit = events
            .iter()
            .find(|e| e.cat == "analyze" && e.name == "RMD-P001")
            .expect("violation instant present");
        assert_eq!(hit.arg, Some(("event", 1)));
    }

    #[test]
    fn modulo_misfit_is_a_p005() {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        // B uses one resource in several cycles; at ii=2 they collide
        // mod ii, so placing B at all skips the fits() precondition.
        let mut t = QueryTrace::modulo(m.name(), 2);
        t.push(QueryEvent::Assign { inst: OpInstance(0), op: b, cycle: 0 });
        let r = check_trace(&t, &m);
        assert_eq!(r.diagnostics.len(), 1, "{r:?}");
        assert_eq!(r.diagnostics[0].id, "RMD-P005");
    }
}
