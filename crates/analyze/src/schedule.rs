//! RMD-S: the schedule-certifier family.
//!
//! Where the RMD-L lints judge a *description* and the RMD-P checks
//! judge a *query trace*, the RMD-S checks judge an emitted *schedule* —
//! and they deliberately judge it against the **unreduced** description.
//! A scheduler driven by a reduced description must never be trusted on
//! the reduced tables alone: these checks re-simulate the schedule's
//! resource usage directly from reservation tables (never through a
//! query module) and report *every* finding, unlike
//! [`rmd_sched::validate`] which stops at the first error.
//!
//! Catalog:
//!
//! * **RMD-S001** (error) — a dependence edge is violated:
//!   `t(to) < t(from) + delay − II · distance`.
//! * **RMD-S002** (error) — two nodes reserve the same `(resource,
//!   modulo slot)` of the validation machine.
//! * **RMD-S003** (error) — the schedule is *valid on the reduced
//!   description but invalid on the original*: the smoking gun that a
//!   reduction failed to preserve constraints (only reported by
//!   [`certify_schedule_pair`], which has both descriptions in hand).

use crate::diag::{Diagnostic, Report, Severity};
use rmd_machine::MachineDescription;
use rmd_sched::{DepGraph, ImsResult};
use std::collections::HashMap;

/// Dependence-violated schedule finding.
pub const SCHED_DEPENDENCE: &str = "RMD-S001";
/// Resource-conflict schedule finding.
pub const SCHED_RESOURCE: &str = "RMD-S002";
/// Valid-on-reduced-only schedule finding.
pub const SCHED_REDUCED_ONLY: &str = "RMD-S003";

fn sched_diag(id: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        id,
        severity: Severity::Error,
        message,
        span: None,
    }
}

/// Re-validate a modulo schedule against `machine` (pass the *original*
/// description to get the paper's end-to-end equivalence check),
/// reporting every violated dependence and every double-booked resource
/// slot as diagnostics.
pub fn certify_schedule(
    g: &DepGraph,
    machine: &MachineDescription,
    result: &ImsResult,
    subject: &str,
) -> Report {
    let mut report = Report::new(subject);
    let ii = i64::from(result.ii);
    for e in g.edges() {
        let tf = i64::from(result.times[e.from.index()]);
        let tt = i64::from(result.times[e.to.index()]);
        let required = tf + i64::from(e.delay) - ii * i64::from(e.distance);
        if tt < required {
            report.diagnostics.push(sched_diag(
                SCHED_DEPENDENCE,
                format!(
                    "dependence {} -> {} violated: t = {tt} < required {required} \
                     (delay {}, distance {}, II {})",
                    e.from, e.to, e.delay, e.distance, result.ii
                ),
            ));
        }
    }
    // Every (resource, modulo slot) may be reserved by at most one node;
    // unlike the scheduler's own validator this keeps going and reports
    // every collision.
    let mut taken: HashMap<(u32, u32), usize> = HashMap::new();
    for v in g.nodes() {
        let t = result.times[v.index()];
        let op = result.chosen[v.index()];
        let table = machine.operation(op).table();
        for u in table.usages() {
            let slot = ((u64::from(t) + u64::from(u.cycle)) % u64::from(result.ii)) as u32;
            if let Some(&other) = taken.get(&(u.resource.0, slot)) {
                report.diagnostics.push(sched_diag(
                    SCHED_RESOURCE,
                    format!(
                        "nodes n{other} and n{} both reserve `{}` in modulo slot {slot} \
                         (II {})",
                        v.index(),
                        machine.resource(u.resource).name(),
                        result.ii
                    ),
                ));
            } else {
                taken.insert((u.resource.0, slot), v.index());
            }
        }
    }
    report
}

/// Re-validate a schedule produced with `reduced` against *both*
/// descriptions. Findings against `original` are reported as usual; if
/// the schedule additionally re-simulates cleanly on `reduced`, an
/// RMD-S003 finding pins the divergence on the reduction itself rather
/// than on the scheduler.
pub fn certify_schedule_pair(
    g: &DepGraph,
    original: &MachineDescription,
    reduced: &MachineDescription,
    result: &ImsResult,
    subject: &str,
) -> Report {
    let mut report = certify_schedule(g, original, result, subject);
    if report.diagnostics.is_empty() {
        return report;
    }
    let on_reduced = certify_schedule(g, reduced, result, subject);
    if on_reduced.diagnostics.is_empty() {
        report.diagnostics.push(sched_diag(
            SCHED_REDUCED_ONLY,
            format!(
                "schedule is valid on the reduced description `{}` but invalid on the \
                 original `{}`: the reduction does not preserve scheduling constraints",
                reduced.name(),
                original.name()
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models;
    use rmd_sched::{DepKind, ImsConfig, IterativeModuloScheduler, Representation};

    fn chain(m: &MachineDescription, names: &[&str]) -> DepGraph {
        let mut g = DepGraph::new();
        let nodes: Vec<_> = names
            .iter()
            .map(|n| g.add_node(m.op_by_name(n).expect("op exists")))
            .collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], 1, 0, DepKind::Flow);
        }
        g
    }

    fn result_of(g: &DepGraph, m: &MachineDescription) -> ImsResult {
        IterativeModuloScheduler::new(ImsConfig::default())
            .schedule(g, m, Representation::Discrete)
            .expect("schedulable")
    }

    #[test]
    fn honest_schedule_is_clean() {
        let m = models::example_machine();
        let g = chain(&m, &["A", "B", "A"]);
        let r = result_of(&g, &m);
        let report = certify_schedule(&g, &m, &r, "fig1");
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn corrupted_times_report_every_finding() {
        let m = models::example_machine();
        let g = chain(&m, &["B", "B", "B"]);
        let mut r = result_of(&g, &m);
        // Collapse everything onto cycle 0: every dependence breaks and
        // every B-vs-B resource cell collides, all reported.
        for t in &mut r.times {
            *t = 0;
        }
        let report = certify_schedule(&g, &m, &r, "fig1");
        let deps = report
            .diagnostics
            .iter()
            .filter(|d| d.id == SCHED_DEPENDENCE)
            .count();
        let res = report
            .diagnostics
            .iter()
            .filter(|d| d.id == SCHED_RESOURCE)
            .count();
        assert_eq!(deps, 2, "{}", report.render_text());
        assert!(res >= 2, "all collisions reported: {}", report.render_text());
        assert_eq!(report.worst(), Some(Severity::Error));
    }

    #[test]
    fn reduced_only_validity_is_pinned_on_the_reduction() {
        // A deliberately *wrong* "reduction": one resource, so any two
        // ops may overlap freely at distinct cycles even though the
        // original forbids it.
        let m = models::example_machine();
        let mut b = rmd_machine::MachineBuilder::new("fig1-bogus-reduced");
        let q = b.resource("q0");
        for op in m.operations() {
            b.operation(op.name()).usage(q, 0).finish();
        }
        let bogus = b.build().expect("valid machine");

        let g = chain(&m, &["B", "B"]);
        // Schedule on the bogus reduction: it will happily overlap the
        // two Bs in ways the original forbids.
        let r = IterativeModuloScheduler::new(ImsConfig::default())
            .schedule(&g, &bogus, Representation::Discrete)
            .expect("schedulable on bogus machine");
        let report = certify_schedule_pair(&g, &m, &bogus, &r, "fig1");
        assert!(
            report.diagnostics.iter().any(|d| d.id == SCHED_RESOURCE),
            "the original must reject the bogus schedule: {}",
            report.render_text()
        );
        assert!(
            report.diagnostics.iter().any(|d| d.id == SCHED_REDUCED_ONLY),
            "{}",
            report.render_text()
        );
    }
}
