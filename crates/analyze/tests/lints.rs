//! Integration tests: the fixture corpus (one seeded defect per lint
//! id), cleanliness of the shipped machines, and trace protocol checks.

use rmd_analyze::{check_trace, lint_alt, lint_machine, Report};
use rmd_machine::{mdl, models};
use rmd_query::{OpInstance, QueryEvent, QueryTrace};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_file(path: &Path) -> Report {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let (d, map) = mdl::parse_with_source_map(&src)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    lint_alt(&d, Some(&map))
}

#[test]
fn every_fixture_is_flagged_by_its_lint() {
    for id in [
        "RMD-L001",
        "RMD-L002",
        "RMD-L003",
        "RMD-L004",
        "RMD-L005",
        "RMD-L006",
        "RMD-L007",
        "RMD-L008",
        "RMD-L009",
    ] {
        let file = format!(
            "l{:03}_{}.mdl",
            id[5..].parse::<u32>().expect("catalog ids are numbered"),
            match id {
                "RMD-L001" => "dead_resource",
                "RMD-L002" => "duplicate_resource",
                "RMD-L003" => "dominated_resource",
                "RMD-L004" => "identical_tables",
                "RMD-L005" => "table_overrun",
                "RMD-L006" => "empty_table",
                "RMD-L007" => "matrix_invariant",
                "RMD-L008" => "dominated_alternative",
                _ => "redundancy",
            }
        );
        let report = lint_file(&fixture_dir().join(&file));
        assert!(
            report.diagnostics.iter().any(|d| d.id == id),
            "{file} must trigger {id}, got: {}",
            report.render_text()
        );
    }
}

#[test]
fn fixture_spans_point_into_the_source() {
    // Declaration-level findings must carry usable positions.
    let report = lint_file(&fixture_dir().join("l001_dead_resource.mdl"));
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.id == "RMD-L001")
        .expect("dead resource flagged");
    let span = d.span.expect("span recorded from the source map");
    assert!(span.line >= 1 && span.column >= 1);
    assert!(report.render_text().contains(&format!("{}:{}", span.line, span.column)));
}

#[test]
fn builtin_models_have_no_error_findings() {
    for m in models::all_machines() {
        let report = lint_machine(&m);
        assert_eq!(
            report.errors(),
            0,
            "{}: {}",
            m.name(),
            report.render_text()
        );
    }
}

#[test]
fn builtin_models_have_no_warnings_either() {
    // The CI lint job runs `--deny warnings` over the built-ins; keep
    // this invariant visible locally.
    for m in models::all_machines() {
        let report = lint_machine(&m);
        assert_eq!(
            report.warnings(),
            0,
            "{}: {}",
            m.name(),
            report.render_text()
        );
    }
}

#[test]
fn shipped_mdl_files_are_warning_free() {
    let machines = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../machines");
    let mut seen = 0;
    for entry in std::fs::read_dir(&machines).expect("machines/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "mdl") {
            continue;
        }
        seen += 1;
        let report = lint_file(&path);
        assert_eq!(report.errors(), 0, "{}: {}", path.display(), report.render_text());
        assert_eq!(report.warnings(), 0, "{}: {}", path.display(), report.render_text());
    }
    assert!(seen >= 1, "machines/ must ship at least one .mdl");
}

#[test]
fn recorded_oracle_style_trace_checks_clean() {
    // A protocol-correct trace (check-gated assigns, matching frees)
    // over a built-in model yields a clean report.
    let m = models::example_machine();
    let a = m.op_by_name("A").unwrap();
    let b = m.op_by_name("B").unwrap();
    let mut t = QueryTrace::new(m.name());
    t.push(QueryEvent::Check { op: a, cycle: 0 });
    t.push(QueryEvent::Assign { inst: OpInstance(0), op: a, cycle: 0 });
    t.push(QueryEvent::AssignFree { inst: OpInstance(1), op: b, cycle: 1 });
    t.push(QueryEvent::Free { inst: OpInstance(1), op: b, cycle: 1 });
    let report = check_trace(&t, &m);
    assert!(report.diagnostics.is_empty(), "{}", report.render_text());
}

#[test]
fn protocol_misuse_is_reported_with_p_ids() {
    let m = models::example_machine();
    let a = m.op_by_name("A").unwrap();
    let b = m.op_by_name("B").unwrap();
    let mut t = QueryTrace::new(m.name());
    // Double-assign of one instance, then a free naming the wrong op.
    t.push(QueryEvent::Assign { inst: OpInstance(0), op: a, cycle: 0 });
    t.push(QueryEvent::Assign { inst: OpInstance(0), op: a, cycle: 10 });
    t.push(QueryEvent::Free { inst: OpInstance(0), op: b, cycle: 10 });
    let report = check_trace(&t, &m);
    let ids: Vec<&str> = report.diagnostics.iter().map(|d| d.id).collect();
    assert_eq!(ids, vec!["RMD-P001", "RMD-P004"], "{}", report.render_text());
    // JSON output round-trips the same findings.
    let json = report.render_json();
    assert!(json.contains("\"id\":\"RMD-P001\""), "{json}");
    assert!(json.contains("\"errors\":2"), "{json}");
}
