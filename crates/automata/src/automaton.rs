//! Deterministic hazard-detection automata.

use crate::state::{StateKey, StateShape};
use core::fmt;
use rmd_machine::{MachineDescription, OpId};
use std::collections::HashMap;

/// Index of an automaton state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// Returns the id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Whether the automaton reads the schedule forward or backward
/// (Bala & Rubin use a pair of them for unrestricted scheduling).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// States track commitments of already-issued operations into the
    /// future; scheduling proceeds in nondecreasing cycle order.
    Forward,
    /// Built over time-reversed reservation tables; recognizes schedules
    /// read from the last cycle backward.
    Reverse,
}

/// Construction failure.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// The state count exceeded the caller's limit; the machine is too
    /// complex for an explicit automaton (the paper's §2 size concern).
    TooManyStates {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::TooManyStates { limit } => {
                write!(f, "automaton exceeds {limit} states")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A deterministic automaton recognizing contention-free schedules
/// (Proebsting & Fraser style).
///
/// States are resource-commitment matrices. `issue` transitions exist for
/// every operation placeable in the current cycle; `advance` moves to the
/// next cycle. The automaton is exact: a cycle-ordered sequence of issues
/// and advances is accepted iff the same placements are contention-free
/// under direct reservation-table simulation (tested property).
#[derive(Clone, Debug)]
pub struct Automaton {
    direction: Direction,
    num_ops: usize,
    /// `issue_t[state * num_ops + op]`: next state or `u32::MAX`.
    issue_t: Vec<u32>,
    /// `advance_t[state]`: next state after a cycle advance.
    advance_t: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl Automaton {
    /// Builds the automaton for `machine`, exploring states by BFS.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TooManyStates`] when more than `max_states`
    /// states are discovered.
    pub fn build(
        machine: &MachineDescription,
        direction: Direction,
        max_states: usize,
    ) -> Result<Self, BuildError> {
        Self::build_restricted(machine, direction, max_states, None)
    }

    /// Like [`build`](Self::build) but only tracking the resources for
    /// which `keep[r]` is true — the building block of
    /// [`FactoredAutomata`](crate::FactoredAutomata).
    pub fn build_restricted(
        machine: &MachineDescription,
        direction: Direction,
        max_states: usize,
        keep: Option<&[bool]>,
    ) -> Result<Self, BuildError> {
        let shape = StateShape::for_machine(machine);
        let tables: Vec<_> = match direction {
            Direction::Forward => machine
                .operations()
                .iter()
                .map(|o| o.table().clone())
                .collect(),
            Direction::Reverse => machine
                .operations()
                .iter()
                .map(|o| o.table().reversed())
                .collect(),
        };
        let masks: Vec<StateKey> = tables
            .iter()
            .map(|t| shape.table_mask(t, keep))
            .collect();
        let num_ops = masks.len();

        let mut index: HashMap<StateKey, u32> = HashMap::new();
        let mut keys: Vec<StateKey> = Vec::new();
        let mut issue_t: Vec<u32> = Vec::new();
        let mut advance_t: Vec<u32> = Vec::new();

        let start = shape.empty();
        index.insert(start.clone(), 0);
        keys.push(start);

        let mut next = 0usize;
        while next < keys.len() {
            if keys.len() > max_states {
                return Err(BuildError::TooManyStates { limit: max_states });
            }
            let state = keys[next].clone();
            // Issue transitions.
            for mask in masks.iter() {
                if shape.conflicts(&state, mask) {
                    issue_t.push(NONE);
                } else {
                    let succ = shape.union(&state, mask);
                    let id = *index.entry(succ.clone()).or_insert_with(|| {
                        keys.push(succ);
                        (keys.len() - 1) as u32
                    });
                    issue_t.push(id);
                }
            }
            // Advance transition.
            let succ = shape.advance(&state);
            let id = *index.entry(succ.clone()).or_insert_with(|| {
                keys.push(succ);
                (keys.len() - 1) as u32
            });
            advance_t.push(id);
            next += 1;
        }

        Ok(Automaton {
            direction,
            num_ops,
            issue_t,
            advance_t,
        })
    }

    /// Assembles an automaton from raw transition tables (used by the
    /// minimizer). `issue_t` is `states × num_ops` with `u32::MAX` for
    /// hazards; `advance_t` has one entry per state.
    pub(crate) fn from_parts(
        direction: Direction,
        num_ops: usize,
        issue_t: Vec<u32>,
        advance_t: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(issue_t.len(), advance_t.len() * num_ops);
        Automaton {
            direction,
            num_ops,
            issue_t,
            advance_t,
        }
    }

    /// The build direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of operations in the alphabet.
    pub fn num_ops(&self) -> usize {
        self.num_ops
    }

    /// The initial (empty-pipeline) state.
    pub fn start(&self) -> StateId {
        StateId(0)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.advance_t.len()
    }

    /// Attempts to issue `op` in the current cycle; `None` on a
    /// structural hazard.
    #[inline]
    pub fn issue(&self, s: StateId, op: OpId) -> Option<StateId> {
        let t = self.issue_t[s.index() * self.num_ops + op.index()];
        (t != NONE).then_some(StateId(t))
    }

    /// Whether `op` can issue in the current cycle — the automaton's
    /// one-table-lookup `check`.
    #[inline]
    pub fn can_issue(&self, s: StateId, op: OpId) -> bool {
        self.issue_t[s.index() * self.num_ops + op.index()] != NONE
    }

    /// Moves to the next cycle.
    #[inline]
    pub fn advance(&self, s: StateId) -> StateId {
        StateId(self.advance_t[s.index()])
    }

    /// Transition-table memory in bytes (4-byte entries, issue +
    /// advance), the automaton side of the paper's §6 memory comparison.
    pub fn table_bytes(&self) -> usize {
        (self.issue_t.len() + self.advance_t.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::{example_machine, mips_r3000};

    #[test]
    fn example_machine_automaton_enforces_forbidden_latencies() {
        let m = example_machine();
        let fsa = Automaton::build(&m, Direction::Forward, 1 << 16).unwrap();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        // Schedule B at cycle 0.
        let s = fsa.issue(fsa.start(), b).unwrap();
        // A at cycle 0 is fine (0 ∉ F[A][B]).
        assert!(fsa.can_issue(s, a));
        // B again at 0 conflicts.
        assert!(!fsa.can_issue(s, b));
        // Advance to cycle 1: B conflicts (1 ∈ F[B][B]); at cycle 4 free.
        let s1 = fsa.advance(s);
        assert!(!fsa.can_issue(s1, b));
        let s4 = fsa.advance(fsa.advance(fsa.advance(s1)));
        assert!(fsa.can_issue(s4, b));
    }

    #[test]
    fn state_count_is_finite_and_positive() {
        let m = example_machine();
        let fsa = Automaton::build(&m, Direction::Forward, 1 << 16).unwrap();
        assert!(fsa.num_states() > 1);
        assert!(fsa.table_bytes() > 0);
    }

    #[test]
    fn reverse_automaton_mirrors_forward() {
        let m = example_machine();
        let fwd = Automaton::build(&m, Direction::Forward, 1 << 16).unwrap();
        let rev = Automaton::build(&m, Direction::Reverse, 1 << 16).unwrap();
        let b = m.op_by_name("B").unwrap();
        // B then B one cycle later is illegal in both readings
        // (F[B][B] is symmetric here).
        let s = fwd.issue(fwd.start(), b).unwrap();
        assert!(!fwd.can_issue(fwd.advance(s), b));
        let s = rev.issue(rev.start(), b).unwrap();
        assert!(!rev.can_issue(rev.advance(s), b));
    }

    #[test]
    fn build_limit_is_honored() {
        let m = mips_r3000();
        let e = Automaton::build(&m, Direction::Forward, 10).unwrap_err();
        assert_eq!(e, BuildError::TooManyStates { limit: 10 });
        assert!(e.to_string().contains("10 states"));
    }

    #[test]
    fn single_issue_machine_forbids_dual_issue() {
        let m = mips_r3000();
        let fsa = Automaton::build(&m, Direction::Forward, 1 << 22).unwrap();
        let alu = m.op_by_name("alu").unwrap();
        let load = m.op_by_name("load").unwrap();
        let s = fsa.issue(fsa.start(), alu).unwrap();
        // Same-cycle second issue always conflicts on fetch/issue stages.
        assert!(!fsa.can_issue(s, load));
        // Next cycle is fine.
        assert!(fsa.can_issue(fsa.advance(s), load));
    }
}
