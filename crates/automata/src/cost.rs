//! Memory-cost models for the paper's §6 comparison between automata and
//! reduced bitvector reservation tables.

use crate::automaton::Automaton;
use crate::factored::FactoredAutomata;

/// Bits needed to encode one state id of an automaton with `states`
/// states (⌈log₂ states⌉; 0 for a single-state automaton).
pub fn state_bits(states: usize) -> u32 {
    if states <= 1 {
        0
    } else {
        usize::BITS - (states - 1).leading_zeros()
    }
}

/// Per-schedule-cycle state-cache cost (bits) of supporting an
/// *unrestricted* scheduler with a forward/reverse automaton pair: one
/// forward and one reverse state must be stored per cycle (Bala & Rubin;
/// paper §2/§6).
pub fn unrestricted_cache_bits_per_cycle(forward: &Automaton, reverse: &Automaton) -> u32 {
    state_bits(forward.num_states()) + state_bits(reverse.num_states())
}

/// The same for factored pairs: the sum over factors, each rounded up to
/// 8 bits as in the paper's Alpha 21064 arithmetic ("encoding each
/// factored state in 8 bits ... 64 bits of memory per schedule cycle" for
/// 4 forward + 4 reverse factors).
pub fn factored_cache_bits_per_cycle(
    forward: &FactoredAutomata,
    reverse: &FactoredAutomata,
) -> u32 {
    let per = |f: &FactoredAutomata| -> u32 {
        f.factors()
            .iter()
            .map(|a| state_bits(a.num_states()).div_ceil(8) * 8)
            .sum()
    };
    per(forward) + per(reverse)
}

/// Per-schedule-cycle state-cache cost (bits) for explicit per-factor
/// state counts (e.g. after minimization), each rounded up to 8 bits as
/// in the paper's arithmetic.
pub fn cache_bits_from_counts(forward: &[usize], reverse: &[usize]) -> u32 {
    let per = |counts: &[usize]| -> u32 {
        counts
            .iter()
            .map(|&c| state_bits(c).div_ceil(8) * 8)
            .sum()
    };
    per(forward) + per(reverse)
}

/// Per-schedule-cycle reserved-table cost (bits) of the bitvector
/// representation: one flag bit per synthesized resource.
pub fn bitvector_bits_per_cycle(num_reduced_resources: usize) -> u32 {
    num_reduced_resources as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Direction;
    use rmd_machine::models::example_machine;

    #[test]
    fn state_bits_rounds_up() {
        assert_eq!(state_bits(1), 0);
        assert_eq!(state_bits(2), 1);
        assert_eq!(state_bits(3), 2);
        assert_eq!(state_bits(256), 8);
        assert_eq!(state_bits(257), 9);
        assert_eq!(state_bits(6175), 13);
    }

    #[test]
    fn unrestricted_cache_cost_combines_directions() {
        let m = example_machine();
        let f = Automaton::build(&m, Direction::Forward, 1 << 16).unwrap();
        let r = Automaton::build(&m, Direction::Reverse, 1 << 16).unwrap();
        let bits = unrestricted_cache_bits_per_cycle(&f, &r);
        assert_eq!(bits, state_bits(f.num_states()) + state_bits(r.num_states()));
        assert!(bits > 0);
    }

    #[test]
    fn bitvector_cost_is_resource_count() {
        assert_eq!(bitvector_bits_per_cycle(15), 15);
    }

    #[test]
    fn count_based_cache_cost_rounds_to_bytes() {
        // Each ≤256-state factor costs one byte per schedule cycle (the
        // paper's Alpha arithmetic packs 8 such states into 64 bits).
        assert_eq!(cache_bits_from_counts(&[237, 232], &[237, 231]), 32);
        assert_eq!(cache_bits_from_counts(&[124, 337], &[208, 283]), 48);
        assert_eq!(cache_bits_from_counts(&[], &[1]), 0);
    }
}
