//! Cycle-ordered scheduling over an automaton.

use crate::automaton::{Automaton, StateId};
use rmd_machine::OpId;

/// A cursor that walks an [`Automaton`] in schedule order: issue
/// operations into the current cycle, advance to the next.
///
/// This is the scheduling model automata support natively (operations in
/// nondecreasing cycle order); supporting *unrestricted* schedulers
/// requires caching one state per schedule cycle and replaying — exactly
/// the overhead the paper's §2/§6 quantify.
///
/// # Example
///
/// ```
/// use rmd_automata::{Automaton, Cursor, Direction};
/// use rmd_machine::models::example_machine;
///
/// let m = example_machine();
/// let fsa = Automaton::build(&m, Direction::Forward, 1 << 20).unwrap();
/// let b = m.op_by_name("B").unwrap();
/// let mut cur = Cursor::new(&fsa);
/// assert!(cur.try_issue(b));
/// cur.advance_to(4);
/// assert!(cur.try_issue(b)); // 4 ∉ F[B][B]
/// assert_eq!(cur.cycle(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Cursor<'a> {
    fsa: &'a Automaton,
    state: StateId,
    cycle: u32,
    /// State at the start of each completed cycle — what an unrestricted
    /// scheduler would have to keep (one entry per schedule cycle).
    history: Vec<StateId>,
    issues: u64,
    lookups: u64,
}

impl<'a> Cursor<'a> {
    /// Starts at cycle 0 with an empty pipeline.
    pub fn new(fsa: &'a Automaton) -> Self {
        Cursor {
            fsa,
            state: fsa.start(),
            cycle: 0,
            history: vec![fsa.start()],
            issues: 0,
            lookups: 0,
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> u32 {
        self.cycle
    }

    /// Whether `op` can issue in the current cycle (one table lookup).
    pub fn can_issue(&mut self, op: OpId) -> bool {
        self.lookups += 1;
        self.fsa.can_issue(self.state, op)
    }

    /// Issues `op` in the current cycle if legal; returns success.
    pub fn try_issue(&mut self, op: OpId) -> bool {
        self.lookups += 1;
        match self.fsa.issue(self.state, op) {
            Some(next) => {
                self.state = next;
                self.issues += 1;
                true
            }
            None => false,
        }
    }

    /// Advances one cycle.
    pub fn advance(&mut self) {
        self.state = self.fsa.advance(self.state);
        self.cycle += 1;
        self.history.push(self.state);
    }

    /// Advances to the given (current or later) cycle.
    pub fn advance_to(&mut self, cycle: u32) {
        while self.cycle < cycle {
            self.advance();
        }
    }

    /// Table lookups performed so far (the automaton's work metric:
    /// one lookup ≈ one query).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Successful issues so far.
    pub fn issues(&self) -> u64 {
        self.issues
    }

    /// Cached states (one per schedule cycle) — the per-cycle state
    /// storage an unrestricted scheduler must maintain.
    pub fn cached_states(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Direction;
    use rmd_machine::models::example_machine;

    #[test]
    fn cursor_walks_cycles() {
        let m = example_machine();
        let fsa = Automaton::build(&m, Direction::Forward, 1 << 20).unwrap();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        let mut cur = Cursor::new(&fsa);
        assert!(cur.try_issue(b));
        assert!(cur.try_issue(a)); // same cycle, no conflict
        cur.advance();
        assert!(!cur.try_issue(b)); // 1 ∈ F[B][B]
        cur.advance_to(4);
        assert!(cur.try_issue(b));
        assert_eq!(cur.cycle(), 4);
        assert_eq!(cur.issues(), 3);
        assert_eq!(cur.lookups(), 4);
        assert_eq!(cur.cached_states(), 5);
    }
}
