//! Factored automata: intersection of smaller automata over a resource
//! partition (Müller; Bala & Rubin).

use crate::automaton::{Automaton, BuildError, Direction, StateId};
use rmd_machine::{MachineDescription, OpId};

/// Partitions a machine's resources into at most `target_groups` groups,
/// trying to keep resources that appear in the same reservation tables
/// together only when necessary and otherwise separating independent
/// functional units — the factoring that makes per-factor automata small.
///
/// The heuristic: resources are first grouped by connected components of
/// the "used by a common operation" relation; if fewer components than
/// requested, the largest components are split by balanced round-robin
/// over their resources (correctness does not depend on the split — a
/// placement is legal iff *every* factor accepts, whatever the partition).
pub fn partition_resources(m: &MachineDescription, target_groups: usize) -> Vec<Vec<bool>> {
    let nr = m.num_resources();
    // Union-find over resources.
    let mut parent: Vec<usize> = (0..nr).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for op in m.operations() {
        let rs: Vec<usize> = op.table().resources().map(|r| r.index()).collect();
        for w in rs.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut comps: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for r in 0..nr {
        let root = find(&mut parent, r);
        comps.entry(root).or_default().push(r);
    }
    let mut groups: Vec<Vec<usize>> = comps.into_values().collect();
    groups.sort_by_key(|g| (usize::MAX - g.len(), g[0]));

    // Merge down or split up toward target_groups.
    while groups.len() > target_groups && groups.len() > 1 {
        // Merge the two smallest.
        let a = groups.pop().expect("len > 1");
        groups.last_mut().expect("len >= 1").extend(a);
    }
    while groups.len() < target_groups {
        // Split the largest in two (round-robin keeps usage balanced).
        groups.sort_by_key(|g| usize::MAX - g.len());
        let big = groups.remove(0);
        if big.len() < 2 {
            groups.insert(0, big);
            break;
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for (i, r) in big.into_iter().enumerate() {
            if i % 2 == 0 {
                a.push(r);
            } else {
                b.push(r);
            }
        }
        groups.push(a);
        groups.push(b);
    }

    groups
        .into_iter()
        .map(|g| {
            let mut keep = vec![false; nr];
            for r in g {
                keep[r] = true;
            }
            keep
        })
        .collect()
}

/// A conjunction of automata over disjoint resource subsets: an issue is
/// legal iff every factor accepts it. Smaller per-factor state counts
/// trade against one lookup per factor per query (the paper's §2 size
/// discussion).
#[derive(Clone, Debug)]
pub struct FactoredAutomata {
    factors: Vec<Automaton>,
}

impl FactoredAutomata {
    /// Builds one automaton per group of `partition` (as produced by
    /// [`partition_resources`]).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from any factor.
    pub fn build(
        m: &MachineDescription,
        direction: Direction,
        partition: &[Vec<bool>],
        max_states_per_factor: usize,
    ) -> Result<Self, BuildError> {
        let factors = partition
            .iter()
            .map(|keep| {
                Automaton::build_restricted(m, direction, max_states_per_factor, Some(keep))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FactoredAutomata { factors })
    }

    /// The factor automata.
    pub fn factors(&self) -> &[Automaton] {
        &self.factors
    }

    /// Per-factor state counts.
    pub fn state_counts(&self) -> Vec<usize> {
        self.factors.iter().map(Automaton::num_states).collect()
    }

    /// The start state vector.
    pub fn start(&self) -> Vec<StateId> {
        self.factors.iter().map(Automaton::start).collect()
    }

    /// Whether `op` can issue now — one lookup per factor.
    pub fn can_issue(&self, states: &[StateId], op: OpId) -> bool {
        self.factors
            .iter()
            .zip(states)
            .all(|(f, &s)| f.can_issue(s, op))
    }

    /// Issues `op`, returning the successor state vector; `None` if any
    /// factor rejects.
    pub fn issue(&self, states: &[StateId], op: OpId) -> Option<Vec<StateId>> {
        let mut out = Vec::with_capacity(states.len());
        for (f, &s) in self.factors.iter().zip(states) {
            out.push(f.issue(s, op)?);
        }
        Some(out)
    }

    /// Advances every factor one cycle.
    pub fn advance(&self, states: &[StateId]) -> Vec<StateId> {
        self.factors
            .iter()
            .zip(states)
            .map(|(f, &s)| f.advance(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::{alpha21064, example_machine};

    #[test]
    fn partition_covers_all_resources_exactly_once() {
        let m = alpha21064();
        for g in [1usize, 2, 4] {
            let p = partition_resources(&m, g);
            assert!(!p.is_empty() && p.len() <= g.max(1));
            let mut seen = vec![0; m.num_resources()];
            for keep in &p {
                for (r, &k) in keep.iter().enumerate() {
                    if k {
                        seen[r] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "groups={g}: {seen:?}");
        }
    }

    #[test]
    fn factored_agrees_with_monolithic() {
        let m = example_machine();
        let mono = Automaton::build(&m, Direction::Forward, 1 << 20).unwrap();
        let p = partition_resources(&m, 2);
        let fact = FactoredAutomata::build(&m, Direction::Forward, &p, 1 << 20).unwrap();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();

        // Drive both through the same issue/advance script and compare
        // every can_issue answer.
        let script: &[(bool, OpId)] = &[
            (true, b),
            (false, a),
            (true, a),
            (false, b),
            (false, a),
            (true, b),
            (false, a),
        ];
        let mut ms = mono.start();
        let mut fs = fact.start();
        for &(advance, op) in script {
            if advance {
                ms = mono.advance(ms);
                fs = fact.advance(&fs);
            }
            assert_eq!(mono.can_issue(ms, op), fact.can_issue(&fs, op));
            if let Some(next) = mono.issue(ms, op) {
                ms = next;
                fs = fact.issue(&fs, op).expect("factored must accept too");
            }
        }
    }

    #[test]
    fn factoring_makes_the_alpha_buildable() {
        // The monolithic Alpha 21064 automaton blows past 100k states
        // (the paper's §2 size concern); the 2-way factored pair fits
        // comfortably — which is why Bala & Rubin factored this machine.
        let m = alpha21064();
        let mono = Automaton::build(&m, Direction::Forward, 100_000);
        assert!(
            matches!(mono, Err(crate::automaton::BuildError::TooManyStates { .. })),
            "expected blow-up, got {:?} states",
            mono.map(|a| a.num_states())
        );
        let p = partition_resources(&m, 2);
        let fact = FactoredAutomata::build(&m, Direction::Forward, &p, 100_000).unwrap();
        assert!(fact.state_counts().iter().all(|&c| c <= 100_000));
        assert_eq!(fact.factors().len(), 2);
    }
}
