//! Finite-state-automata hazard detection — the approach the paper
//! compares against (its §2 related work).
//!
//! Proebsting & Fraser (POPL '94) build a deterministic automaton whose
//! states are *resource commitment matrices*: the set of future resource
//! reservations outstanding relative to the current cycle. Issuing an
//! operation is legal iff its reservation table is disjoint from the
//! state; a distinguished *cycle-advance* transition shifts the state one
//! cycle. Müller (MICRO-26) and Bala & Rubin (MICRO-28) extend the idea
//! with factored automata (conjunction of smaller automata over resource
//! subsets) and a forward/reverse pair for unrestricted scheduling.
//!
//! This crate implements:
//!
//! * [`Automaton`] — forward (or reverse) automaton built by BFS over
//!   commitment states, with issue and advance transitions.
//! * [`Cursor`] — a cycle-ordered scheduling interface over an automaton.
//! * [`FactoredAutomata`] — a set of automata over a resource partition,
//!   accepting the intersection language.
//! * [`cost`] — the memory model used in the paper's §6 comparison
//!   (automaton tables vs. reserved bitvectors; state bits per schedule
//!   cycle).
//!
//! # Example
//!
//! ```
//! use rmd_automata::{Automaton, Direction};
//! use rmd_machine::models::example_machine;
//!
//! let m = example_machine();
//! let fsa = Automaton::build(&m, Direction::Forward, 1 << 20).unwrap();
//! let b = m.op_by_name("B").unwrap();
//! let s0 = fsa.start();
//! let s1 = fsa.issue(s0, b).expect("B issues into an empty pipeline");
//! // A second B in the same cycle conflicts (0 ∈ F[B][B]):
//! assert!(fsa.issue(s1, b).is_none());
//! // After one cycle advance it still conflicts (1 ∈ F[B][B]):
//! assert!(fsa.issue(fsa.advance(s1), b).is_none());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod automaton;
pub mod cost;
mod cursor;
mod factored;
mod minimize;
mod module;
mod space;
mod state;
pub mod unrestricted;

pub use automaton::{Automaton, BuildError, Direction, StateId};
pub use module::AutomataModule;
pub use cursor::Cursor;
pub use factored::{partition_resources, FactoredAutomata};
pub use minimize::{build_minimized, minimize, Minimized};
pub use space::{SpaceState, StateSpace};
