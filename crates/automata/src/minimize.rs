//! Automaton minimization by partition refinement.
//!
//! Proebsting & Fraser's construction yields *minimal* automata (6175
//! states for their MIPS R3000/R3010 description); the BFS construction
//! in [`Automaton::build`] does not minimize, so its raw state counts
//! overstate the approach. This module implements Moore-style partition
//! refinement with signature hashing: states are initially partitioned
//! by their per-symbol *admissibility* vector (which issues are legal),
//! then split until no symbol distinguishes two states of a block. All
//! states are accepting, so admissibility plus successor blocks fully
//! determine equivalence.

use crate::automaton::{Automaton, Direction, StateId};
use std::collections::HashMap;

/// The result of minimizing an automaton.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The minimal automaton.
    pub automaton: Automaton,
    /// For each original state, its state in the minimal automaton.
    pub state_map: Vec<StateId>,
}

/// Minimizes `a` by Moore partition refinement.
///
/// The returned automaton accepts exactly the same issue/advance
/// sequences (tested property), with the provably minimal number of
/// states for that language under the "all states accepting,
/// partiality distinguishes" convention.
pub fn minimize(a: &Automaton) -> Minimized {
    let n = a.num_states();
    let num_ops = a.num_ops();

    // Initial partition: by admissibility vector (which ops can issue).
    let mut block: Vec<u32> = Vec::with_capacity(n);
    {
        let mut index: HashMap<Vec<bool>, u32> = HashMap::new();
        for s in 0..n {
            let sig: Vec<bool> = (0..num_ops)
                .map(|op| a.can_issue(StateId(s as u32), rmd_machine::OpId(op as u32)))
                .collect();
            let next = index.len() as u32;
            let b = *index.entry(sig).or_insert(next);
            block.push(b);
        }
    }

    // Refine: signature = (own block, successor block per symbol).
    loop {
        let mut index: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut next_block: Vec<u32> = Vec::with_capacity(n);
        for s in 0..n {
            let sid = StateId(s as u32);
            let mut succ = Vec::with_capacity(num_ops + 1);
            for op in 0..num_ops {
                let t = a.issue(sid, rmd_machine::OpId(op as u32));
                succ.push(t.map_or(u32::MAX, |t| block[t.index()]));
            }
            succ.push(block[a.advance(sid).index()]);
            let key = (block[s], succ);
            let fresh = index.len() as u32;
            let b = *index.entry(key).or_insert(fresh);
            next_block.push(b);
        }
        let stable = index.len() as u32 == num_blocks(&block);
        block = next_block;
        if stable {
            break;
        }
    }

    // Build the quotient automaton. Block of the start state becomes
    // state 0 by renumbering.
    let nb = num_blocks(&block) as usize;
    let mut renumber: Vec<u32> = vec![u32::MAX; nb];
    let mut order: Vec<u32> = Vec::with_capacity(nb);
    // BFS order from the start block for a canonical numbering.
    let mut queue = std::collections::VecDeque::new();
    let start_block = block[0];
    renumber[start_block as usize] = 0;
    order.push(start_block);
    queue.push_back(start_block);
    // Representative original state per block.
    let mut rep: Vec<u32> = vec![u32::MAX; nb];
    for s in (0..n).rev() {
        rep[block[s] as usize] = s as u32;
    }
    while let Some(b) = queue.pop_front() {
        let s = StateId(rep[b as usize]);
        let visit = |tb: u32, renumber: &mut Vec<u32>, order: &mut Vec<u32>, queue: &mut std::collections::VecDeque<u32>| {
            if renumber[tb as usize] == u32::MAX {
                renumber[tb as usize] = order.len() as u32;
                order.push(tb);
                queue.push_back(tb);
            }
        };
        for op in 0..num_ops {
            if let Some(t) = a.issue(s, rmd_machine::OpId(op as u32)) {
                visit(block[t.index()], &mut renumber, &mut order, &mut queue);
            }
        }
        visit(block[a.advance(s).index()], &mut renumber, &mut order, &mut queue);
    }

    let reachable = order.len();
    let mut issue_t = vec![u32::MAX; reachable * num_ops];
    let mut advance_t = vec![0u32; reachable];
    for (new_idx, &b) in order.iter().enumerate() {
        let s = StateId(rep[b as usize]);
        for op in 0..num_ops {
            issue_t[new_idx * num_ops + op] = match a.issue(s, rmd_machine::OpId(op as u32)) {
                Some(t) => renumber[block[t.index()] as usize],
                None => u32::MAX,
            };
        }
        advance_t[new_idx] = renumber[block[a.advance(s).index()] as usize];
    }

    let automaton = Automaton::from_parts(a.direction(), num_ops, issue_t, advance_t);
    let state_map = block
        .iter()
        .map(|&b| StateId(renumber[b as usize]))
        .collect();
    Minimized { automaton, state_map }
}

fn num_blocks(block: &[u32]) -> u32 {
    block.iter().copied().max().map_or(0, |m| m + 1)
}

/// Convenience: build and minimize in one step.
///
/// # Errors
///
/// Propagates [`BuildError`](crate::BuildError) from construction.
pub fn build_minimized(
    machine: &rmd_machine::MachineDescription,
    direction: Direction,
    max_states: usize,
) -> Result<Automaton, crate::BuildError> {
    let a = Automaton::build(machine, direction, max_states)?;
    Ok(minimize(&a).automaton)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;
    use rmd_machine::{MachineBuilder, OpId};

    #[test]
    fn minimization_never_grows() {
        let m = example_machine();
        let a = Automaton::build(&m, Direction::Forward, 1 << 18).unwrap();
        let min = minimize(&a);
        assert!(min.automaton.num_states() <= a.num_states());
        assert!(min.automaton.num_states() > 1);
        assert_eq!(min.state_map.len(), a.num_states());
    }

    #[test]
    fn minimized_accepts_same_language_on_scripts() {
        let m = example_machine();
        let a = Automaton::build(&m, Direction::Forward, 1 << 18).unwrap();
        let min = minimize(&a).automaton;
        let ops = [OpId(0), OpId(1)];
        // Exhaustive scripts of length 6 over {A, B, advance}.
        let mut stack = vec![(a.start(), min.start(), 0u32)];
        while let Some((sa, sm, depth)) = stack.pop() {
            if depth == 6 {
                continue;
            }
            for &op in &ops {
                let ta = a.issue(sa, op);
                let tm = min.issue(sm, op);
                assert_eq!(ta.is_some(), tm.is_some(), "divergence at depth {depth}");
                if let (Some(ta), Some(tm)) = (ta, tm) {
                    stack.push((ta, tm, depth + 1));
                }
            }
            stack.push((a.advance(sa), min.advance(sm), depth + 1));
        }
    }

    #[test]
    fn redundant_resources_collapse_states() {
        // Two ops on duplicated resources: the automaton sees identical
        // behaviour whether one or both resources are modeled.
        let mut b = MachineBuilder::new("dup");
        let r0 = b.resource("r0");
        let r1 = b.resource("r1"); // shadow of r0
        b.operation("x").usage(r0, 0).usage(r1, 0).usage(r0, 2).usage(r1, 2).finish();
        let dup = b.build().unwrap();
        let mut b = MachineBuilder::new("single");
        let r0 = b.resource("r0");
        b.operation("x").usage(r0, 0).usage(r0, 2).finish();
        let single = b.build().unwrap();

        let a_dup = minimize(&Automaton::build(&dup, Direction::Forward, 1 << 16).unwrap());
        let a_single =
            minimize(&Automaton::build(&single, Direction::Forward, 1 << 16).unwrap());
        assert_eq!(
            a_dup.automaton.num_states(),
            a_single.automaton.num_states(),
            "equivalent machines must minimize to equal-size automata"
        );
    }
}
