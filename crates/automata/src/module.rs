//! A [`ContentionQuery`] adapter over the forward/reverse automaton
//! pair, so the automata baseline can sit behind the same interface as
//! the reservation-table modules and be driven by the cross-backend
//! conformance suite and the schedulers.
//!
//! The pair scheme has no native `free`: automaton states summarize the
//! whole prefix (suffix) of the schedule, so removing one operation
//! invalidates every cached state after (before) it. This adapter makes
//! removal work the only way the representation allows — it keeps the
//! scheduled-operation list plus a shadow owner map, and **rebuilds**
//! the [`PairScheduler`] by replaying the surviving operations whenever
//! `free` or an evicting `assign&free` strikes one out. Each rebuild is
//! counted as a [`WorkCounters::transitions`] and its replay lookups
//! are charged to the triggering call, which is exactly the update
//! overhead the paper's §2 attributes to the automata approach.

use crate::automaton::{Automaton, Direction};
use crate::unrestricted::PairScheduler;
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{ContentionQuery, OpInstance, QueryFn, WorkCounters};
use std::collections::HashMap;

/// Contention query module backed by a forward/reverse automaton pair.
///
/// Unlike the reservation-table modules, the schedule horizon is fixed
/// at construction: `check` answers `false` for any placement that does
/// not fit in `0..horizon`, and `assign` of such a placement panics
/// (the automata cache one state per cycle and cannot grow on demand
/// without a full rebuild).
///
/// # Example
///
/// ```
/// use rmd_automata::{AutomataModule, Automaton, Direction};
/// use rmd_machine::models::example_machine;
/// use rmd_query::{ContentionQuery, OpInstance};
///
/// let m = example_machine();
/// let fwd = Automaton::build(&m, Direction::Forward, 1 << 20).unwrap();
/// let rev = Automaton::build(&m, Direction::Reverse, 1 << 20).unwrap();
/// let b = m.op_by_name("B").unwrap();
///
/// let mut q = AutomataModule::new(&m, &fwd, &rev, 32);
/// q.assign(OpInstance(0), b, 0);
/// assert!(!q.check(b, 1)); // 1 ∈ F[B][B]
/// let evicted = q.assign_free(OpInstance(1), b, 1);
/// assert_eq!(evicted, vec![OpInstance(0)]);
/// q.free(OpInstance(1), b, 1);
/// assert!(q.check(b, 1));
/// ```
#[derive(Clone, Debug)]
pub struct AutomataModule<'a> {
    machine: &'a MachineDescription,
    fwd: &'a Automaton,
    rev: &'a Automaton,
    horizon: u32,
    sched: PairScheduler<'a>,
    /// Per-op `(resource, cycle)` usages sorted by (cycle, resource) —
    /// the eviction-scan order every reservation-table module uses, so
    /// `assign_free` reports evictions in the identical order.
    usages: Vec<Vec<(u32, u32)>>,
    /// Scheduled instances in insertion order (the replay script).
    insts: Vec<(OpInstance, OpId, u32)>,
    /// Shadow owner map: `(resource, cycle)` -> holding instance.
    owner: HashMap<(u32, u32), OpInstance>,
    counters: WorkCounters,
}

impl<'a> AutomataModule<'a> {
    /// Creates an empty schedule over cycles `0..horizon`.
    ///
    /// # Panics
    ///
    /// Panics if the automata are not a Forward/Reverse pair built for
    /// a machine with this operation count.
    pub fn new(
        machine: &'a MachineDescription,
        fwd: &'a Automaton,
        rev: &'a Automaton,
        horizon: u32,
    ) -> Self {
        assert_eq!(fwd.direction(), Direction::Forward);
        assert_eq!(rev.direction(), Direction::Reverse);
        let usages = machine
            .operations()
            .iter()
            .map(|op| {
                let mut v: Vec<(u32, u32)> = op
                    .table()
                    .usages()
                    .iter()
                    .map(|u| (u.resource.0, u.cycle))
                    .collect();
                v.sort_unstable_by_key(|&(r, c)| (c, r));
                v
            })
            .collect();
        AutomataModule {
            machine,
            fwd,
            rev,
            horizon,
            sched: PairScheduler::new(machine, fwd, rev, horizon),
            usages,
            insts: Vec::new(),
            owner: HashMap::new(),
            counters: WorkCounters::new(),
        }
    }

    /// The fixed schedule horizon.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The pair scheduler's own overhead counters (automaton lookups,
    /// cached-state writes) accumulated since the last rebuild.
    pub fn pair_stats(&self) -> crate::unrestricted::PairStats {
        self.sched.stats()
    }

    /// Automaton transition lookups performed since the last call to
    /// `before`, charged to a work-unit counter.
    fn charge_lookups(&mut self, before: u64, unit: fn(&mut WorkCounters) -> &mut u64) {
        let after = self.sched.stats().lookups;
        *unit(&mut self.counters) += after - before;
    }

    /// Replays the surviving instances into a fresh pair scheduler.
    /// The replay's lookups are charged to `unit`; the rebuild itself
    /// is counted as a transition.
    fn rebuild(&mut self, unit: fn(&mut WorkCounters) -> &mut u64) {
        let mut sched = PairScheduler::new(self.machine, self.fwd, self.rev, self.horizon);
        for &(_, op, cycle) in &self.insts {
            sched.insert(op, cycle);
        }
        *unit(&mut self.counters) += sched.stats().lookups;
        self.counters.transitions += 1;
        self.sched = sched;
    }

    fn record(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        for &(r, c) in &self.usages[op.index()] {
            self.owner.insert((r, cycle + c), inst);
        }
        self.insts.push((inst, op, cycle));
    }

    /// Removes `inst` from the scheduled list and owner map, returning
    /// its (op, cycle). Does **not** rebuild the scheduler.
    fn strike(&mut self, inst: OpInstance) -> (OpId, u32) {
        let i = self
            .insts
            .iter()
            .position(|&(x, _, _)| x == inst)
            .expect("strike of unscheduled instance");
        let (_, op, cycle) = self.insts.remove(i);
        for &(r, c) in &self.usages[op.index()] {
            self.owner.remove(&(r, cycle + c));
        }
        (op, cycle)
    }
}

impl ContentionQuery for AutomataModule<'_> {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        self.counters.check.calls += 1;
        let before = self.sched.stats().lookups;
        let ok = self.sched.check(op, cycle);
        self.charge_lookups(before, |c| &mut c.check.units);
        ok
    }

    fn check_window(&mut self, op: OpId, start: u32, len: u32) -> u64 {
        // The pair scheduler caches one automaton state per cycle, so a
        // run of consecutive probes reuses its cursor; the override
        // batches the lookup accounting over the whole window instead
        // of snapshotting the stats around every cycle.
        let len = len.min(64);
        let before = self.sched.stats().lookups;
        let mut mask = 0u64;
        let mut probed = 0u64;
        for i in 0..len {
            let Some(cycle) = start.checked_add(i) else {
                break;
            };
            probed += 1;
            if self.sched.check(op, cycle) {
                mask |= 1u64 << i;
            }
        }
        let lookups = self.sched.stats().lookups - before;
        self.counters.charge_equivalent_checks(probed, lookups);
        self.counters.record(QueryFn::CheckWindow, lookups);
        mask
    }

    fn first_free_in(&mut self, op: OpId, start: u32, len: u32) -> Option<u32> {
        let end = u64::from(start) + u64::from(len);
        let mut cursor = u64::from(start);
        while cursor < end && cursor <= u64::from(u32::MAX) {
            let chunk = (end - cursor).min(64) as u32;
            let chunk_start = cursor as u32;
            let before = self.sched.stats().lookups;
            let mut probed = 0u64;
            let mut found = None;
            for i in 0..chunk {
                let Some(cycle) = chunk_start.checked_add(i) else {
                    break;
                };
                probed += 1;
                if self.sched.check(op, cycle) {
                    found = Some(cycle);
                    break;
                }
            }
            let lookups = self.sched.stats().lookups - before;
            self.counters.charge_equivalent_checks(probed, lookups);
            self.counters.record(QueryFn::CheckWindow, lookups);
            if found.is_some() {
                return found;
            }
            cursor += u64::from(chunk);
        }
        None
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        self.counters.assign.calls += 1;
        let before = self.sched.stats().lookups;
        self.sched.insert(op, cycle);
        self.charge_lookups(before, |c| &mut c.assign.units);
        self.record(inst, op, cycle);
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        self.counters.assign_free.calls += 1;
        // Scan the new reservation's usage slots in the shared (cycle,
        // resource) order, striking out every conflicting holder — the
        // same walk the discrete module performs over its owner table.
        let mut evicted = Vec::new();
        for ui in 0..self.usages[op.index()].len() {
            let (r, c) = self.usages[op.index()][ui];
            self.counters.assign_free.units += 1;
            if let Some(&holder) = self.owner.get(&(r, cycle + c)) {
                if holder != inst {
                    let (hop, _) = self.strike(holder);
                    self.counters.assign_free.units += self.usages[hop.index()].len() as u64;
                    evicted.push(holder);
                }
            }
        }
        if evicted.is_empty() {
            let before = self.sched.stats().lookups;
            self.sched.insert(op, cycle);
            self.charge_lookups(before, |c| &mut c.assign_free.units);
        } else {
            // The automata cannot unschedule: replay the survivors.
            self.rebuild(|c| &mut c.assign_free.units);
            self.sched.insert(op, cycle);
        }
        self.record(inst, op, cycle);
        evicted
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        self.counters.free.calls += 1;
        let struck = self.strike(inst);
        debug_assert_eq!(struck, (op, cycle), "free of unscheduled instance");
        self.rebuild(|c| &mut c.free.units);
    }

    fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut WorkCounters {
        &mut self.counters
    }

    fn reset(&mut self) {
        self.sched = PairScheduler::new(self.machine, self.fwd, self.rev, self.horizon);
        self.insts.clear();
        self.owner.clear();
        self.counters.reset();
    }

    fn num_scheduled(&self) -> usize {
        self.insts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;

    fn pair(m: &MachineDescription) -> (Automaton, Automaton) {
        (
            Automaton::build(m, Direction::Forward, 1 << 20).unwrap(),
            Automaton::build(m, Direction::Reverse, 1 << 20).unwrap(),
        )
    }

    #[test]
    fn behaves_like_a_reservation_table_module() {
        use rmd_query::DiscreteModule;
        let m = example_machine();
        let (f, r) = pair(&m);
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        let mut am = AutomataModule::new(&m, &f, &r, 64);
        let mut ds = DiscreteModule::new(&m);
        // Arbitrary-order script mixing all four functions.
        let script: &[(&str, OpId, u32)] = &[
            ("assign", b, 20),
            ("assign", a, 3),
            ("assign", b, 0),
            ("free", b, 20),
            ("assign_free", b, 2),
            ("assign", a, 21),
            ("free", a, 3),
        ];
        let mut next = 0u32;
        let mut live: Vec<(OpInstance, OpId, u32)> = Vec::new();
        for &(what, op, t) in script {
            match what {
                "assign" => {
                    assert_eq!(am.check(op, t), ds.check(op, t), "{op:?}@{t}");
                    let i = OpInstance(next);
                    next += 1;
                    am.assign(i, op, t);
                    ds.assign(i, op, t);
                    live.push((i, op, t));
                }
                "assign_free" => {
                    let i = OpInstance(next);
                    next += 1;
                    let ea = am.assign_free(i, op, t);
                    let ed = ds.assign_free(i, op, t);
                    assert_eq!(ea, ed, "{op:?}@{t}");
                    live.retain(|(x, _, _)| !ea.contains(x));
                    live.push((i, op, t));
                }
                "free" => {
                    let pos = live
                        .iter()
                        .position(|&(_, o, c)| o == op && c == t)
                        .expect("script frees a live instance");
                    let (i, _, _) = live.remove(pos);
                    am.free(i, op, t);
                    ds.free(i, op, t);
                }
                _ => unreachable!(),
            }
            assert_eq!(am.num_scheduled(), ds.num_scheduled());
        }
        for t in 0..40 {
            for op in [a, b] {
                assert_eq!(am.check(op, t), ds.check(op, t), "{op:?} @ {t}");
            }
        }
    }

    #[test]
    fn out_of_horizon_checks_are_false() {
        let m = example_machine();
        let (f, r) = pair(&m);
        let b = m.op_by_name("B").unwrap();
        let mut am = AutomataModule::new(&m, &f, &r, 10);
        // B's table is 8 cycles long: 2 is the last in-horizon slot.
        assert!(am.check(b, 2));
        assert!(!am.check(b, 3));
        assert_eq!(am.horizon(), 10);
    }

    #[test]
    fn rebuilds_are_metered_as_transitions() {
        let m = example_machine();
        let (f, r) = pair(&m);
        let b = m.op_by_name("B").unwrap();
        let mut am = AutomataModule::new(&m, &f, &r, 64);
        am.assign(OpInstance(0), b, 0);
        assert_eq!(am.counters().transitions, 0);
        // Evicting assign_free forces a replay...
        am.assign_free(OpInstance(1), b, 1);
        assert_eq!(am.counters().transitions, 1);
        // ...and so does free.
        am.free(OpInstance(1), b, 1);
        assert_eq!(am.counters().transitions, 2);
        assert_eq!(am.num_scheduled(), 0);
        assert!(am.counters().free.units > 0 || am.num_scheduled() == 0);
    }
}
