//! Lazy reachable-state enumeration over resource-commitment states.
//!
//! [`StateSpace`] exposes the commitment-state transition system of a
//! machine description *without* building an explicit [`Automaton`]
//! transition table: callers hold [`SpaceState`] values and ask for
//! successors one at a time. This is the enumeration API behind
//! `rmd certify`'s global product pass, where the interesting object is
//! the product of two state spaces — materializing either side's full
//! automaton first would defeat the purpose (the Cydra 5 commitment
//! space exceeds 5 million states even after reduction).
//!
//! A state is a commitment matrix: bit `(cycle, resource)` set iff the
//! resource is committed that many cycles from now. Issuing an operation
//! ORs in its reservation-table mask (legal only when disjoint); one
//! cycle of time shifts every commitment toward the present.
//!
//! [`Automaton`]: crate::Automaton

use crate::state::{StateKey, StateShape};
use rmd_machine::{MachineDescription, OpId};

/// One resource-commitment state of a [`StateSpace`].
///
/// Opaque except for [`words`](SpaceState::words), which exposes the
/// packed bits so product constructions can intern composite states.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SpaceState(StateKey);

impl SpaceState {
    /// The packed commitment bits, least-significant bit first.
    pub fn words(&self) -> &[u64] {
        &self.0.bits
    }
}

/// The commitment-state transition system of one machine description,
/// enumerated lazily (no transition table is built).
pub struct StateSpace {
    shape: StateShape,
    masks: Vec<StateKey>,
}

impl StateSpace {
    /// Build the state space of `machine`. Cost is one mask per
    /// operation; no reachability is performed.
    pub fn new(machine: &MachineDescription) -> Self {
        let shape = StateShape::for_machine(machine);
        let masks = machine
            .operations()
            .iter()
            .map(|op| shape.table_mask(op.table(), None))
            .collect();
        StateSpace { shape, masks }
    }

    /// The empty-pipeline start state.
    pub fn start(&self) -> SpaceState {
        SpaceState(self.shape.empty())
    }

    /// Number of operations (valid `OpId` indexes for
    /// [`can_issue`](StateSpace::can_issue)).
    pub fn num_ops(&self) -> usize {
        self.masks.len()
    }

    /// Number of `u64` words in each state's packed representation.
    pub fn state_words(&self) -> usize {
        self.shape.blocks
    }

    /// Whether `op` can issue in `state` (its reservation table is
    /// disjoint from the current commitments).
    pub fn can_issue(&self, state: &SpaceState, op: OpId) -> bool {
        !self.shape.conflicts(&state.0, &self.masks[op.index()])
    }

    /// The state after issuing `op`, or `None` when `op` conflicts.
    pub fn issue(&self, state: &SpaceState, op: OpId) -> Option<SpaceState> {
        if !self.can_issue(state, op) {
            return None;
        }
        Some(SpaceState(
            self.shape.union(&state.0, &self.masks[op.index()]),
        ))
    }

    /// The state one cycle later (commitments at cycle 0 expire).
    pub fn advance(&self, state: &SpaceState) -> SpaceState {
        SpaceState(self.shape.advance(&state.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Automaton, Direction};
    use rmd_machine::models;
    use std::collections::{HashSet, VecDeque};

    /// BFS over the lazy space must reach exactly as many states as the
    /// eagerly built forward automaton.
    #[test]
    fn reachable_count_matches_automaton() {
        let m = models::example_machine();
        let auto = Automaton::build(&m, Direction::Forward, 1 << 20).expect("fig1 fits");

        let space = StateSpace::new(&m);
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(space.start());
        queue.push_back(space.start());
        while let Some(s) = queue.pop_front() {
            let mut push = |n: SpaceState| {
                if seen.insert(n.clone()) {
                    queue.push_back(n);
                }
            };
            push(space.advance(&s));
            for op in 0..space.num_ops() {
                if let Some(n) = space.issue(&s, OpId(op as u32)) {
                    push(n);
                }
            }
        }
        assert_eq!(seen.len(), auto.num_states());
    }

    #[test]
    fn issue_then_advance_frees_resources() {
        let m = models::example_machine();
        let space = StateSpace::new(&m);
        let op = OpId(0);
        let s = space.issue(&space.start(), op).expect("empty state is free");
        assert!(!space.can_issue(&s, op), "table self-conflicts at cycle 0");
        let mut cur = s;
        for _ in 0..m.max_table_length() {
            cur = space.advance(&cur);
        }
        assert_eq!(cur, space.start(), "all commitments expire");
    }
}
