//! Resource-commitment state encoding.

use rmd_machine::{MachineDescription, ReservationTable};

/// A resource-commitment matrix: bit `(cycle * num_resources + r)` is set
/// iff resource `r` is committed `cycle` cycles from now. Fixed width
/// `horizon × num_resources` bits, packed in `u64` blocks.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct StateKey {
    pub bits: Vec<u64>,
}

/// Dimensions shared by all states of one automaton.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StateShape {
    pub num_resources: usize,
    pub horizon: usize,
    pub blocks: usize,
}

impl StateShape {
    pub fn for_machine(m: &MachineDescription) -> Self {
        let num_resources = m.num_resources();
        let horizon = m.max_table_length() as usize;
        let bits = num_resources * horizon.max(1);
        StateShape {
            num_resources,
            horizon: horizon.max(1),
            blocks: bits.div_ceil(64),
        }
    }

    pub fn empty(&self) -> StateKey {
        StateKey {
            bits: vec![0; self.blocks],
        }
    }

    /// The bitmask of a reservation table (restricted to the resources in
    /// `keep`, or all when `keep` is `None`).
    pub fn table_mask(&self, table: &ReservationTable, keep: Option<&[bool]>) -> StateKey {
        let mut k = self.empty();
        for u in table.usages() {
            if let Some(keep) = keep {
                if !keep[u.resource.index()] {
                    continue;
                }
            }
            let bit = u.cycle as usize * self.num_resources + u.resource.index();
            k.bits[bit / 64] |= 1 << (bit % 64);
        }
        k
    }

    /// Whether `state` and `mask` share a committed bit.
    pub fn conflicts(&self, state: &StateKey, mask: &StateKey) -> bool {
        state.bits.iter().zip(&mask.bits).any(|(&a, &b)| a & b != 0)
    }

    /// `state ∪ mask`.
    pub fn union(&self, state: &StateKey, mask: &StateKey) -> StateKey {
        StateKey {
            bits: state
                .bits
                .iter()
                .zip(&mask.bits)
                .map(|(&a, &b)| a | b)
                .collect(),
        }
    }

    /// Shift the state one cycle toward the present (commitments at
    /// cycle 0 expire).
    pub fn advance(&self, state: &StateKey) -> StateKey {
        let mut out = self.empty();
        for cycle in 1..self.horizon {
            for r in 0..self.num_resources {
                let src = cycle * self.num_resources + r;
                if state.bits[src / 64] & (1 << (src % 64)) != 0 {
                    let dst = (cycle - 1) * self.num_resources + r;
                    out.bits[dst / 64] |= 1 << (dst % 64);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::MachineBuilder;

    fn toy() -> MachineDescription {
        let mut b = MachineBuilder::new("t");
        let r0 = b.resource("r0");
        let r1 = b.resource("r1");
        b.operation("x").usage(r0, 0).usage(r1, 2).finish();
        b.build().unwrap()
    }

    #[test]
    fn mask_sets_expected_bits() {
        let m = toy();
        let sh = StateShape::for_machine(&m);
        assert_eq!(sh.horizon, 3);
        assert_eq!(sh.num_resources, 2);
        let mask = sh.table_mask(m.operations()[0].table(), None);
        // bit 0 (cycle 0, r0) and bit 2*2+1=5 (cycle 2, r1).
        assert_eq!(mask.bits[0], 0b100001);
    }

    #[test]
    fn advance_shifts_toward_present() {
        let m = toy();
        let sh = StateShape::for_machine(&m);
        let mask = sh.table_mask(m.operations()[0].table(), None);
        let a1 = sh.advance(&mask);
        // cycle-2 r1 commitment moves to cycle 1: bit 1*2+1 = 3.
        assert_eq!(a1.bits[0], 0b1000);
        let a2 = sh.advance(&a1);
        assert_eq!(a2.bits[0], 0b10);
        let a3 = sh.advance(&a2);
        assert_eq!(a3, sh.empty());
    }

    #[test]
    fn conflict_detection() {
        let m = toy();
        let sh = StateShape::for_machine(&m);
        let mask = sh.table_mask(m.operations()[0].table(), None);
        assert!(sh.conflicts(&mask, &mask));
        assert!(!sh.conflicts(&sh.empty(), &mask));
        let u = sh.union(&sh.empty(), &mask);
        assert_eq!(u, mask);
    }

    #[test]
    fn keep_filter_restricts_resources() {
        let m = toy();
        let sh = StateShape::for_machine(&m);
        let keep = vec![true, false];
        let mask = sh.table_mask(m.operations()[0].table(), Some(&keep));
        assert_eq!(mask.bits[0], 0b1); // only r0@0 survives
    }
}
