//! Unrestricted (arbitrary-order) scheduling over a forward/reverse
//! automaton pair — Bala & Rubin's scheme, which the paper's §2/§6
//! compare against.
//!
//! A forward automaton only supports nondecreasing-cycle placement. To
//! insert an operation into the *middle* of a partial schedule, Bala &
//! Rubin keep a **pair** of automata (forward and reverse) and cache one
//! state of each **per schedule cycle**; a cycle is contention-free for
//! an operation iff both automata accept it there. Each insertion must
//! then *propagate* new states through the adjacent cycles — the memory
//! and update overhead the reservation-table approach avoids.
//!
//! [`PairScheduler`] implements the scheme exactly (its answers are
//! property-tested against direct reservation-table simulation) and
//! meters the overhead: per-query automaton lookups and per-insert
//! cached-state writes.

use crate::automaton::{Automaton, Direction, StateId};
use rmd_machine::{MachineDescription, OpId};

/// Overhead counters for the pair scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PairStats {
    /// Automaton transition-table lookups.
    pub lookups: u64,
    /// Cached per-cycle states (re)written by insertions.
    pub state_writes: u64,
    /// Checks issued.
    pub checks: u64,
    /// Insertions performed.
    pub inserts: u64,
}

/// An unrestricted scheduler over a forward/reverse automaton pair.
///
/// # Example
///
/// ```
/// use rmd_automata::{unrestricted::PairScheduler, Automaton, Direction};
/// use rmd_machine::models::example_machine;
///
/// let m = example_machine();
/// let fwd = Automaton::build(&m, Direction::Forward, 1 << 20).unwrap();
/// let rev = Automaton::build(&m, Direction::Reverse, 1 << 20).unwrap();
/// let b = m.op_by_name("B").unwrap();
/// let a = m.op_by_name("A").unwrap();
///
/// let mut s = PairScheduler::new(&m, &fwd, &rev, 32);
/// // Out-of-order placement: cycle 8 first, then insert at 0.
/// assert!(s.check(b, 8));
/// s.insert(b, 8);
/// assert!(s.check(b, 0));
/// s.insert(b, 0);
/// // -1 ∈ F[A][B]: A one cycle *before* a B conflicts — only the
/// // reverse automaton can see the B at cycle 8 from cycle 7.
/// assert!(!s.check(a, 7));
/// assert!(s.check(a, 9));
/// // 2 ∈ F[B][B]: another B two cycles after the B at 0 conflicts.
/// assert!(!s.check(b, 2));
/// assert!(s.check(b, 4));
/// ```
#[derive(Clone, Debug)]
pub struct PairScheduler<'a> {
    machine: &'a MachineDescription,
    fwd: &'a Automaton,
    rev: &'a Automaton,
    horizon: u32,
    /// Operations issued per forward cycle.
    ops_at: Vec<Vec<OpId>>,
    /// `fwd_states[c]`: forward state at the start of cycle `c`.
    fwd_states: Vec<StateId>,
    /// Operations per *reversed* cycle.
    rev_ops_at: Vec<Vec<OpId>>,
    /// `rev_states[c']`: reverse state at the start of reversed cycle.
    rev_states: Vec<StateId>,
    stats: PairStats,
}

impl<'a> PairScheduler<'a> {
    /// Creates an empty schedule over cycles `0..horizon`.
    ///
    /// # Panics
    ///
    /// Panics if the automata were not built as a Forward/Reverse pair
    /// for machines with this operation count.
    pub fn new(
        machine: &'a MachineDescription,
        fwd: &'a Automaton,
        rev: &'a Automaton,
        horizon: u32,
    ) -> Self {
        assert_eq!(fwd.direction(), Direction::Forward);
        assert_eq!(rev.direction(), Direction::Reverse);
        assert_eq!(fwd.num_ops(), machine.num_operations());
        assert_eq!(rev.num_ops(), machine.num_operations());
        let h = horizon as usize;
        PairScheduler {
            machine,
            fwd,
            rev,
            horizon,
            ops_at: vec![Vec::new(); h],
            fwd_states: vec![fwd.start(); h + 1],
            rev_ops_at: vec![Vec::new(); h],
            rev_states: vec![rev.start(); h + 1],
            stats: PairStats::default(),
        }
    }

    /// The overhead counters.
    pub fn stats(&self) -> PairStats {
        self.stats
    }

    /// Bytes of cached automaton state this schedule holds (the §6
    /// memory overhead: two states per schedule cycle).
    pub fn cached_state_bytes(&self) -> usize {
        (self.fwd_states.len() + self.rev_states.len()) * core::mem::size_of::<StateId>()
    }

    /// The reversed issue cycle of `op` placed at forward cycle `t`.
    fn rev_cycle(&self, op: OpId, t: u32) -> u32 {
        let len = self.machine.operation(op).table().length().max(1);
        self.horizon - t - len
    }

    /// Whether `op` fits within the horizon at `t`.
    fn in_horizon(&self, op: OpId, t: u32) -> bool {
        t + self.machine.operation(op).table().length().max(1) <= self.horizon
    }

    /// Can `op` issue at cycle `t` without contention?
    ///
    /// The fast path is Bala & Rubin's: one transition from the cached
    /// forward state at `t` (conflicts with operations issued at or
    /// before `t`) and one from the cached reverse state at the
    /// operation's reversed cycle (conflicts with operations *ending* at
    /// or after it ends). Those two lookups miss exactly one case: an
    /// already-scheduled operation whose span nests *strictly inside*
    /// the new operation's span (issued later, finished earlier) — it is
    /// behind both cached states. A forward replay across the new
    /// operation's span (the same state propagation an insertion
    /// performs) closes that hole; its cost is metered, which is
    /// precisely the update overhead the PLDI paper's §2 attributes to
    /// the automata approach.
    pub fn check(&mut self, op: OpId, t: u32) -> bool {
        self.stats.checks += 1;
        if !self.in_horizon(op, t) {
            return false;
        }
        // Forward fast path: conflicts with ops at cycles <= t.
        let mut s = self.fwd_states[t as usize];
        for &prev in &self.ops_at[t as usize] {
            self.stats.lookups += 1;
            s = self.fwd.issue(s, prev).expect("cached schedule is legal");
        }
        self.stats.lookups += 1;
        let Some(mut s) = self.fwd.issue(s, op) else {
            return false;
        };
        // Reverse fast path: conflicts with ops ending at or after this
        // op's end.
        let rc = self.rev_cycle(op, t);
        let mut rs = self.rev_states[rc as usize];
        for &prev in &self.rev_ops_at[rc as usize] {
            self.stats.lookups += 1;
            rs = self.rev.issue(rs, prev).expect("cached schedule is legal");
        }
        self.stats.lookups += 1;
        if self.rev.issue(rs, op).is_none() {
            return false;
        }
        // Span replay: catch nested ops invisible to both fast paths.
        let len = self.machine.operation(op).table().length().max(1);
        for c in (t + 1)..(t + len).min(self.horizon) {
            s = self.fwd.advance(s);
            for &prev in &self.ops_at[c as usize] {
                self.stats.lookups += 1;
                match self.fwd.issue(s, prev) {
                    Some(next) => s = next,
                    None => return false,
                }
            }
        }
        true
    }

    /// Inserts `op` at cycle `t` (must be contention-free), propagating
    /// the cached states of both automata.
    ///
    /// # Panics
    ///
    /// Panics if the placement conflicts — call [`check`](Self::check)
    /// first, as a scheduler would.
    pub fn insert(&mut self, op: OpId, t: u32) {
        assert!(self.in_horizon(op, t), "placement beyond horizon");
        self.stats.inserts += 1;
        let rc = self.rev_cycle(op, t);
        self.ops_at[t as usize].push(op);
        self.rev_ops_at[rc as usize].push(op);
        self.propagate_forward(t);
        self.propagate_reverse(rc);
    }

    fn propagate_forward(&mut self, from: u32) {
        for c in from as usize..self.ops_at.len() {
            let mut s = self.fwd_states[c];
            for &o in &self.ops_at[c] {
                self.stats.lookups += 1;
                s = self
                    .fwd
                    .issue(s, o)
                    .expect("insert called on a conflicting placement");
            }
            let next = self.fwd.advance(s);
            self.stats.state_writes += 1;
            if self.fwd_states[c + 1] == next {
                return; // states converged; later cycles unaffected
            }
            self.fwd_states[c + 1] = next;
        }
    }

    fn propagate_reverse(&mut self, from: u32) {
        for c in from as usize..self.rev_ops_at.len() {
            let mut s = self.rev_states[c];
            for &o in &self.rev_ops_at[c] {
                self.stats.lookups += 1;
                s = self
                    .rev
                    .issue(s, o)
                    .expect("insert called on a conflicting placement");
            }
            let next = self.rev.advance(s);
            self.stats.state_writes += 1;
            if self.rev_states[c + 1] == next {
                return;
            }
            self.rev_states[c + 1] = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;

    fn pair(m: &MachineDescription) -> (Automaton, Automaton) {
        (
            Automaton::build(m, Direction::Forward, 1 << 20).unwrap(),
            Automaton::build(m, Direction::Reverse, 1 << 20).unwrap(),
        )
    }

    #[test]
    fn out_of_order_insertion_sees_later_conflicts() {
        let m = example_machine();
        let (f, r) = pair(&m);
        let b = m.op_by_name("B").unwrap();
        let mut s = PairScheduler::new(&m, &f, &r, 40);
        s.insert(b, 10);
        // 1,2,3 ∈ F[B][B]: cycles 7..=9 conflict *forward in time* —
        // only the reverse automaton can see that.
        assert!(!s.check(b, 9));
        assert!(!s.check(b, 8));
        assert!(!s.check(b, 7));
        assert!(s.check(b, 6));
        // ... and 11..=13 conflict via the forward automaton.
        assert!(!s.check(b, 11));
        assert!(s.check(b, 14));
    }

    #[test]
    fn matches_reservation_tables_on_a_script() {
        use rmd_query::{ContentionQuery, DiscreteModule, OpInstance};
        let m = example_machine();
        let (f, r) = pair(&m);
        let mut pairsched = PairScheduler::new(&m, &f, &r, 64);
        let mut tables = DiscreteModule::new(&m);
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        // Arbitrary-order script with interleaved checks.
        let script = [
            (b, 20u32),
            (a, 3),
            (b, 0),
            (a, 21),
            (b, 8),
            (a, 9),
            (b, 30),
            (a, 0),
        ];
        let mut inst = 0u32;
        for &(op, t) in &script {
            let x = pairsched.check(op, t);
            let y = tables.check(op, t);
            assert_eq!(x, y, "{op:?} @ {t}");
            if x {
                pairsched.insert(op, t);
                tables.assign(OpInstance(inst), op, t);
                inst += 1;
            }
        }
        // Exhaustive agreement after the script.
        for t in 0..40 {
            for op in [a, b] {
                assert_eq!(pairsched.check(op, t), tables.check(op, t), "{op:?} @ {t}");
            }
        }
    }

    #[test]
    fn insertion_overhead_is_metered() {
        let m = example_machine();
        let (f, r) = pair(&m);
        let b = m.op_by_name("B").unwrap();
        let mut s = PairScheduler::new(&m, &f, &r, 64);
        s.insert(b, 0);
        let st = s.stats();
        assert!(st.state_writes > 0, "insertions must touch cached states");
        assert_eq!(st.inserts, 1);
        assert!(s.cached_state_bytes() >= 2 * 65 * 4);
    }

    #[test]
    fn nested_span_conflicts_are_caught() {
        // A short op strictly inside a long op's span is invisible to
        // both cached fast paths (issued later, finished earlier); the
        // span replay must reject it. div.s nests inside div.d on the
        // MIPS divider.
        use rmd_query::{ContentionQuery, DiscreteModule};
        let m = rmd_machine::models::mips_r3000();
        let (f, r) = pair(&m);
        let dd = m.op_by_name("div.d").unwrap();
        let ds = m.op_by_name("div.s").unwrap();
        let mut s = PairScheduler::new(&m, &f, &r, 64);
        let mut tables = DiscreteModule::new(&m);
        // Place the SHORT op first, then probe the LONG op around it.
        s.insert(ds, 10);
        tables.assign(rmd_query::OpInstance(0), ds, 10);
        for t in 0..30u32 {
            assert_eq!(s.check(dd, t), tables.check(dd, t), "div.d @ {t}");
        }
        // In particular, issuing div.d a few cycles before the nested
        // div.s must conflict on the shared divider.
        assert!(!s.check(dd, 7));
    }

    #[test]
    fn horizon_is_enforced() {
        let m = example_machine();
        let (f, r) = pair(&m);
        let b = m.op_by_name("B").unwrap();
        let mut s = PairScheduler::new(&m, &f, &r, 10);
        // B is 8 cycles long: latest legal issue is cycle 2.
        assert!(s.check(b, 2));
        assert!(!s.check(b, 3));
    }
}
