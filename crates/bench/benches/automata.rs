//! Automata baseline: construction cost and query throughput of the
//! finite-state-automaton approach vs. reduced reservation tables
//! (paper §2/§6/§8 comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmd_automata::{partition_resources, Automaton, Direction, FactoredAutomata};
use rmd_core::{reduce, Objective};
use rmd_machine::models::{alpha21064, example_machine, mips_r3000};
use rmd_machine::OpId;
use rmd_query::{BitvecModule, ContentionQuery, DiscreteModule, WordLayout};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("automaton_build");
    g.sample_size(10);
    let ex = example_machine();
    g.bench_function("example-monolithic", |b| {
        b.iter(|| Automaton::build(black_box(&ex), Direction::Forward, 1 << 20).unwrap());
    });
    let alpha = alpha21064();
    let p = partition_resources(&alpha, 2);
    g.bench_function("alpha-factored-2", |b| {
        b.iter(|| {
            FactoredAutomata::build(black_box(&alpha), Direction::Forward, &p, 1 << 20).unwrap()
        });
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let m = mips_r3000();
    let fsa = Automaton::build(&m, Direction::Forward, 2_000_000).expect("mips automaton");
    let red = reduce(&m, Objective::ResUses);
    let n = red.reduced.num_resources().max(1);
    let k = (64 / n as u32).max(1);
    let red_bv = reduce(&m, Objective::KCycleWord { k });
    let k_fit = k.min((64 / red_bv.reduced.num_resources() as u32).max(1));

    let num_ops = m.num_operations() as u32;
    let script: Vec<OpId> = (0..4096u32).map(|i| OpId((i * 31) % num_ops)).collect();

    let mut g = c.benchmark_group("query_throughput_mips");
    g.throughput(Throughput::Elements(script.len() as u64));

    g.bench_function(BenchmarkId::from_parameter("fsa-cursor"), |b| {
        b.iter(|| {
            let mut s = fsa.start();
            let mut issued = 0u32;
            for &op in &script {
                if let Some(next) = fsa.issue(s, op) {
                    s = next;
                    issued += 1;
                }
                s = fsa.advance(s);
            }
            black_box(issued)
        });
    });
    g.bench_function(BenchmarkId::from_parameter("original-discrete"), |b| {
        b.iter(|| {
            let mut q = DiscreteModule::new(&m);
            let mut issued = 0u32;
            for (i, &op) in script.iter().enumerate() {
                let t = i as u32;
                if q.check(op, t) {
                    q.assign(rmd_query::OpInstance(issued), op, t);
                    issued += 1;
                }
            }
            black_box(issued)
        });
    });
    g.bench_function(
        BenchmarkId::from_parameter(format!("reduced-bitvec-k{k_fit}")),
        |b| {
            b.iter(|| {
                let mut q = BitvecModule::new(&red_bv.reduced, WordLayout::with_k(64, k_fit));
                let mut issued = 0u32;
                for (i, &op) in script.iter().enumerate() {
                    let t = i as u32;
                    if q.check(op, t) {
                        q.assign(rmd_query::OpInstance(issued), op, t);
                        issued += 1;
                    }
                }
                black_box(issued)
            });
        },
    );
    g.finish();
}

/// Unrestricted (arbitrary-order) insertion: the Bala–Rubin pair scheme
/// must propagate cached per-cycle states on every insertion, while the
/// reservation-table module just ORs the new reservations in — the
/// overhead the paper's §2 predicts.
fn bench_unrestricted(c: &mut Criterion) {
    use rmd_automata::unrestricted::PairScheduler;
    let m = mips_r3000();
    let fwd = Automaton::build(&m, Direction::Forward, 2_000_000).expect("mips fwd");
    let rev = Automaton::build(&m, Direction::Reverse, 2_000_000).expect("mips rev");
    let num_ops = m.num_operations() as u32;
    // Arbitrary-order placement script: spread over a 256-cycle window.
    let script: Vec<(OpId, u32)> = (0..512u32)
        .map(|i| (OpId((i * 31) % num_ops), (i * 97) % 200))
        .collect();

    let mut g = c.benchmark_group("unrestricted_insertion_mips");
    g.throughput(Throughput::Elements(script.len() as u64));
    g.bench_function(BenchmarkId::from_parameter("automata-pair"), |b| {
        b.iter(|| {
            let mut s = PairScheduler::new(&m, &fwd, &rev, 256);
            let mut placed = 0u32;
            for &(op, t) in &script {
                if s.check(op, t) {
                    s.insert(op, t);
                    placed += 1;
                }
            }
            black_box(placed)
        });
    });
    g.bench_function(BenchmarkId::from_parameter("reservation-tables"), |b| {
        b.iter(|| {
            let mut q = DiscreteModule::new(&m);
            let mut placed = 0u32;
            for &(op, t) in &script {
                if q.check(op, t) {
                    q.assign(rmd_query::OpInstance(placed), op, t);
                    placed += 1;
                }
            }
            black_box(placed)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_query, bench_unrestricted);
criterion_main!(benches);
