//! Contention-query throughput: the headline "4 to 7 times faster
//! detection of resource contentions" measured as wall-clock per query
//! for the original description vs. the reductions, in both
//! representations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmd_core::{reduce, Objective};
use rmd_machine::models::{cydra5, cydra5_subset, mips_r3000};
use rmd_machine::OpId;
use rmd_query::{
    BitvecModule, ContentionQuery, DiscreteModule, OpInstance, WordLayout,
};
use std::hint::black_box;

/// Pre-populates a module with a fixed, legal partial schedule.
fn populate(q: &mut dyn ContentionQuery, num_ops: usize) {
    let mut inst = 0u32;
    for base in (0..400u32).step_by(8) {
        for op in 0..num_ops as u32 {
            let cycle = base + (op % 8);
            if q.check(OpId(op), cycle) {
                q.assign(OpInstance(inst), OpId(op), cycle);
                inst += 1;
            }
        }
    }
}

fn bench_check(c: &mut Criterion) {
    for machine in [mips_r3000(), cydra5_subset(), cydra5()] {
        let mut g = c.benchmark_group(format!("check/{}", machine.name()));
        g.throughput(Throughput::Elements(1));

        let num_ops = machine.num_operations();
        let queries: Vec<(OpId, u32)> = (0..1024u32)
            .map(|i| (OpId(i % num_ops as u32), (i * 7) % 420))
            .collect();

        let run = |b: &mut criterion::Bencher, q: &mut dyn ContentionQuery| {
            let mut i = 0usize;
            b.iter(|| {
                let (op, cyc) = queries[i % queries.len()];
                i += 1;
                black_box(q.check(black_box(op), black_box(cyc)))
            });
        };

        let mut q = DiscreteModule::new(&machine);
        populate(&mut q, num_ops);
        g.bench_function("original-discrete", |b| run(b, &mut q));

        let red = reduce(&machine, Objective::ResUses);
        let mut q = DiscreteModule::new(&red.reduced);
        populate(&mut q, num_ops);
        g.bench_function("reduced-discrete", |b| run(b, &mut q));

        let n = red.reduced.num_resources().max(1);
        let k = (64 / n as u32).max(1);
        let red_bv = reduce(&machine, Objective::KCycleWord { k });
        let k_fit = k.min((64 / red_bv.reduced.num_resources() as u32).max(1));
        let mut q = BitvecModule::new(&red_bv.reduced, WordLayout::with_k(64, k_fit));
        populate(&mut q, num_ops);
        g.bench_function(format!("reduced-bitvec-k{k_fit}"), |b| run(b, &mut q));

        g.finish();
    }
}

fn bench_assign_free_cycle(c: &mut Criterion) {
    let machine = cydra5_subset();
    let red = reduce(&machine, Objective::KCycleWord { k: 4 });
    let k_fit = (64 / red.reduced.num_resources() as u32).clamp(1, 4);
    let mut g = c.benchmark_group("assign_free_free");
    let op = OpId(0);
    g.bench_with_input(
        BenchmarkId::from_parameter("original-discrete"),
        &machine,
        |b, m| {
            let mut q = DiscreteModule::new(m);
            b.iter(|| {
                q.assign_free(OpInstance(0), op, 0);
                q.free(OpInstance(0), op, 0);
            });
        },
    );
    g.bench_with_input(
        BenchmarkId::from_parameter(format!("reduced-bitvec-k{k_fit}")),
        &red.reduced,
        |b, m| {
            let mut q = BitvecModule::new(m, WordLayout::with_k(64, k_fit));
            b.iter(|| {
                q.assign_free(OpInstance(0), op, 0);
                q.free(OpInstance(0), op, 0);
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_check, bench_assign_free_cycle);
criterion_main!(benches);
