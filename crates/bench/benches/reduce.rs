//! Reduction-pipeline throughput: forbidden matrix, generating set, and
//! full reduction per machine (the paper reduced the Cydra 5 in ~11
//! minutes on a SPARC-20; this pipeline runs in milliseconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmd_core::{generating_set, prune_dominated, reduce, Objective};
use rmd_latency::{ClassPartition, ForbiddenMatrix};
use rmd_machine::models::all_machines;
use std::hint::black_box;

fn bench_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("forbidden_matrix");
    for m in all_machines() {
        g.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, m| {
            b.iter(|| ForbiddenMatrix::compute(black_box(m)));
        });
    }
    g.finish();
}

fn bench_genset(c: &mut Criterion) {
    let mut g = c.benchmark_group("generating_set");
    for m in all_machines() {
        let f = ForbiddenMatrix::compute(&m);
        let classes = ClassPartition::compute(&m, &f);
        let cm = classes.class_machine(&m).unwrap();
        let cf = ForbiddenMatrix::compute(&cm);
        g.bench_with_input(BenchmarkId::from_parameter(m.name()), &cf, |b, cf| {
            b.iter(|| prune_dominated(&generating_set(black_box(cf))));
        });
    }
    g.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_reduction");
    g.sample_size(20);
    for m in all_machines() {
        for (label, obj) in [
            ("res-uses", Objective::ResUses),
            ("4-cycle-word", Objective::KCycleWord { k: 4 }),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, m.name()),
                &(&m, obj),
                |b, (m, obj)| {
                    b.iter(|| reduce(black_box(m), *obj));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_matrix, bench_genset, bench_reduce);
criterion_main!(benches);
