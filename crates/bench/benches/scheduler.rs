//! End-to-end modulo-scheduling throughput over a loop sample: the
//! scheduler's wall-clock with the original description vs. the
//! reductions — the outermost view of the paper's "2.9 times faster
//! contention query module" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmd_core::{reduce, Objective};
use rmd_loops::{suite, Loop, OpSet};
use rmd_machine::models::cydra5_subset;
use rmd_machine::MachineDescription;
use rmd_query::WordLayout;
use rmd_sched::{mii, ImsConfig, IterativeModuloScheduler, Representation};
use std::hint::black_box;

fn schedule_all(
    machine: &MachineDescription,
    _mii_machine: &MachineDescription,
    loops: &[(Loop, u32)],
    repr: Representation,
) -> u64 {
    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    let mut total = 0u64;
    for (l, m) in loops {
        let r = ims
            .schedule_with_mii(&l.graph, machine, repr, *m)
            .expect("schedulable");
        total += u64::from(r.ii);
    }
    total
}

fn bench_scheduler(c: &mut Criterion) {
    let original = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&original);
    let sample: Vec<(Loop, u32)> = suite(&ops, 60, 0xC5)
        .into_iter()
        .map(|l| {
            let m = mii::mii(&l.graph, &original);
            (l, m)
        })
        .collect();

    let red_disc = reduce(&original, Objective::ResUses);
    let kd = (64 / red_disc.reduced.num_resources() as u32).max(1);
    let red_bv = reduce(&original, Objective::KCycleWord { k: kd });
    let k_fit = kd.min((64 / red_bv.reduced.num_resources() as u32).max(1));

    let mut g = c.benchmark_group("modulo_schedule_60_loops");
    g.sample_size(10);
    g.throughput(Throughput::Elements(sample.len() as u64));

    g.bench_function(BenchmarkId::from_parameter("original-discrete"), |b| {
        b.iter(|| {
            black_box(schedule_all(
                &original,
                &original,
                &sample,
                Representation::Discrete,
            ))
        });
    });
    g.bench_function(BenchmarkId::from_parameter("reduced-discrete"), |b| {
        b.iter(|| {
            black_box(schedule_all(
                &red_disc.reduced,
                &original,
                &sample,
                Representation::Discrete,
            ))
        });
    });
    g.bench_function(
        BenchmarkId::from_parameter(format!("reduced-bitvec-k{k_fit}")),
        |b| {
            b.iter(|| {
                black_box(schedule_all(
                    &red_bv.reduced,
                    &original,
                    &sample,
                    Representation::Bitvec(WordLayout::with_k(64, k_fit)),
                ))
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
