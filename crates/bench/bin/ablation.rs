//! Ablation studies for the design choices the paper discusses in
//! passing:
//!
//! 1. **Scheduling-budget sweep** — Table 5 contrasts 6N and 2N budgets;
//!    here the full curve (1N..8N) shows where schedule quality
//!    saturates and what each extra unit of budget costs.
//! 2. **Cycles-per-word sweep** — Table 6 shows three k values; here
//!    every feasible k for the reduced Cydra 5 subset, isolating how
//!    much of the query speedup comes from packing versus from the
//!    reduction itself.

use rmd_bench::{checked_reduce, run_suite, write_record, SuiteStats};
use rmd_core::Objective;
use rmd_loops::{suite, OpSet};
use rmd_machine::models::cydra5_subset;
use rmd_query::WordLayout;
use rmd_sched::Representation;
use serde::Serialize;

#[derive(Serialize)]
struct BudgetRow {
    budget_ratio: f64,
    at_mii: f64,
    decisions_per_op: f64,
    ii_mean: f64,
    budget_exceeded: f64,
}

#[derive(Serialize)]
struct KRow {
    k: u32,
    resources: usize,
    weighted_units: f64,
    check_units: f64,
}

#[derive(Serialize)]
struct Record {
    budget_sweep: Vec<BudgetRow>,
    k_sweep: Vec<KRow>,
}

fn main() {
    let m = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&m);
    let loops = suite(&ops, 300, 0xC5);

    println!("--- scheduling-budget sweep (300 loops, discrete) ---");
    println!(
        "{:>8} {:>10} {:>14} {:>10} {:>14}",
        "budget", "at-MII", "decisions/op", "II mean", "over-budget"
    );
    let mut budget_sweep = Vec::new();
    for budget in [1.0f64, 2.0, 4.0, 6.0, 8.0] {
        let s: SuiteStats = run_suite(&m, &m, &loops, Representation::Discrete, budget);
        println!(
            "{:>7}N {:>9.1}% {:>14.2} {:>10.2} {:>13.1}%",
            budget,
            s.at_mii * 100.0,
            s.decisions_per_op.mean,
            s.ii.mean,
            s.budget_exceeded * 100.0
        );
        budget_sweep.push(BudgetRow {
            budget_ratio: budget,
            at_mii: s.at_mii,
            decisions_per_op: s.decisions_per_op.mean,
            ii_mean: s.ii.mean,
            budget_exceeded: s.budget_exceeded,
        });
    }
    println!(
        "(paper: decisions/op 1.52 @6N vs 1.14 @2N; quality saturates early \
         while decisions keep growing)"
    );

    println!("\n--- cycles-per-word sweep (reduced Cydra 5 subset) ---");
    println!(
        "{:>4} {:>10} {:>16} {:>12}",
        "k", "resources", "weighted units", "check units"
    );
    let mut k_sweep = Vec::new();
    let mut k = 1u32;
    loop {
        let red = checked_reduce(&m, Objective::KCycleWord { k });
        let nres = red.reduced.num_resources();
        if k * nres as u32 > 64 {
            break;
        }
        let s = run_suite(
            &red.reduced,
            &m,
            &loops,
            Representation::Bitvec(WordLayout::with_k(64, k)),
            6.0,
        );
        println!(
            "{:>4} {:>10} {:>16.2} {:>12.2}",
            k, nres, s.counters.weighted_avg, s.counters.check_avg
        );
        k_sweep.push(KRow {
            k,
            resources: nres,
            weighted_units: s.counters.weighted_avg,
            check_units: s.counters.check_avg,
        });
        k += 1;
    }
    println!("(each extra cycle per word shaves check work; paper Table 6's ladder)");

    write_record("ablation", &Record { budget_sweep, k_sweep });
}
