//! Figure 1: reducing the paper's example machine description.
//!
//! Reproduces all four panes: (a) the original reservation tables,
//! (b) the forbidden-latency matrix, (c) the generating set of maximal
//! resources, and (d) the reduced machine description.

use rmd_bench::checked_reduce;
use rmd_core::{generating_set, prune_dominated, Objective};
use rmd_latency::ForbiddenMatrix;
use rmd_machine::{models::example_machine, render};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    original_resources: usize,
    original_usages: Vec<(String, usize)>,
    maximal_resources: usize,
    reduced_resources: usize,
    reduced_usages: Vec<(String, usize)>,
}

fn main() {
    let m = example_machine();

    println!("(a) Machine description (reservation tables)\n");
    print!("{}", render::machine(&m));

    println!("\n(b) Forbidden latency set matrix\n");
    let f = ForbiddenMatrix::compute(&m);
    for (x, xop) in m.ops() {
        for (y, yop) in m.ops() {
            println!("    F[{}][{}] = {}", xop.name(), yop.name(), f.get(x, y));
        }
    }

    println!("\n(c) Generating set of maximal resources\n");
    let pruned = prune_dominated(&generating_set(&f));
    for (i, r) in pruned.iter().enumerate() {
        let pretty: Vec<String> = r
            .usages()
            .iter()
            .map(|u| format!("{}@{}", m.operations()[u.class as usize].name(), u.cycle))
            .collect();
        println!("    resource {i}': {}", pretty.join(" "));
    }

    println!("\n(d) Reduced machine description (res-uses objective)\n");
    let red = checked_reduce(&m, Objective::ResUses);
    print!("{}", render::machine(&red.reduced));

    let usages = |mm: &rmd_machine::MachineDescription| {
        mm.operations()
            .iter()
            .map(|o| (o.name().to_owned(), o.table().num_usages()))
            .collect::<Vec<_>>()
    };
    println!("\nPaper: 5 resources -> 2; usages A: 3 -> 1, B: 8 -> 4 (Figure 1d).");
    println!(
        "Here:  {} resources -> {}; usages {:?} -> {:?}",
        m.num_resources(),
        red.reduced.num_resources(),
        usages(&m),
        usages(&red.reduced),
    );

    rmd_bench::write_record(
        "fig1",
        &Record {
            original_resources: m.num_resources(),
            original_usages: usages(&m),
            maximal_resources: pruned.len(),
            reduced_resources: red.reduced.num_resources(),
            reduced_usages: usages(&red.reduced),
        },
    );
}
