//! Figure 3 (and Figure 2's rule situations): a step-by-step trace of
//! Algorithm 1 building the generating set for the example machine.

use rmd_core::{generating_set_traced, GenSetEvent};
use rmd_latency::ForbiddenMatrix;
use rmd_machine::models::example_machine;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    pairs_processed: usize,
    rule1: usize,
    rule2_created: usize,
    rule2_discarded: usize,
    rule3: usize,
    rule4: usize,
    final_resources: usize,
}

fn main() {
    let m = example_machine();
    let f = ForbiddenMatrix::compute(&m);
    let (set, trace) = generating_set_traced(&f);
    let name = |c: u32| m.operations()[c as usize].name().to_owned();

    let mut rec = Record {
        pairs_processed: 0,
        rule1: 0,
        rule2_created: 0,
        rule2_discarded: 0,
        rule3: 0,
        rule4: 0,
        final_resources: set.len(),
    };

    println!("Building the generating set for `{}`:\n", m.name());
    for e in &trace.events {
        match e {
            GenSetEvent::ProcessPair { x, y, latency } => {
                rec.pairs_processed += 1;
                println!(
                    "process elementary pair for {latency} ∈ F[{}][{}]  ({}@0, {}@{latency})",
                    name(*x),
                    name(*y),
                    name(*x),
                    name(*y)
                );
            }
            GenSetEvent::Rule1 { resource } => {
                rec.rule1 += 1;
                println!("    rule 1: fully compatible -> merged into resource {resource}");
            }
            GenSetEvent::Rule2 { from, new } => {
                rec.rule2_created += 1;
                println!(
                    "    rule 2: partially compatible with resource {from} -> new resource {new}"
                );
            }
            GenSetEvent::Rule2Discarded { from } => {
                rec.rule2_discarded += 1;
                println!("    rule 2: vs resource {from} -> combination discarded");
            }
            GenSetEvent::Rule3 { new } => {
                rec.rule3 += 1;
                println!("    rule 3: not co-resident anywhere -> pair becomes resource {new}");
            }
            GenSetEvent::Rule4 { class, new } => {
                rec.rule4 += 1;
                println!(
                    "rule 4: {} forbids only its 0 self-latency -> single-usage resource {new}",
                    name(*class)
                );
            }
            other => println!("    {other}"),
        }
    }

    println!("\nFinal generating set ({} resources):", set.len());
    for (i, r) in set.iter().enumerate() {
        let pretty: Vec<String> = r
            .usages()
            .iter()
            .map(|u| format!("{}@{}", name(u.class), u.cycle))
            .collect();
        println!("    resource {i}: {}", pretty.join(" "));
    }
    println!(
        "\nPaper (Figure 3): pairs 1∈F[B][A], 1∈F[B][B], 2∈F[B][B], 3∈F[B][B] \
         yield {{[B@0 A@1], [B@0 B@1 B@2 B@3]}}."
    );

    rmd_bench::write_record("fig3", &rec);
}
