//! Figure 4: reservation tables for the Cydra 5 benchmark subset —
//! (a) the original description, (b) the discrete (res-uses) reduction,
//! and (c) the 64-bit-word bitvector reduction.

use rmd_bench::checked_reduce;
use rmd_core::Objective;
use rmd_machine::{models::cydra5_subset, render, MachineDescription};
use serde::Serialize;

#[derive(Serialize)]
struct Pane {
    label: String,
    resources: usize,
    usages: usize,
}

fn pane(label: &str, m: &MachineDescription) -> Pane {
    Pane {
        label: label.to_owned(),
        resources: m.num_resources(),
        usages: m.total_usages(),
    }
}

fn main() {
    let m = cydra5_subset();

    println!(
        "(a) Original machine description ({} resources, {} resource usages)\n",
        m.num_resources(),
        m.total_usages()
    );
    print!("{}", render::overview(&m));

    let discrete = checked_reduce(&m, Objective::ResUses);
    println!(
        "\n(b) Discrete-representation reduction ({} resources, {} resource usages)\n",
        discrete.reduced_classes.num_resources(),
        discrete.reduced_classes.total_usages()
    );
    print!("{}", render::overview(&discrete.reduced_classes));

    let k = (64 / discrete.reduced_classes.num_resources().max(1) as u32).max(1);
    let bitvec = checked_reduce(&m, Objective::KCycleWord { k });
    println!(
        "\n(c) Bitvector-representation reduction, 64-bit word, k={k} \
         ({} resources, {} resource usages)\n",
        bitvec.reduced_classes.num_resources(),
        bitvec.reduced_classes.total_usages()
    );
    print!("{}", render::overview(&bitvec.reduced_classes));

    println!("\nPer-operation reduced tables (pane b):\n");
    print!("{}", render::machine(&discrete.reduced_classes));

    println!(
        "\nPaper (Figure 4): original 39 resources / 132 usages; discrete \
         reduction 9 / 43; 64-bit bitvector reduction 9 / 63 — the bitvector \
         reduction deliberately keeps *more* usages packed into fewer words."
    );

    rmd_bench::write_record(
        "fig4",
        &vec![
            pane("original", &m),
            pane("discrete", &discrete.reduced_classes),
            pane(&format!("bitvec-64bit-k{k}"), &bitvec.reduced_classes),
        ],
    );
}
