//! The paper's headline numbers (§1/§6): reduced descriptions give
//! "4 to 7 times faster detection of resource contentions and require 22
//! to 90% of the memory storage used by the original machine
//! descriptions".
//!
//! Contention-detection speed is measured here the way the paper models
//! it — work units (usages or nonempty words) per query — plus measured
//! wall-clock over a fixed random query mix. Memory storage compares
//! reserved-table bits per schedule cycle.

use rmd_bench::{checked_reduce, write_record};
use rmd_core::{avg_word_usages, Objective};
use rmd_machine::models::{alpha21064, cydra5, cydra5_subset, mips_r3000};
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{BitvecModule, ContentionQuery, DiscreteModule, OpInstance, WordLayout};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct MachineHeadline {
    machine: String,
    work_unit_speedup: f64,
    wallclock_speedup: f64,
    storage_percent: f64,
}

/// A deterministic pseudo-random query mix: interleaved check/assign/free
/// over a sliding window of cycles.
fn drive(q: &mut dyn ContentionQuery, num_ops: usize, iters: u32) -> std::time::Duration {
    let t0 = Instant::now();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut live: Vec<(OpInstance, OpId, u32)> = Vec::new();
    let mut inst = 0u32;
    for i in 0..iters {
        let op = OpId((next() % num_ops as u64) as u32);
        let cycle = (i / 4) + (next() % 8) as u32;
        if q.check(op, cycle) {
            q.assign(OpInstance(inst), op, cycle);
            live.push((OpInstance(inst), op, cycle));
            inst += 1;
        }
        if live.len() > 24 {
            let (li, lop, lc) = live.remove((next() % live.len() as u64) as usize);
            q.free(li, lop, lc);
        }
    }
    t0.elapsed()
}

fn headline(m: &MachineDescription) -> MachineHeadline {
    let red_discrete = checked_reduce(m, Objective::ResUses);
    let n_red = red_discrete.reduced_classes.num_resources().max(1);
    let k = (64 / n_red as u32).max(1);
    let red_bitvec = checked_reduce(m, Objective::KCycleWord { k });
    let k_fit = k.min((64 / red_bitvec.reduced.num_resources() as u32).max(1));

    // Work-unit model: original word usages at k=1 vs reduced at k.
    let f_classes = &red_bitvec.class_machine;
    let original_units = avg_word_usages(f_classes, 1);
    let reduced_units = avg_word_usages(&red_bitvec.reduced_classes, k_fit);
    let work_unit_speedup = original_units / reduced_units;

    // Wall clock: identical query streams against both descriptions.
    let iters = 400_000;
    let mut orig_q = DiscreteModule::new(m);
    let t_orig = drive(&mut orig_q, m.num_operations(), iters);
    let mut red_q = BitvecModule::new(&red_bitvec.reduced, WordLayout::with_k(64, k_fit));
    let t_red = drive(&mut red_q, m.num_operations(), iters);
    let wallclock_speedup = t_orig.as_secs_f64() / t_red.as_secs_f64();

    // Memory: reserved-table bits per schedule cycle.
    let storage_percent = 100.0 * n_red.min(red_bitvec.reduced.num_resources()) as f64
        / m.num_resources() as f64;

    MachineHeadline {
        machine: m.name().to_owned(),
        work_unit_speedup,
        wallclock_speedup,
        storage_percent,
    }
}

fn main() {
    println!(
        "{:20} {:>18} {:>18} {:>12}",
        "machine", "work-unit speedup", "wall-clock speedup", "storage %"
    );
    let mut records = Vec::new();
    for m in [mips_r3000(), alpha21064(), cydra5_subset(), cydra5()] {
        let h = headline(&m);
        println!(
            "{:20} {:>17.1}x {:>17.1}x {:>11.0}%",
            h.machine, h.work_unit_speedup, h.wallclock_speedup, h.storage_percent
        );
        records.push(h);
    }
    println!(
        "\nPaper: 4-7x faster contention detection; reduced descriptions need \
         22-90% of the original storage."
    );
    write_record("headline", &records);
}
