//! Table 1: reduced machine descriptions for the full Cydra 5.
//!
//! Paper reference: 52 operation classes, 10223 forbidden latencies
//! (all < 41); resources 56 → 15; average resource usages/operation
//! 18.2 → 8.3 (res-uses); average word usages/operation 13.2 → 3.3
//! (64-bit words, 4-cycle words).

use rmd_bench::{reduction_report, render_report, write_record};
use rmd_machine::models::cydra5;

fn main() {
    let report = reduction_report(&cydra5(), &[32, 64]);
    print!("{}", render_report(&report));
    println!(
        "\nPaper (Table 1): 56 -> 15 resources (÷3.7); usages/op 18.2 -> 8.3 \
         (÷2.2); word usages 13.2 -> 3.3 (÷4.0 at 64-bit/4-cycle words); \
         reserved-table storage 25% of original."
    );
    let orig = &report.columns[0];
    let res = &report.columns[1];
    let last = report.columns.last().expect("columns");
    println!(
        "Here: {} -> {} resources (÷{:.1}); usages/op {:.1} -> {:.1} (÷{:.1}); \
         word usages {:.1} -> {:.1} (÷{:.1}); storage {:.0}% of original.",
        orig.num_resources,
        res.num_resources,
        orig.num_resources as f64 / res.num_resources as f64,
        orig.avg_usages_per_op,
        res.avg_usages_per_op,
        orig.avg_usages_per_op / res.avg_usages_per_op,
        orig.avg_word_usages,
        last.avg_word_usages,
        orig.avg_word_usages / last.avg_word_usages,
        // Reserved-table storage: one 64-bit word covers k cycles, so
        // words-per-cycle scales as 1/k (paper: 4 cycles of 15 bits vs
        // 1 cycle of 56 bits = 25%).
        100.0 * f64::from((64 / orig.num_resources as u32).max(1))
            / f64::from((64 / last.num_resources as u32).max(1)),
    );
    write_record("table1", &report);
}
