//! Table 2: reduced machine descriptions for the Cydra 5 benchmark
//! subset (the classes actually used by the 1327-loop suite).
//!
//! Paper reference: 12 operation classes, 166 forbidden latencies
//! (all < 21); resources 39 → 9; usages/operation 9.4 → 2.9; word
//! usages 7.5 → 1.5 (64-bit words, 7-cycle words).

use rmd_bench::{reduction_report, render_report, write_record};
use rmd_machine::models::cydra5_subset;

fn main() {
    let report = reduction_report(&cydra5_subset(), &[32, 64]);
    print!("{}", render_report(&report));
    let orig = &report.columns[0];
    let res = &report.columns[1];
    let last = report.columns.last().expect("columns");
    println!(
        "\nPaper (Table 2): 39 -> 9 resources; usages/op 9.4 -> 2.9; word \
         usages 7.5 -> 1.5 (÷5.0)."
    );
    println!(
        "Here: {} -> {} resources; usages/op {:.1} -> {:.1}; word usages \
         {:.1} -> {:.1} (÷{:.1}).",
        orig.num_resources,
        res.num_resources,
        orig.avg_usages_per_op,
        res.avg_usages_per_op,
        orig.avg_word_usages,
        last.avg_word_usages,
        orig.avg_word_usages / last.avg_word_usages,
    );
    write_record("table2", &report);
}
