//! Table 3: reduced machine descriptions for the DEC Alpha 21064, plus
//! the paper's §6 comparison against Bala & Rubin's factored automata.
//!
//! Paper reference: 12 operation classes, 293 forbidden latencies
//! (all < 58); word usage reduced ×5.8 with 64-bit words; the factored
//! forward+reverse automata need ~64 bits of cached state per schedule
//! cycle versus 7 bits of reserved bitvector for the reduction.

use rmd_automata::{cost, minimize, partition_resources, Automaton, Direction, FactoredAutomata};
use rmd_bench::{reduction_report, render_report, write_record};
use rmd_machine::models::alpha21064;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    report: rmd_bench::ReductionReport,
    monolithic_states: Option<usize>,
    factored_forward: Vec<usize>,
    factored_forward_minimized: Vec<usize>,
    factored_reverse: Vec<usize>,
    factored_reverse_minimized: Vec<usize>,
    automata_cache_bits_per_cycle: u32,
    bitvector_bits_per_cycle: u32,
}

fn main() {
    let m = alpha21064();
    let report = reduction_report(&m, &[32, 64]);
    print!("{}", render_report(&report));

    println!("\n--- Automata comparison (paper §6) ---");
    let mono = Automaton::build(&m, Direction::Forward, 500_000);
    let monolithic_states = match &mono {
        Ok(a) => {
            println!("monolithic forward automaton: {} states", a.num_states());
            Some(a.num_states())
        }
        Err(e) => {
            println!("monolithic forward automaton: {e} (needs factoring)");
            None
        }
    };
    let p = partition_resources(&m, 2);
    let fwd = FactoredAutomata::build(&m, Direction::Forward, &p, 500_000).expect("factored fwd");
    let rev = FactoredAutomata::build(&m, Direction::Reverse, &p, 500_000).expect("factored rev");
    let min_counts = |f: &FactoredAutomata| -> Vec<usize> {
        f.factors()
            .iter()
            .map(|a| minimize(a).automaton.num_states())
            .collect()
    };
    let (fwd_min, rev_min) = (min_counts(&fwd), min_counts(&rev));
    println!(
        "factored forward automata: {:?} states ({:?} minimized); reverse: {:?} ({:?} minimized)",
        fwd.state_counts(),
        fwd_min,
        rev.state_counts(),
        rev_min,
    );
    let cache_bits = cost::cache_bits_from_counts(&fwd_min, &rev_min);
    let reduced_bits =
        cost::bitvector_bits_per_cycle(report.columns.last().expect("cols").num_resources);
    println!(
        "unrestricted-scheduler state cache: {cache_bits} bits/cycle (automata) vs \
         {reduced_bits} bits/cycle (reduced bitvector reserved table)"
    );
    println!(
        "\nPaper: Bala & Rubin report factored automata of (237+232) forward and \
         (237+231) reverse states; caching those costs ~64 bits per schedule \
         cycle vs 7 bits for the bitvector reduction."
    );

    write_record(
        "table3",
        &Record {
            report,
            monolithic_states,
            factored_forward: fwd.state_counts(),
            factored_forward_minimized: fwd_min,
            factored_reverse: rev.state_counts(),
            factored_reverse_minimized: rev_min,
            automata_cache_bits_per_cycle: cache_bits,
            bitvector_bits_per_cycle: reduced_bits,
        },
    );
}
