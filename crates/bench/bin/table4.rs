//! Table 4: reduced machine descriptions for the MIPS R3000/R3010.
//!
//! Paper reference: 15 operation classes, 428 forbidden latencies
//! (all < 34); resources 22 → 7; usages/operation 17.3 → ~8; word
//! usages 11.0 → 1.6 (÷6.9 with 64-bit words). Proebsting & Fraser's
//! forward-only automaton for this machine had 6175 states.

use rmd_automata::{minimize, Automaton, Direction};
use rmd_bench::{reduction_report, render_report, write_record};
use rmd_machine::models::mips_r3000;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    report: rmd_bench::ReductionReport,
    forward_states: Option<usize>,
    forward_states_minimized: Option<usize>,
    forward_table_bytes: Option<usize>,
}

fn main() {
    let m = mips_r3000();
    let report = reduction_report(&m, &[32, 64]);
    print!("{}", render_report(&report));

    let orig = &report.columns[0];
    let last = report.columns.last().expect("columns");
    println!(
        "\nPaper (Table 4): 22 -> 7 resources; usages/op 17.3 -> 8.1; word \
         usages 11.0 -> 1.6 (÷6.9). PF automaton: 6175 states."
    );
    println!(
        "Here: {} -> {} resources; word usages {:.1} -> {:.1} (÷{:.1}).",
        orig.num_resources,
        report.columns[1].num_resources,
        orig.avg_word_usages,
        last.avg_word_usages,
        orig.avg_word_usages / last.avg_word_usages,
    );

    println!("\n--- Forward automaton (Proebsting–Fraser baseline) ---");
    let fsa = Automaton::build(&m, Direction::Forward, 2_000_000);
    let (states, min_states, bytes) = match &fsa {
        Ok(a) => {
            let min = minimize(a).automaton;
            println!(
                "forward automaton: {} states raw, {} after minimization \
                 (PF reported 6175 minimal states); minimized tables {} KiB",
                a.num_states(),
                min.num_states(),
                min.table_bytes() / 1024
            );
            (
                Some(a.num_states()),
                Some(min.num_states()),
                Some(min.table_bytes()),
            )
        }
        Err(e) => {
            println!("forward automaton: {e}");
            (None, None, None)
        }
    };

    write_record(
        "table4",
        &Record {
            report,
            forward_states: states,
            forward_states_minimized: min_states,
            forward_table_bytes: bytes,
        },
    );
}
