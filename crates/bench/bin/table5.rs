//! Table 5: characteristics of the 1327-loop benchmark under the
//! Iterative Modulo Scheduler.
//!
//! Paper reference (per row: min / % at min / avg / max):
//!   number of operations   2.00 /  0.4% / 17.54 / 161.00
//!   initiation interval    1.00 / 28.7% / 11.52 / 165.00
//!   II / MII               1.00 / 95.6% /  1.01 /   1.50
//!   sched. decisions / op  1.00 / 78.7% /  1.52 /   6.00   (budget 6N)
//! With a 2N budget the decisions/op average drops to 1.14.

use rmd_bench::{run_suite, write_record, Distribution, SuiteStats};
use rmd_loops::{suite, OpSet};
use rmd_machine::models::cydra5_subset;
use rmd_sched::Representation;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    budget_6n: SuiteStats,
    budget_2n: SuiteStats,
}

fn row(name: &str, d: &Distribution) {
    println!(
        "{name:24} {:>8.2} {:>7.1}% {:>8.2} {:>8.2}",
        d.min,
        d.at_min * 100.0,
        d.mean,
        d.max
    );
}

fn main() {
    let m = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&m);
    let loops = suite(&ops, 1327, 0xC5);

    println!("Scheduling {} loops on `{}` (discrete representation)\n", loops.len(), m.name());
    let s6 = run_suite(&m, &m, &loops, Representation::Discrete, 6.0);

    println!("{:24} {:>8} {:>8} {:>8} {:>8}", "measurement", "min", "at-min", "avg", "max");
    row("number of operations", &s6.ops);
    row("initiation interval", &s6.ii);
    row("II / MII", &s6.ii_ratio);
    row("sched. decisions / op", &s6.decisions_per_op);
    println!(
        "\nloops at II = MII: {:.1}%   loops with no reversal: {:.1}%   \
         attempts over budget: {:.1}%",
        s6.at_mii * 100.0,
        s6.no_reversal * 100.0,
        s6.budget_exceeded * 100.0
    );
    println!(
        "reversals due to resource contention: {:.1}% (rest: dependence)",
        s6.resource_reversal_share * 100.0
    );

    println!("\n--- budget 2N (paper: decisions/op drops to 1.14) ---");
    let s2 = run_suite(&m, &m, &loops, Representation::Discrete, 2.0);
    row("sched. decisions / op", &s2.decisions_per_op);
    println!(
        "attempts over budget: {:.1}%  (paper: 11.3%)",
        s2.budget_exceeded * 100.0
    );

    println!(
        "\nPaper (Table 5): 95.6% of loops at MII; decisions/op avg 1.52 @6N, \
         1.14 @2N; 78.7% with no reversed decision; resource conflicts cause \
         14.6% of reversals."
    );

    write_record(
        "table5",
        &Record {
            budget_6n: s6,
            budget_2n: s2,
        },
    );
}
