//! Table 6: work units per call of the contention-query functions over
//! the 1327-loop benchmark, for the original description and four
//! reductions (discrete res-uses and 1/2/4-cycle-word bitvectors).
//!
//! Paper reference (weighted average work units per call):
//!   original 3.46 -> discrete 2.11 -> bitvec 1-cycle 1.91 ->
//!   2-cycle 1.35 -> 4-cycle 1.21, a 2.9x faster query module overall.

use rmd_bench::{checked_reduce, run_suite, table6_representations, write_record, SuiteStats};
use rmd_core::Objective;
use rmd_loops::{suite, OpSet};
use rmd_machine::models::cydra5_subset;
use rmd_sched::Representation;
use serde::Serialize;

#[derive(Serialize)]
struct Column {
    label: String,
    check_avg: f64,
    assign_free_avg: f64,
    free_avg: f64,
    weighted_avg: f64,
    check_calls: u64,
    assign_free_calls: u64,
    free_calls: u64,
    transitions: u64,
}

fn column(label: &str, s: &SuiteStats) -> Column {
    Column {
        label: label.to_owned(),
        check_avg: s.counters.check_avg,
        assign_free_avg: s.counters.assign_free_avg,
        free_avg: s.counters.free_avg,
        weighted_avg: s.counters.weighted_avg,
        check_calls: s.counters.check_calls,
        assign_free_calls: s.counters.assign_free_calls,
        free_calls: s.counters.free_calls,
        transitions: s.counters.transitions,
    }
}

fn main() {
    let original = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&original);
    let loops = suite(&ops, 1327, 0xC5);

    let mut columns = Vec::new();

    // Column 1: the original (unreduced) description, discrete module.
    println!("running: original description (discrete) ...");
    let s = run_suite(&original, &original, &loops, Representation::Discrete, 6.0);
    columns.push(column("original discrete", &s));

    // Reduced columns: the query machine is the reduction, the MII comes
    // from the original so the search trajectory matches.
    let res_uses = checked_reduce(&original, Objective::ResUses);
    let reprs = table6_representations(res_uses.reduced_classes.num_resources());
    for (label, objective, repr) in reprs {
        println!("running: {label} ...");
        let red = checked_reduce(&original, objective);
        // A k-cycle-word reduction may select more resources than fit k
        // per 64-bit word; clamp the module's packing to what fits.
        let repr = match repr {
            Representation::Bitvec(layout) => {
                let fit = (64 / red.reduced.num_resources() as u32).max(1);
                Representation::Bitvec(rmd_query::WordLayout::with_k(64, layout.k.min(fit)))
            }
            other => other,
        };
        let s = run_suite(&red.reduced, &original, &loops, repr, 6.0);
        columns.push(column(&label, &s));
    }

    println!(
        "\n{:24} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "representation", "check", "assign&free", "free", "weighted", "transitions"
    );
    for c in &columns {
        println!(
            "{:24} {:>10.2} {:>12.2} {:>10.2} {:>12.2} {:>12}",
            c.label, c.check_avg, c.assign_free_avg, c.free_avg, c.weighted_avg, c.transitions
        );
    }
    let total: u64 = columns[0].check_calls + columns[0].assign_free_calls + columns[0].free_calls;
    println!(
        "\ncall frequencies: check {:.1}%  assign&free {:.1}%  free {:.1}%  \
         (paper: 75.6% / 16.0% / 8.4%)",
        100.0 * columns[0].check_calls as f64 / total as f64,
        100.0 * columns[0].assign_free_calls as f64 / total as f64,
        100.0 * columns[0].free_calls as f64 / total as f64,
    );
    let speedup = columns[0].weighted_avg / columns.last().expect("cols").weighted_avg;
    println!(
        "query-module speedup (weighted units, original -> best reduction): {speedup:.1}x \
         (paper: 3.46 -> 1.21, 2.9x)"
    );

    write_record("table6", &columns);
}
