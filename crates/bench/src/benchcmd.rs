//! The engine behind the `rmd bench` CLI subcommand.
//!
//! Runs reduction, query, and (where the machine supports the loop
//! suite) scheduler workloads against one machine and emits a
//! machine-readable `BENCH_<name>.json` record — the perf trajectory
//! every later optimization PR is judged against.
//!
//! Record schema (`"schema": "rmd-bench/6"`): see the field docs on
//! [`BenchRecord`] and the schema note in the repository README.
//! Schema 2 added the `phases` section — per-phase wall-clock of one
//! traced reduction run (see [`crate::profile::PhaseTiming`]). Schema 3
//! added the `query_window` section — batched window queries vs the
//! scalar per-cycle scan (see [`QueryWindowBench`]) — and the
//! `check_window` fields of [`crate::CounterSummary`]. Schema 4 added
//! the `serve` section — the `rmd serve` daemon load-driver workload
//! (see [`ServeBench`]); the CLI fills it in, so records written by
//! other drivers carry `"serve": null`. Schema 5 added the `stress`
//! section — a seeded 100k-loop scheduling stress run sized for the
//! parallel scheduler (see [`StressBench`]); like `scheduler`, it is
//! `null` for machines outside the suite vocabulary. Schema 6 adds the
//! top-level `host_parallelism` field (cores actually available to the
//! run — the honest denominator for any speedup) and the
//! `speedup_by_threads` sweeps on `scheduler` and `stress` (see
//! [`ThreadSpeedup`]): parallel wall-clock and schedule identity at
//! several thread counts, with the legacy flat `parallel_wall_ms` /
//! `speedup` / `schedules_identical` fields now aliases for the sweep
//! entry at the record's `threads`.
//! Timings are wall-clock milliseconds measured on whatever host ran
//! the bench; the derived throughput numbers (`queries_per_sec`,
//! `speedup`) are for trend-watching, not cross-host comparison.

use crate::{
    aggregate, reduction_report, run_suite_runs, run_suite_runs_parallel, SuiteStats,
    BACKEND_NAMES,
};
use rmd_loops::Loop;
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{
    BitvecModule, CompiledModule, ContentionQuery, DiscreteModule, ModuloBitvecModule,
    ModuloDiscreteModule, OpInstance, WordLayout, WorkCounters,
};
use rmd_sched::Representation;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema tag stamped into every record; bump on breaking layout
/// changes.
pub const SCHEMA: &str = "rmd-bench/6";

/// Loop count of the full suite (the paper's §8 corpus).
pub const FULL_LOOPS: usize = 1327;

/// Loop count under `--quick` (CI smoke).
pub const QUICK_LOOPS: usize = 64;

/// Suite generator seed, matching the `table5`/`table6` binaries so
/// bench trajectories are comparable with the paper-table runs.
pub const SUITE_SEED: u64 = 0xC5;

/// Loop count of the full stress run (schema rmd-bench/5).
pub const STRESS_FULL_LOOPS: usize = 100_000;

/// Stress loop count under `--quick` (CI smoke).
pub const STRESS_QUICK_LOOPS: usize = 2_000;

/// Stress-suite generator seed.
pub const STRESS_SEED: u64 = 0x57_7E55; // "stress"

/// Options of one `rmd bench` invocation.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Shrink every workload for CI smoke runs.
    pub quick: bool,
    /// Worker threads for the parallel suite run.
    pub threads: usize,
    /// Directory the `BENCH_*.json` records are written to.
    pub out_dir: PathBuf,
    /// Query backend the `query_window` workload runs against (a
    /// [`BACKEND_NAMES`] entry; `None` means `"bitvec"`). The CLI
    /// validates user input before it reaches here.
    pub backend: Option<&'static str>,
}

/// A sensible default worker-thread count: the host's available
/// parallelism, but at least 4 so the parallel-vs-serial comparison is
/// meaningful even when the runtime underreports cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4)
}

/// One `BENCH_<name>.json` record.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRecord {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Machine name.
    pub machine: String,
    /// Whether the workloads were shrunk by `--quick`.
    pub quick: bool,
    /// Worker threads used by the parallel suite run.
    pub threads: usize,
    /// Logical CPUs available to the benching process (schema
    /// rmd-bench/6 addition). The honest denominator for every speedup
    /// in the record: a `speedup` near 1.0 at `threads = 8` means
    /// nothing was lost to parallel overhead when this is 1, and means
    /// the runner failed to scale when this is 8.
    pub host_parallelism: usize,
    /// Record creation time, seconds since the Unix epoch.
    pub unix_time_secs: u64,
    /// Reduction-sweep workload.
    pub reduction: ReductionBench,
    /// Per-phase wall-clock of one traced `reduce_with_fallback` run
    /// (schema rmd-bench/2 addition; canonical phase order).
    pub phases: Vec<crate::profile::PhaseTiming>,
    /// Contention-query workload.
    pub query: QueryBench,
    /// Batched window queries vs the scalar per-cycle scan (schema
    /// rmd-bench/3 addition).
    pub query_window: QueryWindowBench,
    /// Loop-suite scheduling workload; `null` for machines outside the
    /// Cydra benchmark-subset vocabulary.
    pub scheduler: Option<SchedulerBench>,
    /// `rmd serve` daemon load-driver workload (schema rmd-bench/4
    /// addition). Plain data: the driver lives in `rmd-serve` and the
    /// CLI glues its report in here, so this crate stays free of a
    /// daemon dependency. `null` when the driver did not run.
    pub serve: Option<ServeBench>,
    /// Seeded 100k-loop scheduling stress run (schema rmd-bench/5
    /// addition); `null` for machines outside the suite vocabulary.
    pub stress: Option<StressBench>,
}

/// One entry of a `speedup_by_threads` sweep (schema rmd-bench/6):
/// the parallel suite run repeated at one thread count against the
/// same serial baseline. Entries are sorted by ascending `threads`, so
/// compare metric paths like `scheduler.speedup_by_threads.0.speedup`
/// stay stable across regenerated records.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ThreadSpeedup {
    /// Requested worker threads (the runner additionally caps OS
    /// workers at [`BenchRecord::host_parallelism`]).
    pub threads: usize,
    /// Parallel wall-clock milliseconds at this thread count.
    pub parallel_wall_ms: f64,
    /// Serial wall-clock over this entry's parallel wall-clock.
    pub speedup: f64,
    /// Whether this run reproduced the serial per-loop results
    /// bit-for-bit.
    pub schedules_identical: bool,
}

/// The seeded many-loop scheduling stress run (schema rmd-bench/5):
/// [`STRESS_FULL_LOOPS`] small loop bodies, serial vs parallel wall
/// clock, and the bit-identity of the two runs' schedules. Where the
/// paper-shape [`SchedulerBench`] measures per-loop scheduling quality,
/// this section measures sustained throughput at a loop count two
/// orders of magnitude larger — the regime where worker startup and
/// work-stealing overheads amortize and the parallel runner must win.
#[derive(Clone, Debug, Serialize)]
pub struct StressBench {
    /// Generator seed ([`STRESS_SEED`]).
    pub seed: u64,
    /// Loops scheduled.
    pub loops: usize,
    /// Total operations placed.
    pub ops_scheduled: u64,
    /// Serial wall-clock milliseconds.
    pub serial_wall_ms: f64,
    /// Parallel wall-clock milliseconds at [`BenchRecord::threads`].
    pub parallel_wall_ms: f64,
    /// `serial_wall_ms / parallel_wall_ms`.
    pub speedup: f64,
    /// Whether the parallel run reproduced the serial per-loop results
    /// bit-for-bit.
    pub schedules_identical: bool,
    /// Serial-run throughput, loops per second.
    pub loops_per_sec: f64,
    /// Thread-count sweep (schema rmd-bench/6): the flat fields above
    /// are the entry at [`BenchRecord::threads`].
    pub speedup_by_threads: Vec<ThreadSpeedup>,
}

/// Throughput and tail latency of an in-process `rmd serve` load run
/// (schema rmd-bench/4). Filled in by the CLI from the `rmd-serve`
/// load driver.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ServeBench {
    /// Requests answered in the timed phase.
    pub requests: u64,
    /// Successful replies.
    pub ok: u64,
    /// Typed error replies.
    pub errors: u64,
    /// Requests shed by the bounded admission queue in the burst phase.
    pub shed: u64,
    /// Timed-phase throughput, requests per second.
    pub req_per_s: f64,
    /// Median handler latency, nanoseconds (rmd-obs histogram).
    pub p50_ns: u64,
    /// 99th-percentile handler latency, nanoseconds.
    pub p99_ns: u64,
}

/// Timing of repeated full reduction sweeps (Tables 1–4 shape).
#[derive(Clone, Debug, Serialize)]
pub struct ReductionBench {
    /// Sweep repetitions timed.
    pub rounds: u32,
    /// Verified reductions performed across all rounds.
    pub reductions: u64,
    /// Total wall-clock milliseconds.
    pub wall_ms: f64,
    /// Verified reductions per second.
    pub reductions_per_sec: f64,
}

/// Timing of a deterministic check/assign/free workload on the linear
/// bitvector module.
#[derive(Clone, Debug, Serialize)]
pub struct QueryBench {
    /// Workload rounds.
    pub rounds: u32,
    /// Query-module calls issued (check + assign + free).
    pub queries: u64,
    /// Work units handled (paper §8 accounting).
    pub work_units: u64,
    /// Total wall-clock milliseconds.
    pub wall_ms: f64,
    /// Query calls per second.
    pub queries_per_sec: f64,
}

/// Head-to-head timing of the batched window queries against the
/// per-cycle scan they replace, both through `&mut dyn ContentionQuery`
/// (the scheduler's access path). The scalar pass assembles each
/// 64-cycle availability bitmask from individual `check` calls; the
/// window pass asks `check_window` once per window on the same module
/// state, so `masks_identical` pins semantic equivalence while the
/// load counters pin the mechanical saving.
#[derive(Clone, Debug, Serialize)]
pub struct QueryWindowBench {
    /// Backend the workload ran against (a [`BACKEND_NAMES`] entry).
    pub backend: String,
    /// Workload rounds (each scans the whole cycle span once).
    pub rounds: u32,
    /// Window queries issued per pass.
    pub windows: u64,
    /// Wall-clock milliseconds of the scalar per-cycle pass.
    pub scalar_wall_ms: f64,
    /// Wall-clock milliseconds of the batched window pass.
    pub window_wall_ms: f64,
    /// `scalar_wall_ms / window_wall_ms`.
    pub speedup: f64,
    /// Backend word loads of the scalar pass (its `check` units).
    pub scalar_mask_loads: u64,
    /// Backend word loads of the window pass (its `check_window`
    /// units — strictly fewer on word-packed backends).
    pub window_mask_loads: u64,
    /// Whether both passes produced bit-identical availability masks.
    pub masks_identical: bool,
}

/// One bucket of the achieved-II histogram.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IiBucket {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Loops scheduled at it.
    pub loops: u64,
}

/// Timing of the loop-suite scheduling run, serial vs parallel.
#[derive(Clone, Debug, Serialize)]
pub struct SchedulerBench {
    /// Loops scheduled.
    pub loops: usize,
    /// Total operations placed (sum of loop body sizes).
    pub ops_scheduled: u64,
    /// Serial wall-clock milliseconds.
    pub serial_wall_ms: f64,
    /// Parallel wall-clock milliseconds at [`BenchRecord::threads`].
    pub parallel_wall_ms: f64,
    /// `serial_wall_ms / parallel_wall_ms` (< 1 means parallel lost —
    /// expected on single-core hosts, recorded faithfully either way).
    pub speedup: f64,
    /// Whether the parallel run reproduced the serial per-loop results
    /// bit-for-bit (times, IIs, statistics, and work counters).
    pub schedules_identical: bool,
    /// Query-module calls per second of the serial run.
    pub queries_per_sec: f64,
    /// Achieved-II histogram over the suite.
    pub ii_histogram: Vec<IiBucket>,
    /// The paper's Table 5/6 statistics for the run.
    pub stats: SuiteStats,
    /// Thread-count sweep (schema rmd-bench/6): the flat
    /// `parallel_wall_ms` / `speedup` / `schedules_identical` fields
    /// above are the entry at [`BenchRecord::threads`].
    pub speedup_by_threads: Vec<ThreadSpeedup>,
}

/// Whether `m` carries the Cydra benchmark-subset vocabulary the loop
/// suite is generated from.
pub fn suite_supported(m: &MachineDescription) -> bool {
    [
        "load.w.0", "load.w.1", "store.w.0", "store.w.1", "aadd.0", "aadd.1", "fadd", "fmul",
        "fmul.d", "iadd", "recip", "brtop",
    ]
    .iter()
    .all(|n| m.op_by_name(n).is_some())
}

fn reduction_bench(m: &MachineDescription, rounds: u32) -> ReductionBench {
    let mut reductions = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        let report = reduction_report(m, &[32, 64]);
        // Every column past "original" is one verified reduction.
        reductions += report.columns.len().saturating_sub(1) as u64;
    }
    let wall = start.elapsed().as_secs_f64();
    ReductionBench {
        rounds,
        reductions,
        wall_ms: wall * 1e3,
        reductions_per_sec: reductions as f64 / wall.max(1e-9),
    }
}

fn query_bench(m: &MachineDescription, rounds: u32) -> QueryBench {
    let layout = WordLayout::widest(64, m.num_resources());
    let mut q = BitvecModule::new(m, layout);
    let nops = m.num_operations() as u32;
    let mut totals = WorkCounters::new();
    let start = Instant::now();
    for round in 0..rounds {
        // Greedy fill over a cycle window, then tear down in reverse —
        // exercises check, assign, and free on live state.
        let mut placed: Vec<(u32, OpId, u32)> = Vec::new();
        let mut inst = 0u32;
        for cycle in 0..512u32 {
            let op = OpId((cycle + round) % nops.max(1));
            if q.check(op, cycle) {
                q.assign(OpInstance(inst), op, cycle);
                placed.push((inst, op, cycle));
                inst += 1;
            }
        }
        for &(i, op, c) in placed.iter().rev() {
            q.free(OpInstance(i), op, c);
        }
        totals.merge(q.counters());
        q.reset();
    }
    let wall = start.elapsed().as_secs_f64();
    let queries = totals.total_calls();
    QueryBench {
        rounds,
        queries,
        work_units: totals.total_units(),
        wall_ms: wall * 1e3,
        queries_per_sec: queries as f64 / wall.max(1e-9),
    }
}

/// Builds the named query backend over `m`. The modulo backends use an
/// II of the longest reservation table so every operation fits.
fn backend_module(m: &MachineDescription, name: &str) -> Box<dyn ContentionQuery> {
    let layout = WordLayout::widest(64, m.num_resources());
    let ii = m.max_table_length().max(1);
    match name {
        "discrete" => Box::new(DiscreteModule::new(m)),
        "bitvec" => Box::new(BitvecModule::new(m, layout)),
        "compiled" => Box::new(CompiledModule::new(m, layout)),
        "modulo_discrete" => Box::new(ModuloDiscreteModule::new(m, ii)),
        "modulo_bitvec" => Box::new(ModuloBitvecModule::new(m, ii, layout)),
        other => panic!("unknown backend `{other}` (the CLI validates names)"),
    }
}

fn query_window_bench(m: &MachineDescription, rounds: u32, backend: &str) -> QueryWindowBench {
    let span = 512u32;
    let nops = m.num_operations().max(1) as u32;
    let mut module = backend_module(m, backend);
    let q: &mut dyn ContentionQuery = module.as_mut();

    // Greedy fill so each window sees a mix of free and busy cycles.
    let mut inst = 0u32;
    for cycle in 0..span {
        let op = OpId(cycle % nops);
        if q.check(op, cycle) {
            q.assign(OpInstance(inst), op, cycle);
            inst += 1;
        }
    }

    let windows_per_round = span / 64;
    let mut scalar_masks = Vec::new();
    let scalar_loads_before = q.counters().check.units;
    let t0 = Instant::now();
    for round in 0..rounds {
        for w in 0..windows_per_round {
            let op = OpId((w + round) % nops);
            let start = w * 64;
            let mut mask = 0u64;
            for i in 0..64u32 {
                if q.check(op, start + i) {
                    mask |= 1u64 << i;
                }
            }
            if round == 0 {
                scalar_masks.push(mask);
            }
        }
    }
    let scalar_wall = t0.elapsed().as_secs_f64();
    let scalar_mask_loads = q.counters().check.units - scalar_loads_before;

    let mut window_masks = Vec::new();
    let window_loads_before = q.counters().check_window.units;
    let t1 = Instant::now();
    for round in 0..rounds {
        for w in 0..windows_per_round {
            let op = OpId((w + round) % nops);
            let mask = q.check_window(op, w * 64, 64);
            if round == 0 {
                window_masks.push(mask);
            }
        }
    }
    let window_wall = t1.elapsed().as_secs_f64();
    let window_mask_loads = q.counters().check_window.units - window_loads_before;

    QueryWindowBench {
        backend: backend.to_owned(),
        rounds,
        windows: u64::from(rounds) * u64::from(windows_per_round),
        scalar_wall_ms: scalar_wall * 1e3,
        window_wall_ms: window_wall * 1e3,
        speedup: scalar_wall / window_wall.max(1e-9),
        scalar_mask_loads,
        window_mask_loads,
        masks_identical: scalar_masks == window_masks,
    }
}

/// The thread counts a section sweeps: `base` (the schema-6 canonical
/// points) plus the record's own `threads`, ascending and deduplicated.
fn sweep_threads(base: &[usize], opts_threads: usize) -> Vec<usize> {
    let mut v = base.to_vec();
    v.push(opts_threads);
    v.sort_unstable();
    v.dedup();
    v
}

/// Runs the parallel suite once per swept thread count against a
/// serial baseline measured by the caller.
fn sweep_speedups(
    m: &MachineDescription,
    loops: &[Loop],
    repr: Representation,
    budget_ratio: f64,
    serial: &[crate::LoopRun],
    serial_wall: f64,
    threads: &[usize],
) -> Vec<ThreadSpeedup> {
    threads
        .iter()
        .map(|&t| {
            let t0 = Instant::now();
            let parallel = run_suite_runs_parallel(m, m, loops, repr, budget_ratio, t);
            let wall = t0.elapsed().as_secs_f64();
            ThreadSpeedup {
                threads: t,
                parallel_wall_ms: wall * 1e3,
                speedup: serial_wall / wall.max(1e-9),
                schedules_identical: serial == parallel,
            }
        })
        .collect()
}

fn scheduler_bench(m: &MachineDescription, opts: &BenchOptions) -> SchedulerBench {
    let ops = rmd_loops::OpSet::for_cydra_subset(m);
    let count = if opts.quick { QUICK_LOOPS } else { FULL_LOOPS };
    let loops = rmd_loops::suite(&ops, count, SUITE_SEED);
    let repr = Representation::Bitvec(WordLayout::widest(64, m.num_resources()));
    let budget_ratio = 6.0;

    let t0 = Instant::now();
    let serial = run_suite_runs(m, m, &loops, repr, budget_ratio);
    let serial_wall = t0.elapsed().as_secs_f64();

    let base: &[usize] = if opts.quick { &[2] } else { &[2, 8] };
    let sweep = sweep_threads(base, opts.threads);
    let speedup_by_threads =
        sweep_speedups(m, &loops, repr, budget_ratio, &serial, serial_wall, &sweep);
    let at_threads = speedup_by_threads
        .iter()
        .find(|s| s.threads == opts.threads)
        .copied()
        .expect("sweep includes the record's own thread count");

    let stats = aggregate(&serial, budget_ratio);
    let ops_scheduled: u64 = serial.iter().map(|r| r.ops as u64).sum();
    let queries: u64 = serial.iter().map(|r| r.counters.total_calls()).sum();
    let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
    for r in &serial {
        *hist.entry(r.ii).or_insert(0) += 1;
    }

    SchedulerBench {
        loops: loops.len(),
        ops_scheduled,
        serial_wall_ms: serial_wall * 1e3,
        parallel_wall_ms: at_threads.parallel_wall_ms,
        speedup: at_threads.speedup,
        schedules_identical: at_threads.schedules_identical,
        queries_per_sec: queries as f64 / serial_wall.max(1e-9),
        ii_histogram: hist
            .into_iter()
            .map(|(ii, loops)| IiBucket { ii, loops })
            .collect(),
        stats,
        speedup_by_threads,
    }
}

/// Generates the scheduling stress suite: `count` seeded loop bodies
/// drawn small on purpose (geometric sizes, mean ≈ 7 operations, tail
/// capped at 40) so a 100k-loop run finishes in seconds while still
/// placing the better part of a million operations. Small bodies are
/// also the adversarial case for the parallel runner — per-loop work
/// barely exceeds the cost of handing the loop to a worker — which is
/// exactly what the serial-vs-parallel comparison should stress.
/// Deterministic in `(count, seed)`.
pub fn stress_suite(ops: &rmd_loops::OpSet, count: usize, seed: u64) -> Vec<Loop> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            // Geometric-ish size draw: P(grow) = 5/6 per step from 2,
            // capped at 40 — mean ≈ 7 operations.
            let mut size = 2usize;
            while size < 40 && rng.gen_range(0..6) != 0 {
                size += 1;
            }
            let graph = rmd_loops::random::random_loop(
                ops,
                &mut rng,
                rmd_loops::random::RandomLoopParams {
                    size,
                    ..Default::default()
                },
            );
            Loop {
                name: format!("stress#{i}"),
                graph,
            }
        })
        .collect()
}

fn stress_bench(m: &MachineDescription, opts: &BenchOptions) -> StressBench {
    let ops = rmd_loops::OpSet::for_cydra_subset(m);
    let count = if opts.quick {
        STRESS_QUICK_LOOPS
    } else {
        STRESS_FULL_LOOPS
    };
    let loops = stress_suite(&ops, count, STRESS_SEED);
    let repr = Representation::Bitvec(WordLayout::widest(64, m.num_resources()));
    let budget_ratio = 6.0;

    let t0 = Instant::now();
    let serial = run_suite_runs(m, m, &loops, repr, budget_ratio);
    let serial_wall = t0.elapsed().as_secs_f64();

    let base: &[usize] = if opts.quick { &[2] } else { &[1, 2, 4, 8] };
    let sweep = sweep_threads(base, opts.threads);
    let speedup_by_threads =
        sweep_speedups(m, &loops, repr, budget_ratio, &serial, serial_wall, &sweep);
    let at_threads = speedup_by_threads
        .iter()
        .find(|s| s.threads == opts.threads)
        .copied()
        .expect("sweep includes the record's own thread count");

    StressBench {
        seed: STRESS_SEED,
        loops: loops.len(),
        ops_scheduled: serial.iter().map(|r| r.ops as u64).sum(),
        serial_wall_ms: serial_wall * 1e3,
        parallel_wall_ms: at_threads.parallel_wall_ms,
        speedup: at_threads.speedup,
        schedules_identical: at_threads.schedules_identical,
        loops_per_sec: loops.len() as f64 / serial_wall.max(1e-9),
        speedup_by_threads,
    }
}

/// One traced `reduce_with_fallback` run, folded into per-phase
/// wall-clock aggregates (the schema-2 `phases` section). Runs before
/// the timed workloads so the brief tracing window cannot skew them.
fn phases_bench(m: &MachineDescription) -> Vec<crate::profile::PhaseTiming> {
    rmd_obs::set_enabled(true);
    let _ = rmd_obs::drain_events();
    let _ = rmd_core::reduce_with_fallback(
        m,
        rmd_core::Objective::ResUses,
        &rmd_core::ReduceOptions::default(),
    );
    let events = rmd_obs::drain_events();
    rmd_obs::set_enabled(false);
    crate::profile::aggregate_phases(&events)
}

/// Runs all applicable workloads against `machine`.
pub fn bench_machine(machine: &MachineDescription, opts: &BenchOptions) -> BenchRecord {
    let (red_rounds, query_rounds) = if opts.quick { (1, 8) } else { (3, 64) };
    // Window rounds are higher: each round is only a handful of window
    // queries, and the speedup ratio needs enough samples to be stable.
    let window_rounds = if opts.quick { 64 } else { 512 };
    BenchRecord {
        schema: SCHEMA.to_owned(),
        machine: machine.name().to_owned(),
        quick: opts.quick,
        threads: opts.threads,
        host_parallelism: crate::parallel::host_parallelism(),
        unix_time_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        reduction: reduction_bench(machine, red_rounds),
        phases: phases_bench(machine),
        query: query_bench(machine, query_rounds),
        query_window: query_window_bench(
            machine,
            window_rounds,
            opts.backend.unwrap_or(BACKEND_NAMES[1]),
        ),
        scheduler: suite_supported(machine).then(|| scheduler_bench(machine, opts)),
        serve: None,
        stress: suite_supported(machine).then(|| stress_bench(machine, opts)),
    }
}

/// Canonical file-name form of a machine name: every character outside
/// `[A-Za-z0-9_]` becomes `_`. Deterministic and idempotent, so
/// spelling variants like `cydra5-subset` and `cydra5_subset` land on
/// the same `BENCH_cydra5_subset.json` and a trajectory can never fork
/// into near-duplicate record files.
pub fn sanitize_machine_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Writes `record` as `BENCH_<machine>.json` under `out_dir` (machine
/// name passed through [`sanitize_machine_name`]) and returns the path.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be created
/// or the file cannot be written.
pub fn write_bench_record(record: &BenchRecord, out_dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("BENCH_{}.json", sanitize_machine_name(&record.machine)));
    let json = serde_json::to_string_pretty(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Checks that `s` is one well-formed JSON value (full syntax: objects,
/// arrays, strings with escapes, numbers, literals). Predates the
/// `serde_json` shim's parser and is kept as an independent
/// well-formedness oracle: it accepts exactly the JSON grammar without
/// building a value tree, so record-emission tests cross-check against
/// it rather than trusting one parser to validate its own sibling.
pub fn json_is_well_formed(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if !parse_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        skip_ws(b, pos);
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return false;
                            }
                            *pos += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1F => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > start
    };
    if !digits(b, pos) {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::{cydra5_subset, example_machine};

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            "\"a\\nb\\u00e9\"",
            "{\"a\": [1, 2.5, true, null], \"b\": {\"c\": \"d\"}}",
        ] {
            assert!(json_is_well_formed(good), "{good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} {}",
            "01e",
            "\"bad\\q\"",
        ] {
            assert!(!json_is_well_formed(bad), "{bad}");
        }
    }

    #[test]
    fn bench_filenames_are_sanitized_deterministically() {
        // Spelling variants collapse onto one canonical record file...
        assert_eq!(sanitize_machine_name("cydra5-subset"), "cydra5_subset");
        assert_eq!(sanitize_machine_name("cydra5_subset"), "cydra5_subset");
        assert_eq!(sanitize_machine_name("a b/c.mdl"), "a_b_c_mdl");
        // ...and the map is idempotent, so re-sanitizing never drifts.
        for name in ["cydra5-subset", "fig1", "zoo wide-issue", "x&y"] {
            let once = sanitize_machine_name(name);
            assert_eq!(sanitize_machine_name(&once), once, "{name}");
        }
    }

    #[test]
    fn suite_support_matches_vocabulary() {
        assert!(suite_supported(&cydra5_subset()));
        assert!(!suite_supported(&example_machine()));
    }

    #[test]
    fn bench_record_for_non_suite_machine() {
        let opts = BenchOptions {
            quick: true,
            threads: 2,
            out_dir: PathBuf::from("."),
            backend: None,
        };
        let rec = bench_machine(&example_machine(), &opts);
        assert_eq!(rec.schema, SCHEMA);
        assert!(rec.scheduler.is_none());
        assert_eq!(rec.phases.len(), rmd_core::REDUCTION_PHASES.len());
        assert!(rec.phases.iter().all(|t| t.spans >= 1), "{:?}", rec.phases);
        assert!(rec.query.queries > 0);
        assert!(rec.query.queries_per_sec > 0.0);
        assert!(rec.reduction.reductions > 0);
        assert_eq!(rec.query_window.backend, "bitvec");
        assert!(rec.query_window.windows > 0);
        assert!(rec.query_window.speedup.is_finite());
        assert!(rec.query_window.masks_identical);
        // fig1's widest layout packs 12 cycles per word: the batched
        // scan must answer from strictly fewer loads than the scalar
        // one-load-per-probed-mask-entry pass.
        assert!(
            rec.query_window.window_mask_loads > 0
                && rec.query_window.window_mask_loads < rec.query_window.scalar_mask_loads,
            "{:?}",
            rec.query_window
        );
        let json = serde_json::to_string_pretty(&rec).unwrap();
        assert!(json_is_well_formed(&json), "{json}");
    }

    #[test]
    fn query_window_masks_agree_on_every_backend() {
        let m = cydra5_subset();
        for name in crate::BACKEND_NAMES {
            let qw = query_window_bench(&m, 2, name);
            assert!(qw.masks_identical, "{name}: {qw:?}");
            assert!(qw.windows > 0, "{name}");
        }
    }

    #[test]
    fn bench_record_round_trips_to_disk() {
        let opts = BenchOptions {
            quick: true,
            threads: 2,
            out_dir: std::env::temp_dir().join("rmd-benchcmd-test"),
            backend: None,
        };
        let mut rec = bench_machine(&example_machine(), &opts);
        rec.machine = "benchcmd-unit".into(); // avoid clobbering real records
        let path = write_bench_record(&rec, &opts.out_dir).unwrap();
        assert!(path.ends_with("BENCH_benchcmd_unit.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(json_is_well_formed(&body));
        assert!(body.contains("\"schema\": \"rmd-bench/6\""));
        assert!(body.contains("\"phases\""));
        assert!(body.contains("\"query_window\""));
        assert!(body.contains("\"serve\""));
        assert!(body.contains("\"stress\""));
        assert!(body.contains("\"host_parallelism\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scheduler_sweep_covers_requested_thread_counts() {
        let m = cydra5_subset();
        let opts = BenchOptions {
            quick: true,
            threads: 8,
            out_dir: PathBuf::from("."),
            backend: None,
        };
        let sb = scheduler_bench(&m, &opts);
        let swept: Vec<usize> = sb.speedup_by_threads.iter().map(|s| s.threads).collect();
        // Quick sweeps {2} ∪ {opts.threads}, ascending.
        assert_eq!(swept, vec![2, 8]);
        for s in &sb.speedup_by_threads {
            assert!(s.schedules_identical, "threads={}", s.threads);
            assert!(s.speedup.is_finite() && s.speedup > 0.0, "threads={}", s.threads);
        }
        // The flat fields alias the sweep entry at the record's threads.
        let at = sb
            .speedup_by_threads
            .iter()
            .find(|s| s.threads == opts.threads)
            .unwrap();
        assert_eq!(sb.parallel_wall_ms, at.parallel_wall_ms);
        assert_eq!(sb.speedup, at.speedup);
        assert_eq!(sb.schedules_identical, at.schedules_identical);
    }

    #[test]
    fn sweep_threads_dedups_and_sorts() {
        assert_eq!(sweep_threads(&[2, 8], 8), vec![2, 8]);
        assert_eq!(sweep_threads(&[2, 8], 4), vec![2, 4, 8]);
        assert_eq!(sweep_threads(&[1, 2, 4, 8], 16), vec![1, 2, 4, 8, 16]);
        assert_eq!(sweep_threads(&[2], 1), vec![1, 2]);
    }

    #[test]
    fn stress_suite_is_deterministic_and_sized_small() {
        let m = cydra5_subset();
        let ops = rmd_loops::OpSet::for_cydra_subset(&m);
        let a = stress_suite(&ops, 300, STRESS_SEED);
        let b = stress_suite(&ops, 300, STRESS_SEED);
        assert_eq!(a.len(), 300);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.graph, y.graph);
        }
        // Small-body distribution: every size within the cap (+1 for
        // brtop), mean well under the paper suite's 17.5.
        let sizes: Vec<usize> = a.iter().map(|l| l.graph.num_nodes()).collect();
        assert!(sizes.iter().all(|&s| (3..=41).contains(&s)), "{sizes:?}");
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((4.0..=14.0).contains(&avg), "mean stress body size {avg:.2}");
        assert_ne!(
            stress_suite(&ops, 10, 1)[9].graph,
            stress_suite(&ops, 10, 2)[9].graph,
            "seed must matter"
        );
    }

    #[test]
    fn stress_bench_schedules_identically_in_parallel() {
        let m = cydra5_subset();
        let opts = BenchOptions {
            quick: true,
            threads: 2,
            out_dir: PathBuf::from("."),
            backend: None,
        };
        // The quick count is already CI-sized; shrink further for the
        // unit test by running the core directly on a small suite.
        let ops = rmd_loops::OpSet::for_cydra_subset(&m);
        let loops = stress_suite(&ops, 200, STRESS_SEED);
        let repr = Representation::Bitvec(WordLayout::widest(64, m.num_resources()));
        let serial = run_suite_runs(&m, &m, &loops, repr, 6.0);
        // The full-bench sweep points: byte-identical at every count.
        for threads in [1usize, 2, 4, 8, opts.threads] {
            let parallel = run_suite_runs_parallel(&m, &m, &loops, repr, 6.0, threads);
            assert_eq!(serial, parallel, "threads={threads}: stress run must be bit-identical");
        }
        assert_eq!(serial.len(), 200);
        assert!(serial.iter().map(|r| r.ops as u64).sum::<u64>() > 1_000);
    }
}
