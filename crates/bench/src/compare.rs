//! `rmd bench --compare`: the bench-trajectory regression guard.
//!
//! A `BENCH_*.json` record is a perf trajectory point; this module
//! diffs two of them. The report lists every numeric leaf the records
//! share (dotted paths, `old -> new` with the relative delta), and one
//! chosen **guard metric** gates the exit status: when the new value
//! falls below `old * (1 - tolerance)` the comparison is a regression
//! and the CLI exits with code 11. Metrics are higher-is-better
//! (`queries_per_sec`, `reductions_per_sec`, `speedup`, `req_per_s`),
//! so the guard is one-sided — improvements never fail.
//!
//! Records are loaded with the workspace's `serde_json` shim parser, so
//! the guard works on anything `rmd bench` wrote, including records
//! from older schemas: unknown paths simply don't pair up and are
//! counted as unshared rather than erroring.

use serde_json::Value;
use std::fmt::Write as _;
use std::path::Path;

/// The guard metric compared when `--metric` is not given: the
/// contention-query throughput, the workspace's headline number.
pub const DEFAULT_METRIC: &str = "query.queries_per_sec";

/// The tolerated relative drop when `--tolerance` is not given.
/// Generous on purpose: bench numbers are wall-clock on whatever host
/// ran them, so the guard is for order-of-magnitude cliffs, not noise.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// The verdict of one record comparison.
#[derive(Clone, Debug)]
pub struct CompareOutcome {
    /// Human-readable report: shared numeric leaves with deltas, then
    /// the guard line.
    pub report: String,
    /// The guard metric's dotted path.
    pub metric: String,
    /// The metric's value in the old (baseline) record.
    pub old_value: f64,
    /// The metric's value in the new record.
    pub new_value: f64,
    /// The tolerated relative drop.
    pub tolerance: f64,
    /// Whether `new_value < old_value * (1 - tolerance)`.
    pub regressed: bool,
}

/// Loads and parses a bench record.
///
/// # Errors
///
/// Returns a message naming the path when the file cannot be read or
/// does not parse as JSON.
pub fn load_record(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{} is not JSON: {e:?}", path.display()))
}

/// Looks up a dotted path (`"query.queries_per_sec"`) and returns the
/// numeric leaf it names, if any. Array elements are addressed by
/// index (`"phases.0.wall_ms"`).
pub fn lookup_metric(v: &Value, path: &str) -> Option<f64> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = match cur {
            Value::Object(_) => cur.get(seg)?,
            Value::Array(items) => items.get(seg.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    cur.as_f64()
}

/// Collects every numeric leaf of `v` as `(dotted_path, value)`, in
/// source order. `unix_time_secs` is skipped — it differs between any
/// two records and its delta is noise.
pub fn numeric_leaves(v: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    collect_leaves(v, String::new(), &mut out);
    out
}

fn collect_leaves(v: &Value, prefix: String, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Number(n) if prefix != "unix_time_secs" => {
            out.push((prefix, *n));
        }
        Value::Object(members) => {
            for (k, child) in members {
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                collect_leaves(child, path, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                collect_leaves(child, format!("{prefix}.{i}"), out);
            }
        }
        _ => {}
    }
}

/// Diffs `new` against the baseline `old` and gates on `metric` with
/// the given relative `tolerance`.
///
/// # Errors
///
/// Returns a message when `metric` is missing from either record or
/// the tolerance is not a fraction in `[0, 1)`.
pub fn compare_records(
    old: &Value,
    new: &Value,
    metric: &str,
    tolerance: f64,
) -> Result<CompareOutcome, String> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance must be in [0, 1), got {tolerance}"));
    }
    let old_value = lookup_metric(old, metric)
        .ok_or_else(|| format!("metric {metric:?} not found in the baseline record"))?;
    let new_value = lookup_metric(new, metric)
        .ok_or_else(|| format!("metric {metric:?} not found in the new record"))?;

    let mut report = String::new();
    let name = |v: &Value| {
        v.get("machine").and_then(Value::as_str).unwrap_or("?").to_owned()
    };
    let schema = |v: &Value| {
        v.get("schema").and_then(Value::as_str).unwrap_or("?").to_owned()
    };
    let _ = writeln!(
        report,
        "comparing {} ({}) against baseline {} ({})",
        name(new),
        schema(new),
        name(old),
        schema(old)
    );

    let old_leaves = numeric_leaves(old);
    let new_leaves = numeric_leaves(new);
    let mut unshared = 0usize;
    for (path, old_v) in &old_leaves {
        match new_leaves.iter().find(|(p, _)| p == path) {
            Some((_, new_v)) => {
                let delta = if *old_v == 0.0 {
                    if *new_v == 0.0 { 0.0 } else { f64::INFINITY }
                } else {
                    (new_v - old_v) / old_v * 100.0
                };
                let _ = writeln!(report, "  {path}: {old_v} -> {new_v} ({delta:+.1}%)");
            }
            None => unshared += 1,
        }
    }
    unshared += new_leaves
        .iter()
        .filter(|(p, _)| !old_leaves.iter().any(|(q, _)| q == p))
        .count();
    if unshared > 0 {
        let _ = writeln!(report, "  ({unshared} numeric leaves present in only one record)");
    }

    let regressed = new_value < old_value * (1.0 - tolerance);
    let _ = writeln!(
        report,
        "guard {metric}: old {old_value} new {new_value}, tolerance {:.0}% -> {}",
        tolerance * 100.0,
        if regressed { "REGRESSED" } else { "ok" }
    );

    Ok(CompareOutcome {
        report,
        metric: metric.to_owned(),
        old_value,
        new_value,
        tolerance,
        regressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{"schema":"rmd-bench/5","machine":"fig1","unix_time_secs":1,
        "query":{"rounds":4,"queries_per_sec":1000.0},
        "phases":[{"label":"forbidden","wall_ms":2.0}],
        "scheduler":{"speedup":2.5}}"#;

    fn record(s: &str) -> Value {
        serde_json::from_str(s).expect("test record parses")
    }

    #[test]
    fn dotted_paths_reach_nested_and_indexed_leaves() {
        let v = record(OLD);
        assert_eq!(lookup_metric(&v, "query.queries_per_sec"), Some(1000.0));
        assert_eq!(lookup_metric(&v, "phases.0.wall_ms"), Some(2.0));
        assert_eq!(lookup_metric(&v, "scheduler.speedup"), Some(2.5));
        assert_eq!(lookup_metric(&v, "query.missing"), None);
        assert_eq!(lookup_metric(&v, "machine"), None, "strings are not metrics");
    }

    #[test]
    fn leaves_are_collected_without_the_timestamp() {
        let paths: Vec<String> =
            numeric_leaves(&record(OLD)).into_iter().map(|(p, _)| p).collect();
        assert!(paths.contains(&"query.rounds".to_owned()));
        assert!(paths.contains(&"phases.0.wall_ms".to_owned()));
        assert!(!paths.iter().any(|p| p.contains("unix_time_secs")));
    }

    #[test]
    fn identical_records_never_regress() {
        let v = record(OLD);
        let out = compare_records(&v, &v, DEFAULT_METRIC, DEFAULT_TOLERANCE).unwrap();
        assert!(!out.regressed);
        assert!(out.report.contains("-> ok"));
        assert!(out.report.contains("query.queries_per_sec: 1000 -> 1000 (+0.0%)"));
    }

    #[test]
    fn a_metric_cliff_regresses_and_an_improvement_does_not() {
        let old = record(OLD);
        let slow = record(&OLD.replace("\"queries_per_sec\":1000.0", "\"queries_per_sec\":100.0"));
        let out = compare_records(&old, &slow, DEFAULT_METRIC, 0.5).unwrap();
        assert!(out.regressed, "{}", out.report);
        assert!(out.report.contains("REGRESSED"));
        // The same pair in the other direction is an improvement.
        let out = compare_records(&slow, &old, DEFAULT_METRIC, 0.5).unwrap();
        assert!(!out.regressed, "{}", out.report);
        // Just inside tolerance: 501 >= 1000 * (1 - 0.5).
        let near = record(&OLD.replace("\"queries_per_sec\":1000.0", "\"queries_per_sec\":501.0"));
        assert!(!compare_records(&old, &near, DEFAULT_METRIC, 0.5).unwrap().regressed);
    }

    #[test]
    fn missing_metric_and_bad_tolerance_are_errors() {
        let v = record(OLD);
        assert!(compare_records(&v, &v, "nope.nope", 0.5).is_err());
        assert!(compare_records(&v, &v, DEFAULT_METRIC, 1.0).is_err());
        assert!(compare_records(&v, &v, DEFAULT_METRIC, -0.1).is_err());
    }
}
