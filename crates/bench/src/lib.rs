//! Shared infrastructure for the table/figure binaries: reduction
//! sweeps, suite scheduling runs, plain-text table rendering, and
//! machine-readable experiment records.

use rmd_core::{avg_word_usages, reduce, verify_equivalence, Objective, Reduction};
use rmd_latency::{ClassPartition, ForbiddenMatrix};
use rmd_loops::Loop;
use rmd_machine::MachineDescription;
use rmd_query::{ModuloMaskCache, WordLayout, WorkCounters};
use rmd_sched::{mii, ImsConfig, IterativeModuloScheduler, Representation, SchedScratch};
use serde::Serialize;
use std::path::Path;

pub mod benchcmd;
pub mod compare;
pub mod parallel;
pub mod profile;

/// The query-backend vocabulary accepted by the `--backend` filter of
/// `rmd bench` and `rmd profile`, in profile-report order.
pub const BACKEND_NAMES: [&str; 5] = [
    "discrete",
    "bitvec",
    "compiled",
    "modulo_discrete",
    "modulo_bitvec",
];

/// One column of a paper Table 1–4 style report.
#[derive(Clone, Debug, Serialize)]
pub struct ColumnStats {
    /// Column label ("original", "res-uses", "2-cycle-word", ...).
    pub label: String,
    /// Number of modeled resources.
    pub num_resources: usize,
    /// Average resource usages per operation class.
    pub avg_usages_per_op: f64,
    /// Cycles per word used for the word-usage metric.
    pub k: u32,
    /// Average nonempty words per operation class, over all alignments.
    pub avg_word_usages: f64,
}

/// A full reduction report for one machine (one paper table).
#[derive(Clone, Debug, Serialize)]
pub struct ReductionReport {
    /// Machine name.
    pub machine: String,
    /// Operation-class count.
    pub num_classes: usize,
    /// Total nonnegative forbidden latencies.
    pub forbidden_latencies: usize,
    /// Largest forbidden latency.
    pub max_latency: i32,
    /// Per-column statistics.
    pub columns: Vec<ColumnStats>,
}

/// Runs the paper's Table 1–4 sweep on `machine`: the original
/// description, the discrete (res-uses) reduction, and one
/// k-cycle-word reduction per entry of `word_bits` (k chosen as
/// `word_bits / reduced resource count`, as the paper does), plus the
/// 1-cycle-word column.
///
/// Every reduction is verified to preserve the forbidden-latency matrix
/// exactly before being reported.
///
/// # Panics
///
/// Panics if any reduction fails verification (that would be a bug, not
/// an input property).
pub fn reduction_report(machine: &MachineDescription, word_bits: &[u32]) -> ReductionReport {
    let f = ForbiddenMatrix::compute(machine);
    let classes = ClassPartition::compute(machine, &f);
    let class_machine = classes.class_machine(machine).expect("valid machine");
    let cf = ForbiddenMatrix::compute(&class_machine);

    let mut columns = Vec::new();
    columns.push(ColumnStats {
        label: "original".into(),
        num_resources: machine.num_resources(),
        avg_usages_per_op: class_machine.avg_usages_per_op(),
        k: 1,
        avg_word_usages: avg_word_usages(&class_machine, 1),
    });

    let res_uses = checked_reduce(machine, Objective::ResUses);
    let n0 = res_uses.reduced_classes.num_resources().max(1);
    columns.push(ColumnStats {
        label: "res-uses".into(),
        num_resources: n0,
        avg_usages_per_op: res_uses.reduced_classes.avg_usages_per_op(),
        k: 1,
        avg_word_usages: avg_word_usages(&res_uses.reduced_classes, 1),
    });

    let mut ks = vec![1u32];
    for &wb in word_bits {
        ks.push((wb / n0 as u32).max(1));
    }
    ks.sort_unstable();
    ks.dedup();
    for k in ks {
        let red = checked_reduce(machine, Objective::KCycleWord { k });
        columns.push(ColumnStats {
            label: format!("{k}-cycle-word"),
            num_resources: red.reduced_classes.num_resources(),
            avg_usages_per_op: red.reduced_classes.avg_usages_per_op(),
            k,
            avg_word_usages: avg_word_usages(&red.reduced_classes, k),
        });
    }

    ReductionReport {
        machine: machine.name().to_owned(),
        num_classes: classes.num_classes(),
        forbidden_latencies: cf.total_nonneg(),
        max_latency: cf.max_latency(),
        columns,
    }
}

/// Runs [`reduction_report`] for several machines across up to
/// `threads` worker threads (see [`parallel::run_indexed`]); reports
/// come back in input order, identical to mapping serially.
pub fn reduction_reports_parallel(
    machines: &[&MachineDescription],
    word_bits: &[u32],
    threads: usize,
) -> Vec<ReductionReport> {
    parallel::run_indexed(machines.len(), threads, |i| {
        reduction_report(machines[i], word_bits)
    })
}

/// Reduces under `objective` and asserts exact equivalence.
pub fn checked_reduce(machine: &MachineDescription, objective: Objective) -> Reduction {
    let red = reduce(machine, objective);
    verify_equivalence(machine, &red.reduced)
        .unwrap_or_else(|e| panic!("{}: reduction broke equivalence: {e}", machine.name()));
    red
}

/// Renders a [`ReductionReport`] in the layout of the paper's Tables 1–4.
pub fn render_report(r: &ReductionReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} operation classes, {} forbidden latencies (all < {})",
        r.machine,
        r.num_classes,
        r.forbidden_latencies,
        r.max_latency + 1
    );
    let w = 16usize;
    let _ = write!(out, "{:34}", "");
    for c in &r.columns {
        let _ = write!(out, "{:>w$}", c.label);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:34}", "number of resources");
    for c in &r.columns {
        let _ = write!(out, "{:>w$}", c.num_resources);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:34}", "avg resource usages / operation");
    for c in &r.columns {
        let _ = write!(out, "{:>w$.1}", c.avg_usages_per_op);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:34}", "avg word usages / operation");
    for c in &r.columns {
        let _ = write!(out, "{:>w$}", format!("{:.1} (k={})", c.avg_word_usages, c.k));
    }
    let _ = writeln!(out);
    out
}

/// Aggregate results of scheduling a loop suite (paper Tables 5 and 6).
#[derive(Clone, Debug, Serialize)]
pub struct SuiteStats {
    /// Loops scheduled.
    pub loops: usize,
    /// Operation-count distribution: (min, percent at min, mean, max).
    pub ops: Distribution,
    /// II distribution.
    pub ii: Distribution,
    /// II/MII distribution.
    pub ii_ratio: Distribution,
    /// Scheduling decisions per operation, averaged over attempts.
    pub decisions_per_op: Distribution,
    /// Fraction of loops scheduled at II = MII.
    pub at_mii: f64,
    /// Fraction of loops with no reversed decision.
    pub no_reversal: f64,
    /// Fraction of attempts that exceeded the budget.
    pub budget_exceeded: f64,
    /// Fraction of `assign&free` calls (per loop) that evicted something,
    /// and the share of reversals due to resources.
    pub resource_reversal_share: f64,
    /// Merged query-module work counters.
    pub counters: CounterSummary,
}

/// Min / share-at-min / mean / max of a statistic (the paper's Table 5
/// row format).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Distribution {
    /// Smallest value.
    pub min: f64,
    /// Fraction of samples equal to the minimum.
    pub at_min: f64,
    /// Mean.
    pub mean: f64,
    /// Largest value.
    pub max: f64,
}

impl Distribution {
    /// Computes the distribution of `xs` (empty input yields zeros).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Distribution {
                min: 0.0,
                at_min: 0.0,
                mean: 0.0,
                max: 0.0,
            };
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let at_min = xs.iter().filter(|&&x| (x - min).abs() < 1e-9).count() as f64 / xs.len() as f64;
        Distribution { min, at_min, mean, max }
    }
}

/// Serializable view of [`WorkCounters`].
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CounterSummary {
    /// check: (calls, avg units).
    pub check_calls: u64,
    /// Average work units per check call.
    pub check_avg: f64,
    /// assign&free calls.
    pub assign_free_calls: u64,
    /// Average work units per assign&free call.
    pub assign_free_avg: f64,
    /// free calls.
    pub free_calls: u64,
    /// Average work units per free call.
    pub free_avg: f64,
    /// Weighted average units over all calls.
    pub weighted_avg: f64,
    /// Optimistic→update transitions.
    pub transitions: u64,
    /// Batched window queries issued (the scalar-equivalent work they
    /// replace is already folded into `check_calls`/`check_avg`).
    pub check_window_calls: u64,
    /// Backend word loads performed by the batched scans.
    pub check_window_loads: u64,
}

impl From<&WorkCounters> for CounterSummary {
    fn from(w: &WorkCounters) -> Self {
        CounterSummary {
            check_calls: w.check.calls,
            check_avg: w.check.avg(),
            assign_free_calls: w.assign_free.calls,
            assign_free_avg: w.assign_free.avg(),
            free_calls: w.free.calls,
            free_avg: w.free.avg(),
            weighted_avg: w.weighted_avg_units(),
            transitions: w.transitions,
            check_window_calls: w.check_window.calls,
            check_window_loads: w.check_window.units,
        }
    }
}

/// Per-loop outcome of a suite run — the unit of work sharded by the
/// parallel runner and folded (always in suite order) by [`aggregate`].
#[derive(Clone, Debug, PartialEq)]
pub struct LoopRun {
    /// Operations in the loop body.
    pub ops: usize,
    /// Achieved initiation interval.
    pub ii: u32,
    /// The MII lower bound (computed from the MII machine).
    pub mii: u32,
    /// Issue time per node — schedule-identity checks between serial and
    /// parallel runs compare these directly.
    pub times: Vec<u32>,
    /// Scheduling decisions per operation, one entry per II attempt.
    pub per_attempt_ratio: Vec<f64>,
    /// Decisions reversed by resource eviction.
    pub reversed_by_resource: u64,
    /// Decisions reversed by dependence violation.
    pub reversed_by_dependence: u64,
    /// Query-module work counters for this loop.
    pub counters: WorkCounters,
}

/// A fresh per-worker mask cache when the representation can use one.
fn mask_cache_for(machine: &MachineDescription, repr: Representation) -> Option<ModuloMaskCache> {
    match repr {
        Representation::Bitvec(layout) => Some(ModuloMaskCache::new(machine, layout)),
        Representation::Discrete => None,
    }
}

/// Cheap per-loop cost estimates driving the parallel runner's
/// [`parallel::ClaimPlan`]: `ops × resource-pressure bound` — the
/// dominant terms of IMS work (each attempt places about `ops`
/// operations and the slot-search window is one II wide, with the
/// pressure bound a lower bound on II). Dispatch metadata only: the
/// estimate decides which loop a worker claims next, never what any
/// loop's schedule looks like.
pub fn loop_costs(machine: &MachineDescription, loops: &[Loop]) -> Vec<u64> {
    let mut per_res = vec![0u64; machine.num_resources()];
    loops
        .iter()
        .map(|l| {
            per_res.iter_mut().for_each(|c| *c = 0);
            for n in l.graph.nodes() {
                let t = machine.operation(l.graph.op(n)).table();
                for u in t.usages() {
                    per_res[u.resource.index()] += 1;
                }
            }
            let pressure = per_res.iter().copied().max().unwrap_or(1).max(1);
            (l.graph.num_nodes() as u64).saturating_mul(pressure).max(1)
        })
        .collect()
}

/// Schedules one loop: the worker body shared by the serial and
/// parallel suite runners.
fn run_one(
    ims: &IterativeModuloScheduler,
    machine: &MachineDescription,
    mii_machine: &MachineDescription,
    l: &Loop,
    repr: Representation,
    cache: Option<&mut ModuloMaskCache>,
    scratch: &mut SchedScratch,
) -> LoopRun {
    let m = mii::mii(&l.graph, mii_machine);
    let mut r = match cache {
        Some(c) => ims.schedule_with_mii_cached_scratch(&l.graph, machine, repr, m, c, scratch),
        None => ims.schedule_with_mii_scratch(&l.graph, machine, repr, m, scratch),
    }
    .unwrap_or_else(|e| panic!("{}: {e}", l.name));
    // `times`/`per_attempt_ratio` are retained in the record; the ops
    // vector is not, so hand its capacity back to the scratch.
    scratch.recycle_ops(std::mem::take(&mut r.chosen));
    LoopRun {
        ops: l.graph.num_nodes(),
        ii: r.ii,
        mii: r.mii,
        times: std::mem::take(&mut r.times),
        per_attempt_ratio: std::mem::take(&mut r.per_attempt_ratio),
        reversed_by_resource: r.reversed_by_resource,
        reversed_by_dependence: r.reversed_by_dependence,
        counters: r.counters,
    }
}

/// Schedules every loop of `loops` serially, returning per-loop results
/// in suite order. [`aggregate`] folds them into [`SuiteStats`];
/// [`run_suite`] is the one-call wrapper.
pub fn run_suite_runs(
    machine: &MachineDescription,
    mii_machine: &MachineDescription,
    loops: &[Loop],
    repr: Representation,
    budget_ratio: f64,
) -> Vec<LoopRun> {
    run_suite_runs_with(
        machine,
        mii_machine,
        loops,
        repr,
        ImsConfig {
            budget_ratio,
            ..ImsConfig::default()
        },
    )
}

/// [`run_suite_runs`] with full control over the scheduler
/// configuration — the hook the slot-search identity tests and the
/// `query_window` bench use to pit [`rmd_sched::SlotSearch::PerCycle`]
/// against [`rmd_sched::SlotSearch::Window`] on otherwise identical
/// runs.
pub fn run_suite_runs_with(
    machine: &MachineDescription,
    mii_machine: &MachineDescription,
    loops: &[Loop],
    repr: Representation,
    config: ImsConfig,
) -> Vec<LoopRun> {
    let ims = IterativeModuloScheduler::new(config);
    let mut cache = mask_cache_for(machine, repr);
    let mut scratch = SchedScratch::new();
    loops
        .iter()
        .map(|l| run_one(&ims, machine, mii_machine, l, repr, cache.as_mut(), &mut scratch))
        .collect()
}

/// Schedules every loop of `loops` across up to `threads` worker
/// threads with cost-sharded work-stealing (see
/// [`parallel::run_indexed_costed`]): loops are claimed in descending
/// [`loop_costs`] order so the expensive ones start first, cheap loops
/// are claimed in batches, and the worker count is capped at the host's
/// available parallelism.
///
/// Results are identical to [`run_suite_runs`] and come back in suite
/// order: each loop is scheduled independently by a deterministic
/// scheduler, each worker owns a private [`ModuloMaskCache`] +
/// [`SchedScratch`] pair (sharing is only of immutable compiled masks,
/// never of reservation or scratch state), and merging is positional.
/// Only wall-clock time depends on the thread count.
pub fn run_suite_runs_parallel(
    machine: &MachineDescription,
    mii_machine: &MachineDescription,
    loops: &[Loop],
    repr: Representation,
    budget_ratio: f64,
    threads: usize,
) -> Vec<LoopRun> {
    let ims = IterativeModuloScheduler::new(ImsConfig {
        budget_ratio,
        ..ImsConfig::default()
    });
    let costs = loop_costs(machine, loops);
    parallel::run_indexed_costed(
        loops.len(),
        threads,
        &costs,
        || (mask_cache_for(machine, repr), SchedScratch::new()),
        |(cache, scratch), i| {
            run_one(&ims, machine, mii_machine, &loops[i], repr, cache.as_mut(), scratch)
        },
    )
}

/// Folds per-loop results into the paper's Table 5/6 statistics.
///
/// Deterministic in the input order: the serial and parallel runners
/// both present runs in suite order, so their [`SuiteStats`] agree
/// bit-for-bit.
pub fn aggregate(runs: &[LoopRun], budget_ratio: f64) -> SuiteStats {
    let mut ops_v = Vec::new();
    let mut ii_v = Vec::new();
    let mut ratio_v = Vec::new();
    let mut dec_v = Vec::new();
    let mut at_mii = 0usize;
    let mut no_reversal = 0usize;
    let mut attempts_total = 0usize;
    let mut attempts_over = 0usize;
    let mut reversals_resource = 0u64;
    let mut reversals_total = 0u64;
    let mut counters = WorkCounters::new();

    for r in runs {
        ops_v.push(r.ops as f64);
        ii_v.push(f64::from(r.ii));
        ratio_v.push(f64::from(r.ii) / f64::from(r.mii));
        for &ratio in &r.per_attempt_ratio {
            dec_v.push(ratio);
            attempts_total += 1;
            if ratio >= budget_ratio {
                attempts_over += 1;
            }
        }
        if r.ii == r.mii {
            at_mii += 1;
        }
        if r.reversed_by_resource + r.reversed_by_dependence == 0 {
            no_reversal += 1;
        }
        reversals_resource += r.reversed_by_resource;
        reversals_total += r.reversed_by_resource + r.reversed_by_dependence;
        counters.merge(&r.counters);
    }

    SuiteStats {
        loops: runs.len(),
        ops: Distribution::of(&ops_v),
        ii: Distribution::of(&ii_v),
        ii_ratio: Distribution::of(&ratio_v),
        decisions_per_op: Distribution::of(&dec_v),
        at_mii: at_mii as f64 / runs.len().max(1) as f64,
        no_reversal: no_reversal as f64 / runs.len().max(1) as f64,
        budget_exceeded: attempts_over as f64 / attempts_total.max(1) as f64,
        resource_reversal_share: if reversals_total == 0 {
            0.0
        } else {
            reversals_resource as f64 / reversals_total as f64
        },
        counters: (&counters).into(),
    }
}

/// Schedules every loop of `loops` on `machine` with the given
/// representation and budget ratio, aggregating the paper's statistics.
/// `mii_machine` supplies the MII (pass the original description when
/// `machine` is a reduction so trajectories are comparable).
pub fn run_suite(
    machine: &MachineDescription,
    mii_machine: &MachineDescription,
    loops: &[Loop],
    repr: Representation,
    budget_ratio: f64,
) -> SuiteStats {
    aggregate(
        &run_suite_runs(machine, mii_machine, loops, repr, budget_ratio),
        budget_ratio,
    )
}

/// The representations compared in Table 6, in paper column order,
/// for a machine with `num_resources` reduced resources.
pub fn table6_representations(num_resources: usize) -> Vec<(String, Objective, Representation)> {
    let mut out = vec![(
        "discrete res-uses".to_owned(),
        Objective::ResUses,
        Representation::Discrete,
    )];
    let mut ks = vec![1u32];
    ks.push((32 / num_resources as u32).max(1));
    ks.push((64 / num_resources as u32).max(1));
    ks.sort_unstable();
    ks.dedup();
    for k in ks {
        out.push((
            format!("bitvec {k}-cycle-word"),
            Objective::KCycleWord { k },
            Representation::Bitvec(WordLayout::with_k(64, k)),
        ));
    }
    out
}

/// Writes an experiment record as pretty JSON under `results/`.
///
/// # Panics
///
/// Panics on I/O errors — these binaries are experiment drivers and a
/// failure to record results should be loud.
pub fn write_record<T: Serialize>(id: &str, record: &T) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(record).expect("serialize record");
    std::fs::write(&path, json).expect("write record");
    println!("\n[recorded results/{id}.json]");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::{cydra5_subset, mips_r3000};
    use rmd_sched::SlotSearch;

    #[test]
    fn distribution_basics() {
        let d = Distribution::of(&[1.0, 1.0, 2.0, 4.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
        assert!((d.mean - 2.0).abs() < 1e-12);
        assert!((d.at_min - 0.5).abs() < 1e-12);
        let empty = Distribution::of(&[]);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn reduction_report_columns_are_consistent() {
        let r = reduction_report(&mips_r3000(), &[32, 64]);
        assert_eq!(r.columns[0].label, "original");
        assert_eq!(r.columns[1].label, "res-uses");
        assert!(r.columns.len() >= 3);
        // Reduction must shrink resources and usages.
        assert!(r.columns[1].num_resources < r.columns[0].num_resources);
        assert!(r.columns[1].avg_usages_per_op < r.columns[0].avg_usages_per_op);
    }

    #[test]
    fn small_suite_runs_end_to_end() {
        let m = cydra5_subset();
        let ops = rmd_loops::OpSet::for_cydra_subset(&m);
        let loops = rmd_loops::suite(&ops, 25, 42);
        let stats = run_suite(&m, &m, &loops, Representation::Discrete, 6.0);
        assert_eq!(stats.loops, 25);
        assert!(stats.at_mii > 0.5, "at_mii = {}", stats.at_mii);
        assert!(stats.counters.check_calls > 0);
    }

    /// `runs` with the `check_window` counter zeroed — every other field
    /// must match bit-for-bit between slot-search strategies.
    fn sans_window_counter(runs: &[LoopRun]) -> Vec<LoopRun> {
        let mut out = runs.to_vec();
        for r in &mut out {
            r.counters.check_window = rmd_query::FnCounter::default();
        }
        out
    }

    #[test]
    fn window_suite_is_byte_identical_to_per_cycle_at_all_thread_counts() {
        let m = cydra5_subset();
        let ops = rmd_loops::OpSet::for_cydra_subset(&m);
        let loops = rmd_loops::suite(&ops, 24, 0xC5);
        let repr = Representation::Bitvec(WordLayout::widest(64, m.num_resources()));
        let per_cycle = run_suite_runs_with(
            &m,
            &m,
            &loops,
            repr,
            ImsConfig {
                slot_search: SlotSearch::PerCycle,
                ..ImsConfig::default()
            },
        );
        // The default path (serial and parallel) searches by window.
        let window = run_suite_runs(&m, &m, &loops, repr, 6.0);
        assert_eq!(sans_window_counter(&per_cycle), sans_window_counter(&window));
        for threads in [1, 2, 8] {
            let par = run_suite_runs_parallel(&m, &m, &loops, repr, 6.0, threads);
            assert_eq!(window, par, "threads = {threads}");
        }
    }

    #[test]
    fn window_path_loads_strictly_fewer_words_than_scalar_on_cydra5() {
        // The counter-based perf guard (no wall-clock flakiness): on the
        // cydra5 subset's bitvec representation the batched slot search
        // must answer from strictly fewer backend word loads than the
        // per-cycle scan, which by construction performs one load per
        // mask entry probed (`check.units`).
        let m = cydra5_subset();
        let ops = rmd_loops::OpSet::for_cydra_subset(&m);
        let loops = rmd_loops::suite(&ops, 24, 0xC5);
        let repr = Representation::Bitvec(WordLayout::widest(64, m.num_resources()));
        let runs = run_suite_runs(&m, &m, &loops, repr, 6.0);
        let mut merged = WorkCounters::new();
        for r in &runs {
            merged.merge(&r.counters);
        }
        assert!(merged.check_window.calls > 0, "window path not exercised");
        assert!(
            merged.check_window.units > 0 && merged.check_window.units < merged.check.units,
            "window loads {} vs scalar loads {}",
            merged.check_window.units,
            merged.check.units,
        );
    }
}
