//! A minimal `std::thread::scope`-based work-stealing runner.
//!
//! Work items are the indices `0..n`, claimed from a shared atomic
//! counter — a worker that finishes a cheap item immediately steals the
//! next unclaimed one, so no static sharding can strand a slow shard on
//! one core. Each worker carries private state (e.g. a
//! [`rmd_query::ModuloMaskCache`]) created by an `init` closure, and
//! results are returned **in index order** regardless of which worker
//! computed them: determinism is positional, not temporal.
//!
//! Two claiming disciplines exist:
//!
//! * [`run_indexed_with`] claims one index per `fetch_add` in index
//!   order — the simple baseline.
//! * [`run_indexed_costed`] claims through a [`ClaimPlan`]: the index
//!   space is ordered by a caller-supplied per-item cost estimate
//!   (expensive items dispatch first, so the slowest item never starts
//!   last) and grouped so that runs of cheap items are claimed by a
//!   single `fetch_add` — tiny items stop paying a cache-line ping
//!   each. Neither the order nor the grouping can change results:
//!   every index is claimed exactly once and results land in their
//!   original positions, a property the proptests below pin under
//!   random cost distributions, thread counts, and grain sizes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of logical CPUs actually available to this process — the
/// worker-count ceiling [`run_indexed_costed`] applies. Requesting more
/// OS threads than cores cannot add throughput; it only adds context
/// switching and duplicates per-worker caches, which is how a parallel
/// pass ends up *slower* than serial on a small host.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// How many claim groups [`ClaimPlan::new`] targets per requested
/// thread. Enough granularity that work-stealing can rebalance (the
/// last groups are the cheapest), few enough that small items amortize
/// their claim.
const GROUPS_PER_THREAD: usize = 16;

/// A cost-aware dispatch plan over the index space `0..n`: the claim
/// order (descending cost estimate, ties by ascending index so the
/// plan is deterministic) and its partition into contiguous claim
/// groups. Workers claim one *group* per atomic `fetch_add`.
///
/// Expensive items lead the order and form singleton groups; cheap
/// items trail in runs whose summed cost reaches the grain. The plan
/// is pure dispatch metadata — results are always returned in the
/// original index order.
#[derive(Clone, Debug)]
pub struct ClaimPlan {
    /// Indices `0..n` in dispatch order.
    order: Vec<u32>,
    /// Start offset of each group in `order`, ascending; group `g`
    /// spans `order[starts[g]..starts[g+1]]` (last group to the end).
    starts: Vec<u32>,
}

impl ClaimPlan {
    /// Plans dispatch for items with the given cost estimates onto
    /// `threads` workers: the grain (minimum summed cost per group) is
    /// `total_cost / (threads * 16)`, so each worker has ~16 groups to
    /// steal and tiny items batch together.
    pub fn new(costs: &[u64], threads: usize) -> ClaimPlan {
        let total: u64 = costs.iter().fold(0u64, |a, &c| a.saturating_add(c.max(1)));
        let target_groups = (threads.max(1) * GROUPS_PER_THREAD) as u64;
        ClaimPlan::with_grain(costs, total / target_groups)
    }

    /// Plans dispatch with an explicit grain: groups are closed as soon
    /// as their summed cost reaches `grain` (clamped to at least 1, so
    /// zero-cost items still advance the partition).
    pub fn with_grain(costs: &[u64], grain: u64) -> ClaimPlan {
        let grain = grain.max(1);
        let mut order: Vec<u32> = (0..costs.len() as u32).collect();
        order.sort_by(|&a, &b| {
            costs[b as usize].cmp(&costs[a as usize]).then(a.cmp(&b))
        });
        let mut starts = Vec::new();
        let mut acc = 0u64;
        for (pos, &i) in order.iter().enumerate() {
            if acc == 0 {
                starts.push(pos as u32);
            }
            acc = acc.saturating_add(costs[i as usize].max(1));
            if acc >= grain {
                acc = 0;
            }
        }
        ClaimPlan { order, starts }
    }

    /// Number of claim groups.
    pub fn num_groups(&self) -> usize {
        self.starts.len()
    }

    /// The indices of group `g`, in dispatch order.
    ///
    /// # Panics
    ///
    /// Panics if `g >= num_groups()`.
    pub fn group(&self, g: usize) -> &[u32] {
        let s = self.starts[g] as usize;
        let e = self.starts.get(g + 1).map_or(self.order.len(), |&x| x as usize);
        &self.order[s..e]
    }

    /// The full dispatch order (descending cost, ties by index).
    pub fn order(&self) -> &[u32] {
        &self.order
    }
}

/// Runs `f` over the indices `0..n` on up to `threads` OS threads and
/// returns the results in index order.
///
/// Each worker thread gets its own state from `init`, threaded through
/// every call it claims — the hook for per-thread caches that must not
/// be shared across workers. `threads` is clamped to `1..=n` (a zero
/// request means serial), and `threads == 1` runs inline on the calling
/// thread, so the serial path is exactly "call `f` in index order".
///
/// # Panics
///
/// Propagates a panic from any worker after all workers have stopped.
pub fn run_indexed_with<S, R, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, init, f) = (&next, &init, &f);
                scope.spawn(move || {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&mut state, i)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => {
                    for (i, r) in part {
                        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index in 0..n is claimed exactly once"))
        .collect()
}

/// Stateless convenience wrapper over [`run_indexed_with`].
pub fn run_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed_with(n, threads, || (), |(), i| f(i))
}

/// Runs `f` over the indices `0..n` on exactly `workers` OS threads
/// (clamped to `1..=n`), claiming work through `plan`: one atomic
/// `fetch_add` claims a whole claim group. Results are returned in
/// index order — the plan affects only *when* each index runs, never
/// where its result lands.
///
/// # Panics
///
/// Panics if the plan was built for a different index space, and
/// propagates a panic from any worker after all workers have stopped.
pub fn run_claim_plan<S, R, I, F>(n: usize, workers: usize, plan: &ClaimPlan, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert_eq!(plan.order.len(), n, "claim plan covers a different index space");
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        // Inline, in plan order: the dispatch order stays observable
        // (per-worker caches warm the same way as one parallel worker)
        // while results still land positionally.
        let mut state = init();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for &i in &plan.order {
            slots[i as usize] = Some(f(&mut state, i as usize));
        }
        return slots
            .into_iter()
            .map(|r| r.expect("plan covers every index exactly once"))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let num_groups = plan.num_groups();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, init, f) = (&next, &init, &f);
                scope.spawn(move || {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let g = next.fetch_add(1, Ordering::Relaxed);
                        if g >= num_groups {
                            break;
                        }
                        for &i in plan.group(g) {
                            out.push((i as usize, f(&mut state, i as usize)));
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => {
                    for (i, r) in part {
                        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("plan covers every index exactly once"))
        .collect()
}

/// Cost-aware counterpart of [`run_indexed_with`]: builds a
/// [`ClaimPlan`] from the per-item cost estimates and runs it on at
/// most `threads` workers, additionally capped at
/// [`host_parallelism`]. The `threads` argument is a *parallelism
/// budget* (rayon semantics), not an OS-thread demand — spawning more
/// workers than cores only loses time to oversubscription while
/// changing no result. A budget that resolves to a single worker skips
/// planning entirely and runs inline in index order, so on a
/// single-core host this function *is* the serial path.
///
/// # Panics
///
/// Panics if `costs.len() != n`, and propagates worker panics.
pub fn run_indexed_costed<S, R, I, F>(
    n: usize,
    threads: usize,
    costs: &[u64],
    init: I,
    f: F,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert_eq!(costs.len(), n, "one cost estimate per work item");
    let workers = threads.min(host_parallelism());
    if workers <= 1 || n <= 1 {
        // A budget of one worker is the serial discipline: walk the
        // items in index (memory) order. Dispatching a lone worker in
        // cost order would stride randomly through the item array —
        // measurably slower on large suites — and buys nothing, since
        // cost order exists only to balance load *across* workers.
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    run_claim_plan(n, workers, &ClaimPlan::new(costs, threads), init, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            let got = run_indexed(37, threads, |i| i * i);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_items_and_zero_threads_are_fine() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(100, 8, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn worker_state_is_private_and_reused() {
        // Each worker's state counts how many items it processed; the
        // per-item results record the worker-local sequence number, so
        // summing (last seen + 1) over distinct workers equals n.
        let results = run_indexed_with(
            50,
            4,
            || 0usize,
            |seen, _i| {
                let s = *seen;
                *seen += 1;
                s
            },
        );
        assert_eq!(results.len(), 50);
        // Worker-local sequence numbers start at 0 and are contiguous,
        // so the total number of 0s equals the number of workers that
        // processed at least one item.
        let zeros = results.iter().filter(|&&s| s == 0).count();
        assert!((1..=4).contains(&zeros), "zeros={zeros}");
    }

    #[test]
    fn worker_panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            run_indexed(8, 2, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn plan_orders_by_cost_desc_ties_by_index() {
        let costs = [3u64, 9, 9, 1, 7];
        let plan = ClaimPlan::with_grain(&costs, 1);
        assert_eq!(plan.order(), &[1, 2, 4, 0, 3]);
        // Grain 1: every item closes its own group.
        assert_eq!(plan.num_groups(), 5);
        for g in 0..plan.num_groups() {
            assert_eq!(plan.group(g).len(), 1);
        }
    }

    #[test]
    fn plan_batches_cheap_items_and_isolates_expensive_ones() {
        // One huge item, eight unit items, grain 4: the huge item is a
        // singleton group; the unit items batch four per group.
        let costs = [100u64, 1, 1, 1, 1, 1, 1, 1, 1];
        let plan = ClaimPlan::with_grain(&costs, 4);
        assert_eq!(plan.group(0), &[0]);
        assert_eq!(plan.num_groups(), 3);
        assert_eq!(plan.group(1).len(), 4);
        assert_eq!(plan.group(2).len(), 4);
    }

    #[test]
    fn plan_groups_partition_the_order() {
        let costs = [0u64, 5, 2, 2, 8, 0, 1];
        for grain in [0u64, 1, 3, 100] {
            let plan = ClaimPlan::with_grain(&costs, grain);
            let mut flat = Vec::new();
            for g in 0..plan.num_groups() {
                flat.extend_from_slice(plan.group(g));
            }
            assert_eq!(flat, plan.order(), "grain={grain}");
            let mut sorted = flat.clone();
            sorted.sort_unstable();
            let want: Vec<u32> = (0..costs.len() as u32).collect();
            assert_eq!(sorted, want, "grain={grain}");
        }
    }

    #[test]
    fn plan_handles_empty_input() {
        let plan = ClaimPlan::new(&[], 8);
        assert_eq!(plan.num_groups(), 0);
        assert_eq!(plan.order(), &[] as &[u32]);
        let got: Vec<u32> = run_claim_plan(0, 4, &plan, || (), |(), i| i as u32);
        assert!(got.is_empty());
    }

    #[test]
    fn costed_results_come_back_in_index_order() {
        let costs: Vec<u64> = (0..37).map(|i| (i * 7 % 13) as u64).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = run_indexed_costed(37, threads, &costs, || (), |(), i| i * i);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn claim_plan_runner_claims_every_index_once() {
        let costs: Vec<u64> = (0..100).map(|i| (i * 31 % 17) as u64).collect();
        for workers in [1usize, 2, 8] {
            let plan = ClaimPlan::new(&costs, workers);
            let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            let _ = run_claim_plan(100, workers, &plan, || (), |(), i| {
                counts[i].fetch_add(1, Ordering::Relaxed)
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "workers={workers} index={i}");
            }
        }
    }

    mod chunk_claim_props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Satellite (d): random cost distributions × thread counts
            /// × chunk sizes always yield every index claimed exactly
            /// once and positionally ordered results.
            #[test]
            fn chunked_claiming_is_positional_and_exhaustive(
                costs in prop::collection::vec(0u64..1_000, 0..120),
                workers in 1usize..9,
                grain in 0u64..500,
            ) {
                let n = costs.len();
                let plan = ClaimPlan::with_grain(&costs, grain);

                // The plan itself partitions 0..n.
                let mut flat = Vec::new();
                for g in 0..plan.num_groups() {
                    flat.extend_from_slice(plan.group(g));
                }
                prop_assert_eq!(&flat, plan.order());
                let mut sorted = flat;
                sorted.sort_unstable();
                let want: Vec<u32> = (0..n as u32).collect();
                prop_assert_eq!(sorted, want);

                // Dispatch order is descending cost, ties by index.
                for w in plan.order().windows(2) {
                    let (a, b) = (w[0] as usize, w[1] as usize);
                    prop_assert!(
                        costs[a] > costs[b] || (costs[a] == costs[b] && a < b),
                        "order not (cost desc, index asc) at {a} -> {b}"
                    );
                }

                // Running the plan claims every index exactly once and
                // returns results positionally.
                let counts: Vec<std::sync::atomic::AtomicUsize> =
                    (0..n).map(|_| std::sync::atomic::AtomicUsize::new(0)).collect();
                let got = run_claim_plan(n, workers, &plan, || (), |(), i| {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                    i * 2 + 1
                });
                let want: Vec<usize> = (0..n).map(|i| i * 2 + 1).collect();
                prop_assert_eq!(got, want);
                for (i, c) in counts.iter().enumerate() {
                    prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {} claim count", i);
                }
            }
        }
    }
}
