//! A minimal `std::thread::scope`-based work-stealing runner.
//!
//! Work items are the indices `0..n`, claimed one at a time from a
//! shared atomic counter — a worker that finishes a cheap item
//! immediately steals the next unclaimed one, so no static sharding can
//! strand a slow shard on one core. Each worker carries private state
//! (e.g. a [`rmd_query::ModuloMaskCache`]) created by an `init` closure,
//! and results are returned **in index order** regardless of which
//! worker computed them: determinism is positional, not temporal.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` over the indices `0..n` on up to `threads` OS threads and
/// returns the results in index order.
///
/// Each worker thread gets its own state from `init`, threaded through
/// every call it claims — the hook for per-thread caches that must not
/// be shared across workers. `threads` is clamped to `1..=n` (a zero
/// request means serial), and `threads == 1` runs inline on the calling
/// thread, so the serial path is exactly "call `f` in index order".
///
/// # Panics
///
/// Propagates a panic from any worker after all workers have stopped.
pub fn run_indexed_with<S, R, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, init, f) = (&next, &init, &f);
                scope.spawn(move || {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&mut state, i)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => {
                    for (i, r) in part {
                        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index in 0..n is claimed exactly once"))
        .collect()
}

/// Stateless convenience wrapper over [`run_indexed_with`].
pub fn run_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed_with(n, threads, || (), |(), i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            let got = run_indexed(37, threads, |i| i * i);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_items_and_zero_threads_are_fine() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(100, 8, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn worker_state_is_private_and_reused() {
        // Each worker's state counts how many items it processed; the
        // per-item results record the worker-local sequence number, so
        // summing (last seen + 1) over distinct workers equals n.
        let results = run_indexed_with(
            50,
            4,
            || 0usize,
            |seen, _i| {
                let s = *seen;
                *seen += 1;
                s
            },
        );
        assert_eq!(results.len(), 50);
        // Worker-local sequence numbers start at 0 and are contiguous,
        // so the total number of 0s equals the number of workers that
        // processed at least one item.
        let zeros = results.iter().filter(|&&s| s == 0).count();
        assert!((1..=4).contains(&zeros), "zeros={zeros}");
    }

    #[test]
    fn worker_panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            run_indexed(8, 2, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(r.is_err());
    }
}
