//! The engine behind the `rmd profile` CLI subcommand.
//!
//! Runs the whole stack — reduction pipeline, all five query backends,
//! and (where the machine supports the loop suite) the iterative modulo
//! scheduler — under [`rmd_obs`] tracing and folds the result into one
//! [`Profile`]: the raw event stream (exportable as JSONL or Chrome
//! trace JSON), a merged [`MetricRegistry`], and per-phase wall-clock
//! aggregates over the canonical [`REDUCTION_PHASES`] list.
//!
//! Everything here is additive instrumentation: the workloads reuse the
//! deterministic shapes the bench harness already runs, so a profile
//! never perturbs what it measures beyond the tracing overhead itself.

use crate::benchcmd::{suite_supported, SUITE_SEED};
use crate::{run_suite_runs_parallel, LoopRun};
use rmd_core::{reduce_with_fallback, Objective, ReduceOptions, REDUCTION_PHASES};
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{
    BitvecModule, CompiledModule, ContentionQuery, DiscreteModule, MeteredQuery,
    ModuloBitvecModule, ModuloDiscreteModule, ModuloMaskCache, OpInstance, QueryFn, WordLayout,
};
use rmd_sched::{mii, ImsConfig, IterativeModuloScheduler, Representation};
use rmd_obs::{Event, EventKind, MetricRegistry};
use serde::Serialize;
use std::fmt::Write as _;

/// Loop count `rmd profile` schedules by default (a quick slice of the
/// §8 suite — enough for meaningful per-II spans without a long run).
pub const DEFAULT_PROFILE_LOOPS: usize = 64;

/// Options of one `rmd profile` invocation.
#[derive(Clone, Copy, Debug)]
pub struct ProfileOptions {
    /// Loops to schedule (0 skips the scheduler section; ignored for
    /// machines outside the suite vocabulary).
    pub loops: usize,
    /// Suite generator seed.
    pub seed: u64,
    /// Restrict the per-backend metering to one backend (a
    /// [`crate::BACKEND_NAMES`] entry; `None` meters all five). The CLI
    /// validates user input before it reaches here.
    pub backend: Option<&'static str>,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            loops: DEFAULT_PROFILE_LOOPS,
            seed: SUITE_SEED,
            backend: None,
        }
    }
}

/// Wall-clock aggregate of one reduction phase (summed over its spans).
#[derive(Clone, Debug, Serialize)]
pub struct PhaseTiming {
    /// Phase name, from [`REDUCTION_PHASES`].
    pub phase: String,
    /// Total nanoseconds across all spans of this phase.
    pub wall_ns: u64,
    /// Number of spans observed.
    pub spans: u64,
}

/// One row of the per-function work-unit report (the Table-6-style
/// averages `rmd profile --table6` renders and records).
#[derive(Clone, Debug, Serialize)]
pub struct FnWorkRow {
    /// Metric scope, e.g. `query.discrete` or `sched.query`.
    pub scope: String,
    /// Query function name (`check`, `assign`, `assign_free`, `free`).
    pub function: String,
    /// Calls issued.
    pub calls: u64,
    /// Work units handled (paper §8 accounting).
    pub units: u64,
    /// Average units per call.
    pub avg_units: f64,
}

/// The outcome of profiling one machine.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Machine name.
    pub machine: String,
    /// The drained event stream, in recording order.
    pub events: Vec<Event>,
    /// Metrics merged from every instrumented layer.
    pub registry: MetricRegistry,
    /// Per-phase wall-clock aggregates over [`REDUCTION_PHASES`].
    pub phases: Vec<PhaseTiming>,
}

/// The serializable record `--table6` writes under `results/`.
#[derive(Clone, Debug, Serialize)]
pub struct ProfileRecord {
    /// Record schema tag.
    pub schema: String,
    /// Machine name.
    pub machine: String,
    /// Per-phase reduction timings.
    pub phases: Vec<PhaseTiming>,
    /// Per-function work-unit rows across all instrumented scopes.
    pub work: Vec<FnWorkRow>,
}

/// Schema tag of [`ProfileRecord`].
pub const PROFILE_SCHEMA: &str = "rmd-profile/1";

/// Sums span durations per [`REDUCTION_PHASES`] entry over `events`.
///
/// Phases appear in canonical order; a phase with no span is reported
/// with zero spans (this is what the CI smoke check guards against).
pub fn aggregate_phases(events: &[Event]) -> Vec<PhaseTiming> {
    REDUCTION_PHASES
        .iter()
        .map(|&phase| {
            let mut wall_ns = 0u64;
            let mut spans = 0u64;
            for e in events {
                if e.cat == "reduce" && e.name == phase && e.kind == EventKind::Span {
                    wall_ns += e.dur_ns;
                    spans += 1;
                }
            }
            PhaseTiming {
                phase: phase.to_owned(),
                wall_ns,
                spans,
            }
        })
        .collect()
}

/// A deterministic check/assign/assign&free/free workload exercising
/// every protocol function through a [`MeteredQuery`] wrapper. The
/// shape mirrors the bench harness's query workload: greedy fill over a
/// cycle window, a few forced placements, then tear-down of what is
/// still live.
fn metered_workload<Q: ContentionQuery>(
    q: &mut MeteredQuery<Q>,
    m: &MachineDescription,
    cycles: u32,
) {
    let nops = m.num_operations().max(1) as u32;
    let mut live: Vec<(u32, OpId, u32)> = Vec::new();
    let mut inst = 0u32;
    for cycle in 0..cycles {
        let op = OpId(cycle % nops);
        if q.check(op, cycle) {
            q.assign(OpInstance(inst), op, cycle);
            live.push((inst, op, cycle));
            inst += 1;
        }
    }
    // Forced placements: evictions unschedule earlier instances, so the
    // live list must drop whatever `assign&free` reports back.
    for i in 0..4u32.min(cycles) {
        let op = OpId(i % nops);
        let evicted = q.assign_free(OpInstance(inst), op, i);
        live.retain(|(id, _, _)| !evicted.contains(&OpInstance(*id)));
        live.push((inst, op, i));
        inst += 1;
    }
    // Batched window scans over the filled span, so the `check_window`
    // latency histogram and work rows show up in every profile.
    for start in (0..cycles).step_by(64) {
        let _ = q.check_window(OpId(start % nops), start, 64);
        let _ = q.first_free_in(OpId((start + 1) % nops), start, 64);
    }
    for &(id, op, c) in live.iter().rev() {
        q.free(OpInstance(id), op, c);
    }
}

/// Profiles the five query backends with per-function latency
/// histograms, merging each backend's metrics into `reg` under
/// `query.<backend>`. With a `filter` (a [`crate::BACKEND_NAMES`]
/// entry) only that backend is metered.
fn profile_backends(m: &MachineDescription, reg: &mut MetricRegistry, filter: Option<&str>) {
    let layout = WordLayout::widest(64, m.num_resources());
    // An II at least as long as the longest table keeps every operation
    // `fits()`-admissible in the modulo backends.
    let ii = m.max_table_length().max(1);
    let cycles = 256u32;
    let wants = |name: &str| filter.map_or(true, |f| f == name);

    if wants("discrete") {
        let mut q = MeteredQuery::new(DiscreteModule::new(m));
        metered_workload(&mut q, m, cycles);
        reg.merge(&q.export_registry("query.discrete"));
    }

    if wants("bitvec") {
        let mut q = MeteredQuery::new(BitvecModule::new(m, layout));
        metered_workload(&mut q, m, cycles);
        reg.merge(&q.export_registry("query.bitvec"));
    }

    if wants("compiled") {
        let mut q = MeteredQuery::new(CompiledModule::new(m, layout));
        metered_workload(&mut q, m, cycles);
        reg.merge(&q.export_registry("query.compiled"));
    }

    if wants("modulo_discrete") {
        let mut q = MeteredQuery::new(ModuloDiscreteModule::new(m, ii));
        metered_workload(&mut q, m, 2 * ii);
        reg.merge(&q.export_registry("query.modulo_discrete"));
    }

    if wants("modulo_bitvec") {
        let mut q = MeteredQuery::new(ModuloBitvecModule::new(m, ii, layout));
        metered_workload(&mut q, m, 2 * ii);
        reg.merge(&q.export_registry("query.modulo_bitvec"));
    }
}

/// Schedules `count` suite loops under tracing, merging scheduler work
/// counters, the II histogram, and modulo-mask-cache statistics into
/// `reg`.
fn profile_scheduler(m: &MachineDescription, count: usize, seed: u64, reg: &mut MetricRegistry) {
    let ops = rmd_loops::OpSet::for_cydra_subset(m);
    let loops = rmd_loops::suite(&ops, count, seed);
    let layout = WordLayout::widest(64, m.num_resources());
    let repr = Representation::Bitvec(layout);
    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    let mut cache = ModuloMaskCache::new(m, layout);
    for l in &loops {
        let lower = mii::mii(&l.graph, m);
        let r = ims
            .schedule_with_mii_cached(&l.graph, m, repr, lower, &mut cache)
            .unwrap_or_else(|e| panic!("{}: {e}", l.name));
        r.counters.export_to(reg, "sched.query");
        reg.inc("sched.loops", 1);
        reg.inc("sched.decisions", r.decisions);
        reg.inc("sched.reversed_by_resource", r.reversed_by_resource);
        reg.inc("sched.reversed_by_dependence", r.reversed_by_dependence);
        reg.inc("sched.attempts", u64::from(r.attempts));
        reg.observe("sched.ii", u64::from(r.ii));
    }
    cache.export_to(reg, "sched.mask_cache");
}

/// Runs every applicable workload on `machine` under tracing and
/// returns the collected [`Profile`].
///
/// Tracing is enabled for the duration of the call and restored to
/// disabled afterwards; stale events recorded by this thread beforehand
/// are discarded.
pub fn profile_machine(machine: &MachineDescription, opts: &ProfileOptions) -> Profile {
    rmd_obs::set_enabled(true);
    let _ = rmd_obs::drain_events();
    let mut registry = MetricRegistry::new();

    // 1. Reduction pipeline, through the verify + fallback gate so the
    //    `verify` phase (and any `fallback` instant) is on the trace.
    let red = reduce_with_fallback(machine, Objective::ResUses, &ReduceOptions::default());
    registry.inc("reduce.runs", 1);
    registry.inc("reduce.fallbacks", u64::from(red.used_fallback()));
    if let Some(r) = &red.reduction {
        registry.set_gauge("reduce.genset_size", r.genset_size as u64);
        registry.set_gauge("reduce.pruned_size", r.pruned_size as u64);
        registry.set_gauge("reduce.resources", r.reduced.num_resources() as u64);
        registry.set_gauge("reduce.usages", r.reduced.total_usages() as u64);
    }

    // 2. Per-backend latency + work-unit metering.
    profile_backends(machine, &mut registry, opts.backend);

    // 3. Scheduler (per-II attempt spans + merged counters).
    if opts.loops > 0 && suite_supported(machine) {
        profile_scheduler(machine, opts.loops, opts.seed, &mut registry);
    }

    let events = rmd_obs::drain_events();
    rmd_obs::set_enabled(false);
    let phases = aggregate_phases(&events);
    Profile {
        machine: machine.name().to_owned(),
        events,
        registry,
        phases,
    }
}

/// Extracts the per-function work-unit rows from a profile's registry:
/// every `<scope>.<fn>.calls` / `.units` counter pair, in registry
/// (deterministic BTreeMap) order.
pub fn work_rows(reg: &MetricRegistry) -> Vec<FnWorkRow> {
    let mut rows = Vec::new();
    for (name, calls) in reg.counters() {
        let Some(stem) = name.strip_suffix(".calls") else {
            continue;
        };
        let Some((scope, function)) = stem.rsplit_once('.') else {
            continue;
        };
        if !QueryFn::ALL.iter().any(|f| f.name() == function) {
            continue;
        }
        let units = reg.counter(&format!("{stem}.units"));
        rows.push(FnWorkRow {
            scope: scope.to_owned(),
            function: function.to_owned(),
            calls,
            units,
            avg_units: if calls == 0 {
                0.0
            } else {
                units as f64 / calls as f64
            },
        });
    }
    rows
}

/// Builds the serializable `--table6` record from a profile.
pub fn profile_record(p: &Profile) -> ProfileRecord {
    ProfileRecord {
        schema: PROFILE_SCHEMA.to_owned(),
        machine: p.machine.clone(),
        phases: p.phases.clone(),
        work: work_rows(&p.registry),
    }
}

/// Writes `record` as `PROFILE_<machine>.json` under `out_dir` and
/// returns the path.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be created
/// or the file cannot be written.
pub fn write_profile_record(
    record: &ProfileRecord,
    out_dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("PROFILE_{}.json", record.machine));
    let json = serde_json::to_string_pretty(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Renders the `--table6` work-unit table on its own (also part of the
/// full [`render_profile`] report).
pub fn render_work_table(p: &Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-function work units of `{}` (Table 6 accounting):",
        p.machine
    );
    let _ = writeln!(
        out,
        "  {:34} {:>12} {:>12} {:>10}",
        "scope.function", "calls", "units", "avg"
    );
    for row in work_rows(&p.registry) {
        let _ = writeln!(
            out,
            "  {:34} {:>12} {:>12} {:>10.2}",
            format!("{}.{}", row.scope, row.function),
            row.calls,
            row.units,
            row.avg_units
        );
    }
    out
}

/// Renders the human-readable profile report.
pub fn render_profile(p: &Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "profile of `{}`", p.machine);

    let _ = writeln!(out, "\nreduction phases:");
    for t in &p.phases {
        let _ = writeln!(
            out,
            "  {:16} {:>10.3} ms  ({} span{})",
            t.phase,
            t.wall_ns as f64 / 1e6,
            t.spans,
            if t.spans == 1 { "" } else { "s" }
        );
    }
    if p.registry.counter("reduce.fallbacks") > 0 {
        let _ = writeln!(out, "  (!) reduction fell back to the original tables");
    }

    let _ = writeln!(out, "\nquery latency (ns/call):");
    let _ = writeln!(
        out,
        "  {:34} {:>12} {:>8} {:>8} {:>8}",
        "scope.function", "calls", "p50", "p99", "max"
    );
    for (name, h) in p.registry.histograms() {
        let Some(stem) = name.strip_suffix(".latency_ns") else {
            continue;
        };
        if h.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:34} {:>12} {:>8} {:>8} {:>8}",
            stem,
            h.count(),
            h.approx_quantile(0.5),
            h.approx_quantile(0.99),
            h.max().unwrap_or(0)
        );
    }

    let _ = writeln!(out, "\nwork units per call (Table 6 accounting):");
    let _ = writeln!(
        out,
        "  {:34} {:>12} {:>12} {:>10}",
        "scope.function", "calls", "units", "avg"
    );
    for row in work_rows(&p.registry) {
        let _ = writeln!(
            out,
            "  {:34} {:>12} {:>12} {:>10.2}",
            format!("{}.{}", row.scope, row.function),
            row.calls,
            row.units,
            row.avg_units
        );
    }

    if p.registry.counter("sched.loops") > 0 {
        let _ = writeln!(out, "\nscheduler:");
        for key in [
            "sched.loops",
            "sched.attempts",
            "sched.decisions",
            "sched.reversed_by_resource",
            "sched.reversed_by_dependence",
            "sched.mask_cache.hits",
            "sched.mask_cache.misses",
        ] {
            let _ = writeln!(
                out,
                "  {:28} {:>12}",
                key.strip_prefix("sched.").unwrap_or(key),
                p.registry.counter(key)
            );
        }
        if let Some(h) = p.registry.histogram("sched.ii") {
            let _ = writeln!(
                out,
                "  {:28} min {} / p50 {} / max {}",
                "achieved II",
                h.min().unwrap_or(0),
                h.approx_quantile(0.5),
                h.max().unwrap_or(0)
            );
        }
    }

    let attempts = p
        .events
        .iter()
        .filter(|e| e.cat == "sched" && e.name == "attempt")
        .count();
    let _ = writeln!(
        out,
        "\n{} events recorded ({} scheduler attempt spans, {} dropped)",
        p.events.len(),
        attempts,
        rmd_obs::dropped_events()
    );
    out
}

/// Deterministic suite-wide metrics: schedules `loops` across up to
/// `threads` workers and folds every per-loop result into one registry.
///
/// Because per-loop results are deterministic, results come back in
/// suite order, and every registry operation is associative and
/// commutative, the returned registry is **identical for any thread
/// count** — the property the metrics determinism test pins.
pub fn suite_metrics(
    machine: &MachineDescription,
    mii_machine: &MachineDescription,
    loops: &[rmd_loops::Loop],
    repr: Representation,
    budget_ratio: f64,
    threads: usize,
) -> MetricRegistry {
    let runs = run_suite_runs_parallel(machine, mii_machine, loops, repr, budget_ratio, threads);
    let mut reg = MetricRegistry::new();
    for r in &runs {
        fold_run(&mut reg, r);
    }
    reg
}

/// Folds one per-loop result into a registry (additive, so folding in
/// any grouping yields the same totals).
fn fold_run(reg: &mut MetricRegistry, r: &LoopRun) {
    r.counters.export_to(reg, "sched.query");
    reg.inc("sched.loops", 1);
    reg.inc("sched.reversed_by_resource", r.reversed_by_resource);
    reg.inc("sched.reversed_by_dependence", r.reversed_by_dependence);
    reg.observe("sched.ii", u64::from(r.ii));
    reg.observe("sched.ops", r.ops as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::{cydra5_subset, example_machine};

    /// Serializes tests that toggle the global tracing flag.
    fn with_profile_lock<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        f()
    }

    #[test]
    fn profile_covers_every_reduction_phase() {
        let p = with_profile_lock(|| {
            profile_machine(&example_machine(), &ProfileOptions::default())
        });
        assert_eq!(p.phases.len(), REDUCTION_PHASES.len());
        for t in &p.phases {
            assert!(t.spans >= 1, "phase `{}` has no spans", t.phase);
        }
        assert_eq!(p.registry.counter("reduce.fallbacks"), 0);
    }

    #[test]
    fn profile_meters_all_five_backends() {
        let p = with_profile_lock(|| {
            profile_machine(&example_machine(), &ProfileOptions::default())
        });
        for backend in [
            "discrete",
            "bitvec",
            "compiled",
            "modulo_discrete",
            "modulo_bitvec",
        ] {
            let key = format!("query.{backend}.check.latency_ns");
            let h = p.registry.histogram(&key).unwrap_or_else(|| {
                panic!("missing latency histogram `{key}`")
            });
            assert!(h.count() > 0, "{key} is empty");
            assert!(p.registry.counter(&format!("query.{backend}.check.calls")) > 0);
        }
    }

    #[test]
    fn profile_meters_window_queries() {
        let p = with_profile_lock(|| {
            profile_machine(&example_machine(), &ProfileOptions::default())
        });
        for backend in ["discrete", "bitvec"] {
            let key = format!("query.{backend}.check_window.latency_ns");
            let h = p
                .registry
                .histogram(&key)
                .unwrap_or_else(|| panic!("missing latency histogram `{key}`"));
            assert!(h.count() > 0, "{key} is empty");
            assert!(p.registry.counter(&format!("query.{backend}.check_window.calls")) > 0);
        }
        // The window rows ride along in the Table-6-style report.
        assert!(work_rows(&p.registry)
            .iter()
            .any(|r| r.function == "check_window" && r.calls > 0));
    }

    #[test]
    fn backend_filter_meters_only_the_requested_backend() {
        let p = with_profile_lock(|| {
            profile_machine(
                &example_machine(),
                &ProfileOptions {
                    backend: Some("compiled"),
                    ..ProfileOptions::default()
                },
            )
        });
        assert!(p.registry.counter("query.compiled.check.calls") > 0);
        for other in ["discrete", "bitvec", "modulo_discrete", "modulo_bitvec"] {
            assert_eq!(
                p.registry.counter(&format!("query.{other}.check.calls")),
                0,
                "{other} should be filtered out"
            );
        }
    }

    #[test]
    fn profile_schedules_suite_loops_when_supported() {
        let p = with_profile_lock(|| {
            profile_machine(
                &cydra5_subset(),
                &ProfileOptions {
                    loops: 8,
                    seed: SUITE_SEED,
                    backend: None,
                },
            )
        });
        assert_eq!(p.registry.counter("sched.loops"), 8);
        assert!(p.registry.counter("sched.query.check.calls") > 0);
        assert!(
            p.events
                .iter()
                .any(|e| e.cat == "sched" && e.name == "attempt"),
            "no attempt spans recorded"
        );
        let text = render_profile(&p);
        assert!(text.contains("reduction phases:"), "{text}");
        assert!(text.contains("sched.query.check"), "{text}");
        assert!(text.contains("mask_cache"), "{text}");
    }

    #[test]
    fn work_rows_pair_calls_with_units() {
        let mut reg = MetricRegistry::new();
        let mut w = rmd_obs::WorkCounters::new();
        w.record(QueryFn::Check, 7);
        w.record(QueryFn::Check, 3);
        w.export_to(&mut reg, "query.discrete");
        let rows = work_rows(&reg);
        let check = rows
            .iter()
            .find(|r| r.scope == "query.discrete" && r.function == "check")
            .expect("check row");
        assert_eq!(check.calls, 2);
        assert_eq!(check.units, 10);
        assert!((check.avg_units - 5.0).abs() < 1e-12);
    }

    #[test]
    fn suite_metrics_identical_across_thread_counts() {
        let m = cydra5_subset();
        let ops = rmd_loops::OpSet::for_cydra_subset(&m);
        let loops = rmd_loops::suite(&ops, 24, SUITE_SEED);
        let repr = Representation::Bitvec(WordLayout::widest(64, m.num_resources()));
        let r1 = suite_metrics(&m, &m, &loops, repr, 6.0, 1);
        let r2 = suite_metrics(&m, &m, &loops, repr, 6.0, 2);
        let r8 = suite_metrics(&m, &m, &loops, repr, 6.0, 8);
        assert_eq!(r1, r2);
        assert_eq!(r1, r8);
        assert_eq!(r1.counter("sched.loops"), 24);
        assert!(r1.histogram("sched.ii").is_some());
    }

    #[test]
    fn profile_record_serializes_well_formed_json() {
        let p = with_profile_lock(|| {
            profile_machine(&example_machine(), &ProfileOptions::default())
        });
        let rec = profile_record(&p);
        assert_eq!(rec.schema, PROFILE_SCHEMA);
        let json = serde_json::to_string_pretty(&rec).unwrap();
        assert!(crate::benchcmd::json_is_well_formed(&json), "{json}");
        assert!(json.contains("\"phase\": \"genset\""), "{json}");
    }
}
