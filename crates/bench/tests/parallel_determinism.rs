//! The parallel suite runner must be a pure wall-clock optimization:
//! at 1, 2, 4, and 8 threads it yields byte-identical per-loop
//! results, aggregate statistics, and reduction reports as the serial
//! path — cost-sharded claiming and per-worker scratch reuse included.

use rmd_bench::{
    aggregate, reduction_report, reduction_reports_parallel, run_suite_runs,
    run_suite_runs_parallel,
};
use rmd_machine::models::{cydra5_subset, example_machine, mips_r3000};
use rmd_query::WordLayout;
use rmd_sched::Representation;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn suite_results_identical_across_thread_counts() {
    let m = cydra5_subset();
    let ops = rmd_loops::OpSet::for_cydra_subset(&m);
    let loops = rmd_loops::suite(&ops, 48, 0xC5);
    let budget_ratio = 6.0;

    for repr in [
        Representation::Discrete,
        Representation::Bitvec(WordLayout::widest(64, m.num_resources())),
    ] {
        let serial = run_suite_runs(&m, &m, &loops, repr, budget_ratio);
        let serial_stats =
            serde_json::to_string(&aggregate(&serial, budget_ratio)).expect("serialize");
        for threads in THREAD_COUNTS {
            let parallel = run_suite_runs_parallel(&m, &m, &loops, repr, budget_ratio, threads);
            assert_eq!(
                serial, parallel,
                "{repr:?} at {threads} threads diverged from serial"
            );
            // Byte-identical aggregate statistics, not just equal
            // structs: the JSON record is what trajectories compare.
            let parallel_stats =
                serde_json::to_string(&aggregate(&parallel, budget_ratio)).expect("serialize");
            assert_eq!(serial_stats, parallel_stats, "{repr:?} at {threads} threads");
        }
    }
}

#[test]
fn schedules_themselves_are_identical() {
    // Spot-check the strongest form of the claim: the issue-time vector
    // of every loop, not just summary statistics.
    let m = cydra5_subset();
    let ops = rmd_loops::OpSet::for_cydra_subset(&m);
    let loops = rmd_loops::suite(&ops, 16, 7);
    let repr = Representation::Bitvec(WordLayout::widest(64, m.num_resources()));
    let serial = run_suite_runs(&m, &m, &loops, repr, 6.0);
    let parallel = run_suite_runs_parallel(&m, &m, &loops, repr, 6.0, 8);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.times, p.times, "loop {i} ({})", loops[i].name);
        assert_eq!(s.ii, p.ii, "loop {i}");
        assert_eq!(s.counters, p.counters, "loop {i}");
    }
}

#[test]
fn reduction_reports_identical_across_thread_counts() {
    let machines = [example_machine(), mips_r3000(), cydra5_subset()];
    let refs: Vec<&rmd_machine::MachineDescription> = machines.iter().collect();
    let word_bits = [32u32, 64];
    let serial: Vec<String> = refs
        .iter()
        .map(|m| serde_json::to_string(&reduction_report(m, &word_bits)).expect("serialize"))
        .collect();
    for threads in THREAD_COUNTS {
        let parallel = reduction_reports_parallel(&refs, &word_bits, threads);
        let got: Vec<String> = parallel
            .iter()
            .map(|r| serde_json::to_string(r).expect("serialize"))
            .collect();
        assert_eq!(serial, got, "reduction sweep at {threads} threads");
    }
}
