//! Versioned, machine-checkable equivalence certificates.
//!
//! A certificate records everything a downstream tool needs to *trust a
//! reduction without re-running it*: the content fingerprint binding it
//! to one exact machine description, the forbidden-matrix fingerprint of
//! the semantics both sides share, and per-objective proof statistics
//! (reachable product-state counts, the II bound of the modulo pass,
//! the status of the budget-gated global pass, and how many sample
//! schedules the RMD-S re-validation checked). Rendering is fully
//! deterministic — fixed key order, no timestamps — so golden
//! `certs/*.json` files can be compared byte-for-byte in CI.

use serde_json::Value;
use std::fmt::Write as _;

/// The certificate schema identifier this crate emits and accepts.
pub const CERT_SCHEMA: &str = "rmd-cert/1";

/// Proof statistics for one reduction objective of one machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectiveCert {
    /// Objective label (`res-uses` or `word-<k>`).
    pub objective: String,
    /// Content fingerprint of the reduced description.
    pub reduced_fingerprint: String,
    /// Resources in the reduced description.
    pub reduced_resources: usize,
    /// Total usages in the reduced description.
    pub reduced_usages: usize,
    /// Unordered operation pairs certified by the linear product pass.
    pub pairs: u64,
    /// Total reachable pair-product states across all pairs.
    pub pair_product_states: u64,
    /// Largest single pair's reachable product-state count.
    pub max_pair_states: u64,
    /// Largest initiation interval checked by the modulo pass.
    pub modulo_max_ii: u32,
    /// Folded modulo comparisons performed.
    pub modulo_comparisons: u64,
    /// Whether the global commitment-product pass ran to completion.
    pub global_completed: bool,
    /// Product states the global pass explored.
    pub global_states: u64,
    /// Sample schedules re-validated against the original description
    /// by the RMD-S certifier.
    pub schedules_checked: u64,
}

/// A complete equivalence certificate for one machine description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Machine name (built-in model name or file stem).
    pub machine: String,
    /// Content fingerprint of the original description (`rmd-` + hex),
    /// identical to the key `rmd serve` caches under.
    pub fingerprint: String,
    /// Forbidden-matrix fingerprint (16 hex digits) — the semantics
    /// every certified reduction preserves.
    pub matrix_fingerprint: String,
    /// Operation count of the description.
    pub operations: usize,
    /// Resource count of the description.
    pub resources: usize,
    /// One entry per certified reduction objective.
    pub objectives: Vec<ObjectiveCert>,
}

impl Certificate {
    /// Render the certificate as deterministic, pretty-printed JSON
    /// (fixed key order, two-space indent, trailing newline).
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{CERT_SCHEMA}\",");
        let _ = writeln!(s, "  \"status\": \"equivalent\",");
        let _ = writeln!(s, "  \"machine\": \"{}\",", escape(&self.machine));
        let _ = writeln!(s, "  \"fingerprint\": \"{}\",", escape(&self.fingerprint));
        let _ = writeln!(
            s,
            "  \"matrix_fingerprint\": \"{}\",",
            escape(&self.matrix_fingerprint)
        );
        let _ = writeln!(s, "  \"operations\": {},", self.operations);
        let _ = writeln!(s, "  \"resources\": {},", self.resources);
        s.push_str("  \"objectives\": [\n");
        for (i, o) in self.objectives.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"objective\": \"{}\",", escape(&o.objective));
            let _ = writeln!(
                s,
                "      \"reduced_fingerprint\": \"{}\",",
                escape(&o.reduced_fingerprint)
            );
            let _ = writeln!(s, "      \"reduced_resources\": {},", o.reduced_resources);
            let _ = writeln!(s, "      \"reduced_usages\": {},", o.reduced_usages);
            let _ = writeln!(s, "      \"pairs\": {},", o.pairs);
            let _ = writeln!(
                s,
                "      \"pair_product_states\": {},",
                o.pair_product_states
            );
            let _ = writeln!(s, "      \"max_pair_states\": {},", o.max_pair_states);
            let _ = writeln!(s, "      \"modulo_max_ii\": {},", o.modulo_max_ii);
            let _ = writeln!(s, "      \"modulo_comparisons\": {},", o.modulo_comparisons);
            let _ = writeln!(s, "      \"global_completed\": {},", o.global_completed);
            let _ = writeln!(s, "      \"global_states\": {},", o.global_states);
            let _ = writeln!(s, "      \"schedules_checked\": {}", o.schedules_checked);
            s.push_str(if i + 1 == self.objectives.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a certificate back from JSON, validating the schema and
    /// status fields. Returns `None` for anything that is not a valid
    /// `rmd-cert/1` document with `status: "equivalent"`.
    pub fn parse(src: &str) -> Option<Certificate> {
        let v = serde_json::from_str(src).ok()?;
        if v.get("schema")?.as_str()? != CERT_SCHEMA {
            return None;
        }
        if v.get("status")?.as_str()? != "equivalent" {
            return None;
        }
        let objectives = v
            .get("objectives")?
            .as_array()?
            .iter()
            .map(parse_objective)
            .collect::<Option<Vec<_>>>()?;
        Some(Certificate {
            machine: v.get("machine")?.as_str()?.to_string(),
            fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
            matrix_fingerprint: v.get("matrix_fingerprint")?.as_str()?.to_string(),
            operations: v.get("operations")?.as_u64()? as usize,
            resources: v.get("resources")?.as_u64()? as usize,
            objectives,
        })
    }

    /// Whether `src` is a valid certificate vouching for the machine
    /// with content fingerprint `fingerprint` — the check `rmd serve`
    /// performs before admitting a machine.
    pub fn vouches_for(src: &str, fingerprint: &str) -> bool {
        Certificate::parse(src).is_some_and(|c| c.fingerprint == fingerprint)
    }
}

fn parse_objective(v: &Value) -> Option<ObjectiveCert> {
    Some(ObjectiveCert {
        objective: v.get("objective")?.as_str()?.to_string(),
        reduced_fingerprint: v.get("reduced_fingerprint")?.as_str()?.to_string(),
        reduced_resources: v.get("reduced_resources")?.as_u64()? as usize,
        reduced_usages: v.get("reduced_usages")?.as_u64()? as usize,
        pairs: v.get("pairs")?.as_u64()?,
        pair_product_states: v.get("pair_product_states")?.as_u64()?,
        max_pair_states: v.get("max_pair_states")?.as_u64()?,
        modulo_max_ii: v.get("modulo_max_ii")?.as_u64()? as u32,
        modulo_comparisons: v.get("modulo_comparisons")?.as_u64()?,
        global_completed: v.get("global_completed")?.as_bool()?,
        global_states: v.get("global_states")?.as_u64()?,
        schedules_checked: v.get("schedules_checked")?.as_u64()?,
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            machine: "fig1".into(),
            fingerprint: "rmd-0123456789abcdef".into(),
            matrix_fingerprint: "fedcba9876543210".into(),
            operations: 4,
            resources: 7,
            objectives: vec![ObjectiveCert {
                objective: "res-uses".into(),
                reduced_fingerprint: "rmd-1111111111111111".into(),
                reduced_resources: 3,
                reduced_usages: 5,
                pairs: 10,
                pair_product_states: 321,
                max_pair_states: 64,
                modulo_max_ii: 5,
                modulo_comparisons: 1234,
                global_completed: true,
                global_states: 116,
                schedules_checked: 3,
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let c = sample();
        let json = c.render_json();
        assert_eq!(Certificate::parse(&json), Some(c.clone()));
        // Deterministic rendering: same value, same bytes.
        assert_eq!(json, sample().render_json());
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn vouches_only_for_matching_fingerprint() {
        let json = sample().render_json();
        assert!(Certificate::vouches_for(&json, "rmd-0123456789abcdef"));
        assert!(!Certificate::vouches_for(&json, "rmd-ffffffffffffffff"));
        assert!(!Certificate::vouches_for("not json", "rmd-0123456789abcdef"));
        let wrong_schema = json.replace("rmd-cert/1", "rmd-cert/9");
        assert!(!Certificate::vouches_for(
            &wrong_schema,
            "rmd-0123456789abcdef"
        ));
    }
}
