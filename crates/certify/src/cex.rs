//! Counterexamples: concrete witnesses that two descriptions disagree.
//!
//! A counterexample is a *schedule prefix* — a sequence of placements
//! that both descriptions accept — plus one final probe on which they
//! disagree. It is deliberately shaped so it can be replayed through any
//! [`ContentionQuery`](rmd_query::ContentionQuery) backend: the rmd-fault
//! differential oracle consumes the [`to_trace`](Counterexample::to_trace)
//! rendering to independently confirm every mismatch the prover reports.

use rmd_machine::{MachineDescription, OpId};
use rmd_query::{OpInstance, QueryEvent, QueryTrace};
use std::fmt::Write as _;

/// Which transition system the mismatch was found in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CexKind {
    /// Linear (acyclic) schedule: placements at absolute cycles.
    Linear,
    /// Modulo schedule at a fixed initiation interval: placements at
    /// slots within one kernel iteration.
    Modulo {
        /// The initiation interval at which the descriptions disagree.
        ii: u32,
    },
}

/// A concrete scheduling scenario on which the two descriptions give
/// different answers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// Linear or modulo, and at which II.
    pub kind: CexKind,
    /// Placements both sides accepted, as `(op, cycle)` pairs in the
    /// order they were issued.
    pub places: Vec<(OpId, u32)>,
    /// The probe `(op, cycle)` on which the sides disagree.
    pub probe: (OpId, u32),
    /// What the left (original) description answers for the probe.
    pub left_admits: bool,
    /// What the right (reduced / suspect) description answers.
    pub right_admits: bool,
}

impl Counterexample {
    /// Render the scenario with operation names resolved against
    /// `machine` (both sides share the operation set, so either works).
    pub fn render(&self, machine: &MachineDescription) -> String {
        let name = |op: OpId| {
            machine
                .operations()
                .get(op.index())
                .map(|o| o.name().to_string())
                .unwrap_or_else(|| format!("{op}"))
        };
        let mut s = String::new();
        match self.kind {
            CexKind::Linear => s.push_str("counterexample (linear schedule):\n"),
            CexKind::Modulo { ii } => {
                let _ = writeln!(s, "counterexample (modulo schedule, II={ii}):");
            }
        }
        if self.places.is_empty() {
            s.push_str("  with an empty pipeline,\n");
        } else {
            for &(op, cycle) in &self.places {
                let _ = writeln!(s, "  place {} at cycle {cycle}", name(op));
            }
        }
        let (op, cycle) = self.probe;
        let _ = writeln!(
            s,
            "  probe {} at cycle {cycle}: original answers {}, reduced answers {}",
            name(op),
            self.left_admits,
            self.right_admits
        );
        s
    }

    /// The scenario as a replayable [`QueryTrace`]: one `check` +
    /// `assign` per placement, then the final divergent `check`. Because
    /// both sides accepted every placement, replaying the trace on any
    /// backend of either description is protocol-clean, and the last
    /// event's answer is where a differential replay diverges.
    pub fn to_trace(&self, machine_name: &str) -> QueryTrace {
        let mut t = match self.kind {
            CexKind::Linear => QueryTrace::new(machine_name),
            CexKind::Modulo { ii } => QueryTrace::modulo(machine_name, ii),
        };
        for (i, &(op, cycle)) in self.places.iter().enumerate() {
            t.push(QueryEvent::Check { op, cycle });
            t.push(QueryEvent::Assign {
                inst: OpInstance(i as u32),
                op,
                cycle,
            });
        }
        let (op, cycle) = self.probe;
        t.push(QueryEvent::Check { op, cycle });
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models;
    use rmd_query::{DiscreteModule, Response};

    #[test]
    fn trace_replays_placements_then_probe() {
        let m = models::example_machine();
        let a = m.op_by_name("A").expect("fig1 has A");
        let cex = Counterexample {
            kind: CexKind::Linear,
            places: vec![(a, 0)],
            probe: (a, 1),
            left_admits: false,
            right_admits: true,
        };
        let trace = cex.to_trace(m.name());
        assert_eq!(trace.len(), 3);
        let mut q = DiscreteModule::new(&m);
        let answers = trace.replay(&mut q);
        assert_eq!(answers[0].response, Response::Admitted(true));
        let text = cex.render(&m);
        assert!(text.contains("place A at cycle 0"), "{text}");
        assert!(text.contains("probe A at cycle 1"), "{text}");
    }
}
