//! Pairwise conflict vectors derived directly from reservation tables.
//!
//! For two operations `o` and `z`, bit `a` of the conflict vector
//! `cv[o][z]` is set iff issuing `z` exactly `a` cycles *after* `o`
//! makes some resource double-booked — i.e. the two reservation tables,
//! offset by `a`, share a `(resource, cycle)` cell. These vectors are the
//! whole observable content of a description: a set of placements is
//! legal iff every pair of placed instances is pairwise conflict-free
//! (resource conflicts decompose over pairs), so two descriptions whose
//! conflict vectors agree admit exactly the same schedules.
//!
//! Crucially the vectors are computed from the *tables*, not from the
//! forbidden-latency matrix — the certifier must not assume the artifact
//! it is trying to prove things about.

use crate::CertifyError;
use rmd_machine::MachineDescription;

/// Offsets are stored as bits of a `u128`, so the longest reservation
/// table a certifiable machine may have is 127 cycles (offset 0..=127).
/// Every shipped model is far below this (Cydra 5: 40 cycles).
pub const MAX_SPAN: u32 = 127;

/// The full `n × n` matrix of pairwise conflict vectors of one machine.
pub struct ConflictVectors {
    n: usize,
    span: u32,
    v: Vec<u128>,
}

impl ConflictVectors {
    /// Compute every pairwise conflict vector of `machine` from its
    /// reservation tables.
    ///
    /// Fails with [`CertifyError::TableTooLong`] when any table spans
    /// more than [`MAX_SPAN`] cycles.
    pub fn compute(machine: &MachineDescription) -> Result<Self, CertifyError> {
        let span = machine.max_table_length();
        if span > MAX_SPAN {
            return Err(CertifyError::TableTooLong {
                machine: machine.name().to_string(),
                span,
                max: MAX_SPAN,
            });
        }
        let ops = machine.operations();
        let n = ops.len();
        let mut v = vec![0u128; n * n];
        for (i, o) in ops.iter().enumerate() {
            for (j, z) in ops.iter().enumerate() {
                let mut bits = 0u128;
                for uo in o.table().usages() {
                    for uz in z.table().usages() {
                        if uo.resource == uz.resource && uo.cycle >= uz.cycle {
                            bits |= 1u128 << (uo.cycle - uz.cycle);
                        }
                    }
                }
                v[i * n + j] = bits;
            }
        }
        Ok(ConflictVectors { n, span, v })
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.n
    }

    /// Maximum reservation-table length (one past the last reserved
    /// cycle), i.e. one past the largest possible conflict offset.
    pub fn span(&self) -> u32 {
        self.span
    }

    /// The conflict vector for issuing `z` after `o`: bit `a` set iff
    /// `z` issued `a` cycles after `o` conflicts.
    pub fn get(&self, o: usize, z: usize) -> u128 {
        self.v[o * self.n + z]
    }

    /// Whether `op` can initiate every `ii` cycles forever: true iff no
    /// positive self-conflict offset is a multiple of `ii`.
    pub fn fits(&self, op: usize, ii: u32) -> bool {
        let mut a = self.get(op, op) >> 1; // drop offset 0 (the instance itself)
        let mut off = 1u32;
        while a != 0 {
            if a & 1 != 0 && off % ii == 0 {
                return false;
            }
            a >>= 1;
            off += 1;
        }
        true
    }

    /// Whether placing `z` at signed offset `d (mod ii)` after `o`
    /// conflicts in a modulo schedule of initiation interval `ii`: some
    /// conflict offset `a` (of either order) satisfies `a ≡ d (mod ii)`.
    pub fn conflicts_mod(&self, o: usize, z: usize, d: u32, ii: u32) -> bool {
        debug_assert!(d < ii);
        let mut fwd = self.get(o, z);
        let mut a = 0u32;
        while fwd != 0 {
            if fwd & 1 != 0 && a % ii == d {
                return true;
            }
            fwd >>= 1;
            a += 1;
        }
        // Negative offsets: z placed d after o equals o placed (ii - d)
        // mod ii after z, covered by the reversed vector's positive bits.
        let mut rev = self.get(z, o) >> 1;
        let mut b = 1u32;
        while rev != 0 {
            if rev & 1 != 0 && b % ii == (ii - d) % ii {
                return true;
            }
            rev >>= 1;
            b += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_latency::ForbiddenMatrix;
    use rmd_machine::models;

    /// `cv[o][z]` bit `a` (issuing `z` exactly `a` cycles after `o`
    /// collides) must agree with the forbidden-latency matrix, whose
    /// convention is `F[X][Y] = { j | X may not issue j cycles after Y }`
    /// — i.e. bit `a` of `cv[o][z]` equals `forbids(z, a, o)`.
    #[test]
    fn vectors_agree_with_forbidden_matrix() {
        for m in [
            models::example_machine(),
            models::mips_r3000(),
            models::cydra5_subset(),
        ] {
            let f = ForbiddenMatrix::compute(&m);
            let cv = ConflictVectors::compute(&m).expect("span fits");
            for o in 0..cv.num_ops() {
                for z in 0..cv.num_ops() {
                    for a in 0..=cv.span() {
                        let bit = cv.get(o, z) & (1u128 << a) != 0;
                        assert_eq!(
                            bit,
                            f.forbids(
                                rmd_machine::OpId(z as u32),
                                a as i32,
                                rmd_machine::OpId(o as u32)
                            ),
                            "machine {} o={o} z={z} a={a}",
                            m.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fits_matches_folded_self_conflicts() {
        let m = models::cydra5_subset();
        let cv = ConflictVectors::compute(&m).expect("span fits");
        for op in 0..cv.num_ops() {
            // ii = span+1 always fits: no offset can be a positive multiple.
            assert!(cv.fits(op, cv.span() + 1));
            // ii = 1 fits only for ops with no positive self-conflict.
            let self_free = cv.get(op, op) >> 1 == 0;
            assert_eq!(cv.fits(op, 1), self_free, "op {op}");
        }
    }

    #[test]
    fn conflicts_mod_covers_negative_offsets() {
        let m = models::example_machine();
        let cv = ConflictVectors::compute(&m).expect("span fits");
        // For every ordered pair and ii, conflicts_mod(o, z, d) must equal
        // conflicts_mod(z, o, (ii - d) % ii): the relation is symmetric
        // under swapping the pair and negating the offset.
        for ii in 1..=cv.span() + 1 {
            for o in 0..cv.num_ops() {
                for z in 0..cv.num_ops() {
                    for d in 0..ii {
                        assert_eq!(
                            cv.conflicts_mod(o, z, d, ii),
                            cv.conflicts_mod(z, o, (ii - d) % ii, ii),
                            "ii={ii} o={o} z={z} d={d}"
                        );
                    }
                }
            }
        }
    }
}
