//! Whole-machine product reachability over commitment states.
//!
//! The pairwise conflict-mask pass is the complete proof (resource
//! conflicts decompose over pairs of placed instances); this pass is the
//! belt to those braces: a product BFS over the *unquotiented*
//! resource-commitment spaces of both machines ([`StateSpace`]), checking
//! that every operation is admitted identically at every reachable
//! product state. Commitment spaces grow multiplicatively with issue
//! width — the Cydra 5 exceeds 5 million states even reduced — so the
//! pass runs under a product-state budget and records itself as skipped
//! when the budget is hit. A skipped global pass does not weaken the
//! certificate: it is strictly redundant with the pairwise proof.

use crate::cex::{CexKind, Counterexample};
use crate::product::IdBitset;
use crate::CertifyFailure;
use rmd_automata::StateSpace;
use rmd_machine::{MachineDescription, OpId};
use std::collections::HashMap;

/// Outcome of the global commitment-product pass.
#[derive(Clone, Copy, Debug)]
pub struct GlobalStats {
    /// Whether the pass ran to completion (`false`: budget exhausted,
    /// pass recorded as skipped).
    pub completed: bool,
    /// Product states explored (reachable count when `completed`).
    pub product_states: u64,
    /// The budget the pass ran under.
    pub budget: u64,
}

/// How a product state was reached.
#[derive(Clone, Copy)]
enum Step {
    Root,
    Advance,
    Issue(u32),
}

/// BFS the product of the two commitment spaces up to `budget` states.
pub(crate) fn certify_global(
    left: &MachineDescription,
    right: &MachineDescription,
    budget: u64,
) -> Result<GlobalStats, CertifyFailure> {
    let a = StateSpace::new(left);
    let b = StateSpace::new(right);
    let n = a.num_ops().min(b.num_ops());

    let key = |sa: &rmd_automata::SpaceState, sb: &rmd_automata::SpaceState| {
        let mut k = Vec::with_capacity(sa.words().len() + sb.words().len());
        k.extend_from_slice(sa.words());
        k.extend_from_slice(sb.words());
        k
    };

    let mut ids: HashMap<Vec<u64>, u32> = HashMap::new();
    let mut states = vec![(a.start(), b.start())];
    let mut parents = vec![(0u32, Step::Root)];
    ids.insert(key(&a.start(), &b.start()), 0);

    let mut frontier = IdBitset::new();
    frontier.insert(0);
    while !frontier.is_empty() {
        for id in frontier.drain() {
            let (sa, sb) = states[id as usize].clone();
            for op in 0..n {
                let op = OpId(op as u32);
                let ca = a.can_issue(&sa, op);
                let cb = b.can_issue(&sb, op);
                if ca != cb {
                    return Err(CertifyFailure::Mismatch(Box::new(build_cex(
                        &parents, id, op, ca, cb,
                    ))));
                }
            }
            let mut push = |na: rmd_automata::SpaceState,
                            nb: rmd_automata::SpaceState,
                            step: Step,
                            frontier: &mut IdBitset| {
                let next = ids.len() as u32;
                let id2 = *ids.entry(key(&na, &nb)).or_insert(next);
                if id2 == next {
                    states.push((na, nb));
                    parents.push((id, step));
                    frontier.insert(id2);
                }
            };
            push(a.advance(&sa), b.advance(&sb), Step::Advance, &mut frontier);
            for op in 0..n {
                let op_id = OpId(op as u32);
                if let Some(na) = a.issue(&sa, op_id) {
                    // Bisimulation above guarantees the right side agrees.
                    if let Some(nb) = b.issue(&sb, op_id) {
                        push(na, nb, Step::Issue(op as u32), &mut frontier);
                    }
                }
            }
            if states.len() as u64 > budget {
                return Ok(GlobalStats {
                    completed: false,
                    product_states: states.len() as u64,
                    budget,
                });
            }
        }
    }
    Ok(GlobalStats {
        completed: true,
        product_states: states.len() as u64,
        budget,
    })
}

fn build_cex(
    parents: &[(u32, Step)],
    id: u32,
    probe: OpId,
    left: bool,
    right: bool,
) -> Counterexample {
    let mut path = Vec::new();
    let mut cur = id;
    loop {
        let (parent, step) = parents[cur as usize];
        if matches!(step, Step::Root) {
            break;
        }
        path.push(step);
        cur = parent;
    }
    path.reverse();
    let mut cycle = 0u32;
    let mut places = Vec::new();
    for step in path {
        match step {
            Step::Root => unreachable!("root is never recorded as a step"),
            Step::Advance => cycle += 1,
            Step::Issue(op) => places.push((OpId(op), cycle)),
        }
    }
    Counterexample {
        kind: CexKind::Linear,
        places,
        probe: (probe, cycle),
        left_admits: left,
        right_admits: right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models;

    #[test]
    fn fig1_product_with_itself_completes() {
        let m = models::example_machine();
        let stats = certify_global(&m, &m, 1 << 20).expect("reflexive");
        assert!(stats.completed);
        // The diagonal product of a space with itself has exactly the
        // space's own reachable count (measured elsewhere: 116).
        assert_eq!(stats.product_states, 116);
    }

    #[test]
    fn budget_exhaustion_is_a_skip_not_an_error() {
        let m = models::mips_r3000();
        let stats = certify_global(&m, &m, 100).expect("no mismatch before budget");
        assert!(!stats.completed);
        assert!(stats.product_states > 100);
    }
}
