//! Static equivalence prover for reduced machine descriptions.
//!
//! The paper's reduction promises that the reduced description *preserves
//! all scheduling constraints*. The rest of the workspace checks that
//! promise dynamically — trace conformance, mutation oracles — while this
//! crate proves it statically, by exhaustive reachability over finite
//! transition systems, and emits a machine-checkable [`Certificate`] that
//! downstream tools (`rmd serve`) require before trusting a reduction.
//!
//! # The proof
//!
//! Resource contention decomposes over pairs: a set of placements is
//! legal iff every pair of placed instances is pairwise conflict-free,
//! because tables collide iff *some* two cells collide. Equivalence of
//! the full systems therefore reduces to equivalence of all pairwise
//! behaviors, which the prover checks exhaustively:
//!
//! 1. **Linear pass** ([`ConflictVectors`] + pair product BFS): for every
//!    unordered operation pair, BFS the product of both machines'
//!    conflict-mask transition systems — the observational quotient of
//!    the commitment automaton, where a state is "which future cycles
//!    each candidate is blocked at" — and check contention bisimulation
//!    at every reachable state. Every conflict offset `0..=span` is
//!    reached (place, advance, probe), and offsets beyond both spans are
//!    trivially conflict-free, so success proves the machines admit the
//!    same placements in *every* linear scheduling state. Paths are
//!    bounded at [`CertifyOptions::issue_cap`] placements, which loses
//!    nothing: a mask is an OR of per-placement conflict vectors, so any
//!    divergent bit is already witnessed by the single placement that
//!    contributes it.
//! 2. **Modulo pass** (cycle-normalized states): at every initiation
//!    interval `II ≤ span`, fold the conflict vectors mod II (both
//!    orders, covering negative offsets) and compare per-op feasibility
//!    and the per-pair slot-offset conflict relation. For `II > span`
//!    each residue holds at most one representable offset, so the folded
//!    relation is a relabeling of the linear one — the bound is complete.
//! 3. **Schedule pass**: schedule deterministic sample graphs with IMS on
//!    the reduced description and re-validate each result against the
//!    original via the RMD-S certifier lints in `rmd-analyze`.
//! 4. **Global pass** (budget-gated belt): a product BFS over the raw
//!    commitment spaces of both machines via `rmd-automata`'s
//!    [`StateSpace`](rmd_automata::StateSpace), strictly redundant with
//!    pass 1 but run where the budget allows as a cross-validation.
//!
//! Any disagreement surfaces as a [`Counterexample`] — a concrete
//! placement sequence plus the divergent probe — that converts to a
//! [`QueryTrace`](rmd_query::QueryTrace) and drops straight into the
//! rmd-fault differential oracle for independent confirmation.
//!
//! # Example
//!
//! ```
//! use rmd_certify::{certify_machine, CertifyOptions};
//! use rmd_machine::models;
//!
//! let cert = certify_machine(&models::example_machine(), "fig1", &CertifyOptions::default())
//!     .expect("the shipped reduction is equivalent");
//! assert_eq!(cert.machine, "fig1");
//! assert_eq!(cert.objectives.len(), 2);
//! assert!(cert.render_json().contains("\"status\": \"equivalent\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cert;
mod cex;
mod conflict;
mod global;
mod modulo;
mod product;
mod schedule_check;

pub use cert::{Certificate, ObjectiveCert, CERT_SCHEMA};
pub use cex::{CexKind, Counterexample};
pub use conflict::{ConflictVectors, MAX_SPAN};
pub use global::GlobalStats;
pub use modulo::ModuloStats;

use core::fmt;
use rmd_core::{fingerprints, Objective, ReduceOptions};
use rmd_latency::ForbiddenMatrix;
use rmd_machine::{content_fingerprint, MachineDescription};
use rmd_query::WordLayout;

/// Why certification could not be *attempted* (as opposed to a proof
/// failure, which is a [`CertifyFailure::Mismatch`]).
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CertifyError {
    /// A reservation table is too long for the conflict-mask encoding.
    TableTooLong {
        /// The offending machine.
        machine: String,
        /// Its maximum table length.
        span: u32,
        /// The supported maximum.
        max: u32,
    },
    /// A pair product exceeded the per-pair state budget — pathological
    /// input rather than a disproof.
    StateBudget {
        /// The operation pair being explored.
        pair: (usize, usize),
        /// The exhausted budget.
        budget: u64,
    },
    /// The two descriptions do not even have the same operation set.
    OpCountMismatch {
        /// Left (original) operation count.
        left: usize,
        /// Right (reduced) operation count.
        right: usize,
    },
    /// The reduction pipeline itself failed on the input.
    Reduce(
        /// The reduction error, rendered.
        String,
    ),
    /// The RMD-S schedule re-validation found findings.
    Schedule {
        /// The rendered RMD-S report.
        report: String,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::TableTooLong { machine, span, max } => write!(
                f,
                "machine `{machine}` has a reservation table spanning {span} cycles; \
                 the certifier supports at most {max}"
            ),
            CertifyError::StateBudget { pair, budget } => write!(
                f,
                "pair (op{}, op{}) exceeded the product-state budget of {budget}",
                pair.0, pair.1
            ),
            CertifyError::OpCountMismatch { left, right } => write!(
                f,
                "operation sets differ: {left} operations vs {right}"
            ),
            CertifyError::Reduce(e) => write!(f, "reduction failed: {e}"),
            CertifyError::Schedule { report } => {
                write!(f, "schedule re-validation found findings:\n{report}")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// The result of a failed certification attempt.
#[derive(Debug)]
pub enum CertifyFailure {
    /// The descriptions are *not* equivalent; here is a concrete witness.
    Mismatch(Box<Counterexample>),
    /// Certification could not be completed.
    Error(CertifyError),
}

impl fmt::Display for CertifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyFailure::Mismatch(cex) => write!(
                f,
                "descriptions disagree: probe {} at cycle {} after {} placement(s)",
                cex.probe.0,
                cex.probe.1,
                cex.places.len()
            ),
            CertifyFailure::Error(e) => e.fmt(f),
        }
    }
}

/// Tunables for a certification run.
#[derive(Clone, Copy, Debug)]
pub struct CertifyOptions {
    /// Largest II the modulo pass checks explicitly; `None` uses the
    /// complete bound (the larger machine span).
    pub max_ii: Option<u32>,
    /// Product-state budget for the global commitment-product pass;
    /// exceeding it records the pass as skipped, not failed.
    pub global_budget: u64,
    /// Hard per-pair state cap for the linear pass (pathology guard).
    pub pair_state_cap: u64,
    /// Placements explored per linear-pass path. One placement already
    /// witnesses any mismatch (a candidate's mask is an OR of
    /// per-placement vectors, so a divergent bit projects to a single
    /// placement); the default of 2 adds one layer of redundancy.
    pub issue_cap: u8,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            max_ii: None,
            global_budget: 1_500_000,
            pair_state_cap: 1 << 22,
            issue_cap: 2,
        }
    }
}

/// Proof statistics from one successful [`certify_pair`] run.
#[derive(Clone, Copy, Debug)]
pub struct EquivalenceStats {
    /// Unordered operation pairs explored by the linear pass.
    pub pairs: u64,
    /// Total reachable pair-product states across all pairs.
    pub pair_product_states: u64,
    /// Largest single pair's reachable state count.
    pub max_pair_states: u64,
    /// Modulo-pass statistics.
    pub modulo: ModuloStats,
    /// Global-pass statistics (may record a budget skip).
    pub global: GlobalStats,
    /// Sample schedules re-validated by the RMD-S pass.
    pub schedules_checked: u64,
}

/// Statically prove that `left` (the original description) and `right`
/// (the reduced or otherwise suspect description) are query-equivalent.
///
/// # Errors
///
/// [`CertifyFailure::Mismatch`] with a replayable counterexample when
/// the descriptions disagree; [`CertifyFailure::Error`] when the proof
/// cannot be attempted or a schedule re-validation fails.
pub fn certify_pair(
    left: &MachineDescription,
    right: &MachineDescription,
    options: &CertifyOptions,
) -> Result<EquivalenceStats, CertifyFailure> {
    if left.num_operations() != right.num_operations() {
        return Err(CertifyFailure::Error(CertifyError::OpCountMismatch {
            left: left.num_operations(),
            right: right.num_operations(),
        }));
    }
    let a = ConflictVectors::compute(left).map_err(CertifyFailure::Error)?;
    let b = ConflictVectors::compute(right).map_err(CertifyFailure::Error)?;

    // Pass 1: pairwise linear product reachability + bisimulation.
    let n = a.num_ops();
    let mut pairs = 0u64;
    let mut total_states = 0u64;
    let mut max_states = 0u64;
    for x in 0..n {
        for y in x..n {
            let states = product::certify_pair_linear(
                &a,
                &b,
                x,
                y,
                options.issue_cap.max(1),
                options.pair_state_cap,
            )?;
            pairs += 1;
            total_states += states;
            max_states = max_states.max(states);
        }
    }

    // Pass 2: cycle-normalized modulo states at every II up to the bound.
    let span = a.span().max(b.span()).max(1);
    let max_ii = options.max_ii.unwrap_or(span).max(1);
    let modulo = modulo::certify_modulo(&a, &b, max_ii)?;

    // Pass 3: IMS on the reduced description, re-validated on the
    // original by the RMD-S certifier.
    let schedules_checked = schedule_check::check_schedules(left, right)?;

    // Pass 4: global commitment-product belt, under budget.
    let global = global::certify_global(left, right, options.global_budget)?;

    Ok(EquivalenceStats {
        pairs,
        pair_product_states: total_states,
        max_pair_states: max_states,
        modulo,
        global,
        schedules_checked,
    })
}

/// The objectives a certificate covers: the discrete-representation
/// objective and the k-cycle-word objective `rmd serve` schedules with.
pub fn certificate_objectives(machine: &MachineDescription) -> Vec<(String, Objective)> {
    let k = WordLayout::widest(64, machine.num_resources()).k;
    vec![
        ("res-uses".to_string(), Objective::ResUses),
        (format!("word-{k}"), Objective::KCycleWord { k }),
    ]
}

/// Reduce `machine` under every certificate objective, prove each
/// reduction equivalent, and assemble the [`Certificate`].
///
/// # Errors
///
/// Any pass failure on any objective, as in [`certify_pair`]; reduction
/// failures surface as [`CertifyError::Reduce`].
pub fn certify_machine(
    machine: &MachineDescription,
    name: &str,
    options: &CertifyOptions,
) -> Result<Certificate, CertifyFailure> {
    let matrix = ForbiddenMatrix::compute(machine);
    let mut objectives = Vec::new();
    for (label, objective) in certificate_objectives(machine) {
        let red = rmd_core::try_reduce(machine, objective, &ReduceOptions::default())
            .map_err(|e| CertifyFailure::Error(CertifyError::Reduce(e.to_string())))?;
        let stats = certify_pair(machine, &red.reduced, options)?;
        objectives.push(ObjectiveCert {
            objective: label,
            reduced_fingerprint: content_fingerprint(&red.reduced),
            reduced_resources: red.reduced.num_resources(),
            reduced_usages: red.reduced.total_usages(),
            pairs: stats.pairs,
            pair_product_states: stats.pair_product_states,
            max_pair_states: stats.max_pair_states,
            modulo_max_ii: stats.modulo.max_ii,
            modulo_comparisons: stats.modulo.comparisons,
            global_completed: stats.global.completed,
            global_states: stats.global.product_states,
            schedules_checked: stats.schedules_checked,
        });
    }
    Ok(Certificate {
        machine: name.to_string(),
        fingerprint: content_fingerprint(machine),
        matrix_fingerprint: fingerprints::matrix_fingerprint_hex(&matrix),
        operations: machine.num_operations(),
        resources: machine.num_resources(),
        objectives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models;

    #[test]
    fn shipped_reductions_certify() {
        for (name, m) in [
            ("fig1", models::example_machine()),
            ("cydra5-subset", models::cydra5_subset()),
        ] {
            let cert = certify_machine(&m, name, &CertifyOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(cert.operations, m.num_operations());
            assert_eq!(cert.objectives.len(), 2);
            for o in &cert.objectives {
                assert!(o.pairs > 0);
                assert!(o.pair_product_states > o.pairs, "states dominate pairs");
                assert!(o.schedules_checked >= 1, "{name}/{}", o.objective);
            }
        }
    }

    #[test]
    fn mismatched_op_counts_are_an_error_not_a_panic() {
        let a = models::example_machine();
        let b = models::cydra5_subset();
        match certify_pair(&a, &b, &CertifyOptions::default()) {
            Err(CertifyFailure::Error(CertifyError::OpCountMismatch { .. })) => {}
            other => panic!("expected op-count mismatch, got {other:?}"),
        }
    }

    /// A deliberately broken "reduction" must yield a counterexample
    /// whose trace replays with divergent final answers.
    #[test]
    fn broken_reduction_yields_a_replayable_counterexample() {
        use rmd_query::{DiscreteModule, Response};
        let m = models::example_machine();
        let mut b = rmd_machine::MachineBuilder::new("fig1-broken");
        let q = b.resource("q0");
        for op in m.operations() {
            b.operation(op.name()).usage(q, 0).finish();
        }
        let broken = b.build().expect("valid machine");
        let cex = match certify_pair(&m, &broken, &CertifyOptions::default()) {
            Err(CertifyFailure::Mismatch(cex)) => cex,
            other => panic!("expected mismatch, got {other:?}"),
        };
        assert_ne!(cex.left_admits, cex.right_admits);
        assert!(
            matches!(cex.kind, CexKind::Linear),
            "the linear pass runs first"
        );
        let trace = cex.to_trace(m.name());
        let mut left = DiscreteModule::new(&m);
        let mut right = DiscreteModule::new(&broken);
        let la = trace.replay(&mut left);
        let ra = trace.replay(&mut right);
        let last = trace.len() - 1;
        assert_eq!(la[last].response, Response::Admitted(cex.left_admits));
        assert_eq!(ra[last].response, Response::Admitted(cex.right_admits));
    }
}
