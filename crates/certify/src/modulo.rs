//! Modulo-schedule certification: cycle-normalized states per II.
//!
//! In a modulo schedule at initiation interval `II`, every placement
//! repeats each `II` cycles, so the state of a resource is normalized to
//! its cycle class mod `II` and the observable relation collapses to a
//! finite one: placing `z` at slot offset `d` after `o` conflicts iff
//! some linear conflict offset `a` (in either order) satisfies
//! `a ≡ ±d (mod II)`. The prover folds both machines' conflict vectors
//! at every `II` up to the bound and compares:
//!
//! * per operation, whether it *fits* at `II` at all (no positive
//!   self-conflict offset divisible by `II`);
//! * per ordered pair of fitting operations, the folded conflict
//!   relation at every slot offset `d ∈ 0..II`.
//!
//! The bound `max_ii = span` is complete: for `II ≥ span` every residue
//! class mod `II` contains at most one representable offset (`d` or
//! `d − II`), so the folded relation is a relabeling of the linear
//! relation the product pass already proved equal, and `fits` is
//! vacuously true on both sides.

use crate::cex::{CexKind, Counterexample};
use crate::conflict::ConflictVectors;
use crate::CertifyFailure;
use rmd_machine::OpId;

/// Statistics from a completed modulo pass.
#[derive(Clone, Copy, Debug)]
pub struct ModuloStats {
    /// Largest initiation interval checked explicitly.
    pub max_ii: u32,
    /// Folded `(II, o, z, d)` comparisons performed.
    pub comparisons: u64,
}

/// Compare the folded modulo-conflict relations of the two machines for
/// every II in `1..=max_ii`.
pub(crate) fn certify_modulo(
    a: &ConflictVectors,
    b: &ConflictVectors,
    max_ii: u32,
) -> Result<ModuloStats, CertifyFailure> {
    let n = a.num_ops();
    let mut comparisons = 0u64;
    for ii in 1..=max_ii {
        // An op that cannot sustain the II on one side but can on the
        // other is already a disagreement — about the op alone.
        for op in 0..n {
            let fa = a.fits(op, ii);
            let fb = b.fits(op, ii);
            comparisons += 1;
            if fa != fb {
                return Err(CexKind::Modulo { ii }.mismatch(vec![], (op, 0), fa, fb));
            }
        }
        for o in 0..n {
            if !a.fits(o, ii) {
                // Agreed-unplaceable on both sides (fits was compared
                // above); conflicts beyond it are unobservable.
                continue;
            }
            for z in 0..n {
                if !a.fits(z, ii) {
                    continue;
                }
                for d in 0..ii {
                    let ca = a.conflicts_mod(o, z, d, ii);
                    let cb = b.conflicts_mod(o, z, d, ii);
                    comparisons += 1;
                    if ca != cb {
                        // `o` placed at slot 0, probe `z` at slot `d`:
                        // admitted iff no conflict.
                        return Err(CexKind::Modulo { ii }.mismatch(
                            vec![(o, 0)],
                            (z, d),
                            !ca,
                            !cb,
                        ));
                    }
                }
            }
        }
    }
    Ok(ModuloStats {
        max_ii,
        comparisons,
    })
}

impl CexKind {
    fn mismatch(
        self,
        places: Vec<(usize, u32)>,
        probe: (usize, u32),
        left: bool,
        right: bool,
    ) -> CertifyFailure {
        CertifyFailure::Mismatch(Box::new(Counterexample {
            kind: self,
            places: places
                .into_iter()
                .map(|(op, c)| (OpId(op as u32), c))
                .collect(),
            probe: (OpId(probe.0 as u32), probe.1),
            left_admits: left,
            right_admits: right,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::{models, MachineBuilder};

    #[test]
    fn machine_equals_itself_at_every_ii() {
        let m = models::cydra5_subset();
        let cv = ConflictVectors::compute(&m).expect("span fits");
        let stats = certify_modulo(&cv, &cv, cv.span()).expect("reflexive");
        assert_eq!(stats.max_ii, cv.span());
        assert!(stats.comparisons > 0);
    }

    /// Two machines that agree on every *linear* offset can still be
    /// told apart... never: folding is determined by the vectors. But a
    /// deliberately different machine must be caught with a modulo
    /// counterexample when only the modulo pass runs.
    #[test]
    fn detects_a_folded_disagreement() {
        let mk = |gap: u32| {
            let mut b = MachineBuilder::new("t");
            let r = b.resource("r");
            b.operation("x").usage(r, 0).usage(r, gap).finish();
            b.build().unwrap()
        };
        let a = ConflictVectors::compute(&mk(2)).expect("fits");
        let b = ConflictVectors::compute(&mk(3)).expect("fits");
        let err = certify_modulo(&a, &b, 4).expect_err("different self-conflicts");
        match err {
            CertifyFailure::Mismatch(cex) => {
                assert!(matches!(cex.kind, CexKind::Modulo { .. }));
                assert_ne!(cex.left_admits, cex.right_admits);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }
}
