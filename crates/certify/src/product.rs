//! Exhaustive pairwise product reachability over conflict-mask states.
//!
//! For a pair of operations `(x, y)` the certifier tracks, per machine,
//! one *future-conflict mask* per candidate: bit `t` of `x`'s mask set
//! iff issuing `x` at `now + t` would conflict with something already
//! placed. This is the observational quotient of the resource-commitment
//! automaton — two commitment states that restrict the candidates
//! identically collapse to one mask state — so the product stays tiny
//! even for machines whose commitment automata exceed millions of states
//! (Cydra 5). The transition relation is exact:
//!
//! * advance one cycle: every mask shifts right by one;
//! * issue `o` (legal iff bit 0 of `o`'s mask is clear): OR the
//!   precomputed conflict vector `cv[o][z]` into each candidate `z`.
//!
//! At every reachable product state the prover checks *contention
//! bisimulation*: both machines must admit exactly the same candidates
//! right now. Any disagreement is materialized as a counterexample trace
//! by walking BFS parent pointers back to the empty-pipeline state.

use crate::cex::{CexKind, Counterexample};
use crate::conflict::ConflictVectors;
use crate::{CertifyError, CertifyFailure};
use rmd_machine::OpId;
use std::collections::HashMap;

/// A dense-id bitset used as the BFS frontier index: one bit per
/// interned product state, drained a wave at a time.
pub(crate) struct IdBitset {
    words: Vec<u64>,
    len: usize,
}

impl IdBitset {
    pub fn new() -> Self {
        IdBitset {
            words: Vec::new(),
            len: 0,
        }
    }

    pub fn insert(&mut self, id: u32) {
        let (w, b) = (id as usize / 64, id as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.len += 1;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drain all set bits in increasing id order.
    pub fn drain(&mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        for (w, word) in self.words.iter_mut().enumerate() {
            let mut v = *word;
            while v != 0 {
                let b = v.trailing_zeros();
                out.push((w * 64 + b as usize) as u32);
                v &= v - 1;
            }
            *word = 0;
        }
        self.len = 0;
        out
    }
}

/// How a product state was reached from its parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Step {
    Root,
    Advance,
    /// Issue candidate 0 (`x`) or 1 (`y`).
    Issue(u8),
}

/// One product state: the conflict masks of both candidates on both
/// machines — `(a_x, a_y, b_x, b_y)` — plus the number of placements
/// already made on the path that reached it.
///
/// The placement count is part of the state because exploration is
/// bounded by it. The bound loses nothing: a candidate's mask is the OR
/// of one shifted conflict vector per placement, so the two machines
/// disagree on some multi-placement state iff they disagree on some
/// *single*-placement state (project the divergent OR bit to the one
/// placement that contributes it — legal alone by monotonicity). The
/// certifier explores up to `issue_cap ≥ 2` placements anyway, one more
/// than a minimal witness needs, as redundancy against that very lemma.
type PairState = ([u128; 4], u8);

/// Exhaustively explore the product of the two conflict-mask systems
/// for candidates `x` and `y` (possibly equal), checking contention
/// bisimulation at every reachable state (up to `issue_cap` placements
/// per path — complete; see [`PairState`]).
///
/// Returns the number of reachable product states, or the first
/// mismatch as a counterexample, or a budget error if the state count
/// exceeds `max_states` (which indicates a pathological description,
/// not a proof failure — the caller reports it as such).
pub(crate) fn certify_pair_linear(
    a: &ConflictVectors,
    b: &ConflictVectors,
    x: usize,
    y: usize,
    issue_cap: u8,
    max_states: u64,
) -> Result<u64, CertifyFailure> {
    let start: PairState = ([0, 0, 0, 0], 0);
    let mut ids: HashMap<PairState, u32> = HashMap::new();
    let mut states: Vec<PairState> = Vec::new();
    let mut parents: Vec<(u32, Step)> = Vec::new();
    ids.insert(start, 0);
    states.push(start);
    parents.push((0, Step::Root));

    let mut frontier = IdBitset::new();
    frontier.insert(0);
    while !frontier.is_empty() {
        let wave = frontier.drain();
        for id in wave {
            let (s, issued) = states[id as usize];
            // Contention bisimulation: both machines must admit exactly
            // the same candidates in this state.
            for (slot, op) in [(0usize, x), (1usize, y)] {
                if slot == 1 && y == x {
                    break;
                }
                let left = s[slot] & 1 == 0;
                let right = s[2 + slot] & 1 == 0;
                if left != right {
                    return Err(CertifyFailure::Mismatch(Box::new(build_cex(
                        &states, &parents, id, x, y, op, left, right,
                    ))));
                }
            }
            // Expand: one cycle of time, then each both-sides-legal issue.
            let mut push = |next: PairState, step: Step, frontier: &mut IdBitset| {
                let n = ids.len() as u32;
                let id2 = *ids.entry(next).or_insert(n);
                if id2 == n {
                    states.push(next);
                    parents.push((id, step));
                    frontier.insert(id2);
                }
            };
            // Once every mask is empty, further advances revisit the
            // start of an already-explored suffix — don't re-enqueue.
            if s != [0, 0, 0, 0] {
                push(
                    ([s[0] >> 1, s[1] >> 1, s[2] >> 1, s[3] >> 1], issued),
                    Step::Advance,
                    &mut frontier,
                );
            }
            for (slot, op) in [(0usize, x), (1usize, y)] {
                if slot == 1 && y == x {
                    break;
                }
                if issued >= issue_cap || s[slot] & 1 != 0 {
                    continue; // bisimulation above guarantees both agree
                }
                let next = [
                    s[0] | a.get(op, x),
                    s[1] | a.get(op, y),
                    s[2] | b.get(op, x),
                    s[3] | b.get(op, y),
                ];
                push((next, issued + 1), Step::Issue(slot as u8), &mut frontier);
            }
            if states.len() as u64 > max_states {
                return Err(CertifyFailure::Error(CertifyError::StateBudget {
                    pair: (x, y),
                    budget: max_states,
                }));
            }
        }
    }
    Ok(states.len() as u64)
}

/// Reconstruct the issue/advance path from the root to `id` and convert
/// it into placements at absolute cycles plus the divergent probe.
#[allow(clippy::too_many_arguments)]
fn build_cex(
    states: &[PairState],
    parents: &[(u32, Step)],
    id: u32,
    x: usize,
    y: usize,
    probe_op: usize,
    left: bool,
    right: bool,
) -> Counterexample {
    let mut path = Vec::new();
    let mut cur = id;
    loop {
        let (parent, step) = parents[cur as usize];
        if matches!(step, Step::Root) {
            break;
        }
        path.push(step);
        cur = parent;
    }
    path.reverse();
    debug_assert_eq!(states[0], ([0, 0, 0, 0], 0));
    let mut cycle = 0u32;
    let mut places = Vec::new();
    for step in path {
        match step {
            Step::Root => unreachable!("root is never recorded as a step"),
            Step::Advance => cycle += 1,
            Step::Issue(slot) => {
                let op = if slot == 0 { x } else { y };
                places.push((OpId(op as u32), cycle));
            }
        }
    }
    Counterexample {
        kind: CexKind::Linear,
        places,
        probe: (OpId(probe_op as u32), cycle),
        left_admits: left,
        right_admits: right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models;

    #[test]
    fn identical_machines_certify_with_small_state_counts() {
        let m = models::example_machine();
        let cv = ConflictVectors::compute(&m).expect("span fits");
        let n = cv.num_ops();
        for x in 0..n {
            for y in x..n {
                let states = certify_pair_linear(&cv, &cv, x, y, 2, 1 << 20)
                    .expect("machine equals itself");
                assert!(states >= 2, "at least the empty and one successor");
                assert!(states < 4096, "pair ({x},{y}) blew up: {states}");
            }
        }
    }

    #[test]
    fn drain_returns_ids_in_order() {
        let mut b = IdBitset::new();
        b.insert(70);
        b.insert(3);
        b.insert(3);
        assert_eq!(b.drain(), vec![3, 70]);
        assert!(b.is_empty());
    }
}
