//! End-to-end schedule re-validation: the RMD-S pass of a certificate.
//!
//! The product passes prove the two descriptions answer every
//! contention query identically; this pass closes the loop the way a
//! compiler would hit it: schedule small, deterministic dependence
//! graphs with IMS *on the reduced description*, then hand each result
//! to [`rmd_analyze::certify_schedule_pair`], which re-simulates it
//! against the **original** tables. The graphs are derived from the
//! machine's own operations (an acyclic chain, a loop-carried
//! recurrence, and a diamond), so every machine exercises its own
//! pipelines without any external loop suite.

use crate::{CertifyError, CertifyFailure};
use rmd_machine::{MachineDescription, OpId};
use rmd_sched::{DepGraph, DepKind, ImsConfig, IterativeModuloScheduler, Representation};

/// Distinct sample operations spread across the op list: first, last,
/// and two interior ops.
fn sample_ops(m: &MachineDescription) -> Vec<OpId> {
    let n = m.num_operations();
    let mut picks = vec![0, n / 3, (2 * n) / 3, n.saturating_sub(1)];
    picks.sort_unstable();
    picks.dedup();
    picks.into_iter().map(|i| OpId(i as u32)).collect()
}

/// The deterministic per-machine graph suite.
fn sample_graphs(m: &MachineDescription) -> Vec<DepGraph> {
    let ops = sample_ops(m);
    let mut graphs = Vec::new();

    // 1. An acyclic chain over all sample ops.
    let mut chain = DepGraph::new();
    let nodes: Vec<_> = ops.iter().map(|&op| chain.add_node(op)).collect();
    for w in nodes.windows(2) {
        chain.add_edge(w[0], w[1], 1, 0, DepKind::Flow);
    }
    graphs.push(chain);

    // 2. The same chain with a loop-carried recurrence closing it.
    let mut rec = DepGraph::new();
    let nodes: Vec<_> = ops.iter().map(|&op| rec.add_node(op)).collect();
    for w in nodes.windows(2) {
        rec.add_edge(w[0], w[1], 1, 0, DepKind::Flow);
    }
    if let (Some(&first), Some(&last)) = (nodes.first(), nodes.last()) {
        rec.add_edge(last, first, 2, 1, DepKind::Flow);
    }
    graphs.push(rec);

    // 3. A diamond, when the machine offers enough distinct ops.
    if ops.len() >= 4 {
        let mut d = DepGraph::new();
        let a = d.add_node(ops[0]);
        let b = d.add_node(ops[1]);
        let c = d.add_node(ops[2]);
        let j = d.add_node(ops[3]);
        d.add_edge(a, b, 1, 0, DepKind::Flow);
        d.add_edge(a, c, 1, 0, DepKind::Flow);
        d.add_edge(b, j, 1, 0, DepKind::Flow);
        d.add_edge(c, j, 1, 0, DepKind::Anti);
        graphs.push(d);
    }
    graphs
}

/// Schedule the sample graphs on `reduced` and re-validate every result
/// against `original`. Returns the number of schedules checked.
pub(crate) fn check_schedules(
    original: &MachineDescription,
    reduced: &MachineDescription,
) -> Result<u64, CertifyFailure> {
    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    let mut checked = 0u64;
    for (i, g) in sample_graphs(original).iter().enumerate() {
        let result = match ims.schedule(g, reduced, Representation::Discrete) {
            Ok(r) => r,
            // An infeasible sample graph is not an equivalence question;
            // skip it rather than fail the certificate.
            Err(_) => continue,
        };
        let subject = format!("{}#sample-{i}", original.name());
        let report = rmd_analyze::certify_schedule_pair(g, original, reduced, &result, &subject);
        if !report.diagnostics.is_empty() {
            return Err(CertifyFailure::Error(CertifyError::Schedule {
                report: report.render_text(),
            }));
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_core::Objective;
    use rmd_machine::models;

    #[test]
    fn reduced_schedules_validate_against_the_original() {
        for m in [models::example_machine(), models::cydra5_subset()] {
            let red = rmd_core::reduce(&m, Objective::ResUses);
            let checked = check_schedules(&m, &red.reduced).expect("reduction is honest");
            assert!(checked >= 2, "machine {}: {checked}", m.name());
        }
    }
}
