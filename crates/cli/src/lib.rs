//! Implementation of the `rmd` command-line tool.
//!
//! The binary wraps the reduction pipeline for interactive use:
//!
//! ```text
//! rmd stats  <machine>                  # classes, latencies, table sizes
//! rmd reduce <machine> [options]        # reduce and print/emit MDL
//! rmd verify <machine-a> <machine-b>    # exact equivalence check
//! rmd matrix <machine>                  # the forbidden-latency matrix
//! rmd render <machine>                  # ASCII reservation tables
//! rmd lint   <machine> [options]        # description lints
//! rmd certify <machine> [options]       # static equivalence proof -> cert
//! rmd fuzz   [options]                  # generative differential fuzzing
//! rmd bench  [<machine>...] [options]   # perf workloads -> BENCH_*.json
//! rmd profile <machine> [options]       # traced run -> phase/latency report
//! rmd models                            # list built-in models
//! ```
//!
//! `<machine>` is either a path to an `.mdl` file or the name of a
//! built-in model (`fig1`, `mips`, `alpha`, `cydra5`, `cydra5-subset`).
//! The library form exists so the argument parser and command logic are
//! unit-testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rmd_core::{try_reduce, verify_equivalence, Limits, Objective, ReduceOptions, RmdError};
use rmd_latency::{ClassPartition, ForbiddenMatrix};
use rmd_machine::{mdl, models, MachineDescription};
use std::fmt::Write as _;

/// A failure of the `rmd` tool, classified by pipeline stage.
///
/// Each variant maps to a distinct process exit code via
/// [`CliError::exit_code`] so scripts can tell *why* an invocation
/// failed without scraping stderr:
///
/// | variant          | exit code | meaning                                   |
/// |------------------|-----------|-------------------------------------------|
/// | `Usage`          | 2         | malformed command line                    |
/// | `Parse`          | 3         | unreadable input or MDL syntax error      |
/// | `Validation`     | 4         | machine rejected by structural validation |
/// | `Verification`   | 5         | equivalence check failed                  |
/// | `Lint`           | 6         | lint findings at error severity           |
/// | `Export`         | 7         | profile/trace export could not be written |
/// | `Serve`          | 8         | daemon transport could not be set up      |
/// | `Certify`        | 9         | equivalence certification failed          |
/// | `Fuzz`           | 10        | fuzz campaign found divergences, or a     |
/// |                  |           | corpus replay violated an expectation     |
/// | `BenchRegression`| 11        | `bench --compare` guard metric regressed  |
/// |                  |           | beyond tolerance                          |
/// | `Internal`       | 1         | unexpected pipeline failure               |
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The command line itself is malformed.
    Usage(String),
    /// The named input could not be read or parsed as MDL.
    Parse {
        /// The file path or model spec that failed.
        spec: String,
        /// What went wrong, already rendered for display.
        message: String,
    },
    /// A machine was loaded but rejected by validation limits or
    /// structural checks.
    Validation(RmdError),
    /// Two descriptions do not forbid the same latencies (from
    /// `rmd verify`), or a reduction failed its mandatory
    /// post-verification.
    Verification {
        /// The rendered inequivalence witness.
        message: String,
    },
    /// `rmd lint` found error-severity diagnostics (possibly escalated
    /// warnings under `--deny warnings`).
    Lint {
        /// The full rendered report, in the requested format; the
        /// binary prints this on stdout before exiting.
        report: String,
        /// Number of error-severity findings.
        errors: usize,
    },
    /// A profile or trace export could not be written (from
    /// `rmd profile --out`, or a `--table6` record).
    Export {
        /// The destination that failed.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The `rmd serve` daemon could not set up its transport (socket
    /// bind or configuration failures). Errors on individual requests
    /// never surface here — they are answered in-band as typed JSON
    /// replies, and socket I/O errors on a connection are logged and
    /// survived, never panicked on.
    Serve {
        /// What failed, already rendered for display.
        message: String,
    },
    /// `rmd certify` disproved an equivalence (a counterexample was
    /// found) or could not complete the proof.
    Certify {
        /// The full rendered result — counterexample trace or proof
        /// error — in the requested format; the binary prints this on
        /// stdout before exiting.
        report: String,
        /// One-line failure summary for stderr.
        message: String,
    },
    /// `rmd fuzz` found pipeline divergences (minimized failures in the
    /// report), or a regression-corpus replay violated an entry's
    /// expectation.
    Fuzz {
        /// The full rendered campaign report or replay transcript; the
        /// binary prints this on stdout before exiting.
        report: String,
        /// One-line failure summary for stderr.
        message: String,
    },
    /// `rmd bench --compare` found the guard metric regressed beyond
    /// tolerance against the baseline record.
    BenchRegression {
        /// The full rendered comparison report; the binary prints this
        /// on stdout before exiting.
        report: String,
        /// One-line regression summary for stderr.
        message: String,
    },
    /// An unexpected internal failure.
    Internal(String),
}

impl CliError {
    /// The process exit code this error should terminate with.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Parse { .. } => 3,
            CliError::Validation(_) => 4,
            CliError::Verification { .. } => 5,
            CliError::Lint { .. } => 6,
            CliError::Export { .. } => 7,
            CliError::Serve { .. } => 8,
            CliError::Certify { .. } => 9,
            CliError::Fuzz { .. } => 10,
            CliError::BenchRegression { .. } => 11,
            CliError::Internal(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Parse { spec, message } => write!(f, "{spec}: {message}"),
            CliError::Validation(e) => write!(f, "invalid machine: {e}"),
            CliError::Verification { message } => write!(f, "{message}"),
            CliError::Lint { errors, .. } => {
                write!(f, "lint: {errors} error-severity finding(s)")
            }
            CliError::Export { path, message } => {
                write!(f, "cannot write `{path}`: {message}")
            }
            CliError::Serve { message } => write!(f, "serve: {message}"),
            CliError::Certify { message, .. } => write!(f, "certify: {message}"),
            CliError::Fuzz { message, .. } => write!(f, "fuzz: {message}"),
            CliError::BenchRegression { message, .. } => write!(f, "bench: {message}"),
            CliError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<RmdError> for CliError {
    fn from(e: RmdError) -> Self {
        match e {
            RmdError::VerificationFailed(v) => CliError::Verification {
                message: format!("reduction broke equivalence: {v}"),
            },
            other => CliError::Validation(other),
        }
    }
}

/// A parsed command line.
// `PartialEq` only: `Bench::tolerance` is an `Option<f64>`.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// `rmd stats <machine>`
    Stats {
        /// Model name or `.mdl` path.
        machine: String,
    },
    /// `rmd reduce <machine> [--objective res-uses|word] [--k N] [--emit-mdl]`
    Reduce {
        /// Model name or `.mdl` path.
        machine: String,
        /// Selection objective.
        objective: ParsedObjective,
        /// Also print the reduced machine as MDL.
        emit_mdl: bool,
    },
    /// `rmd verify <a> <b>`
    Verify {
        /// First machine.
        left: String,
        /// Second machine.
        right: String,
    },
    /// `rmd matrix <machine>`
    Matrix {
        /// Model name or `.mdl` path.
        machine: String,
    },
    /// `rmd render <machine>`
    Render {
        /// Model name or `.mdl` path.
        machine: String,
    },
    /// `rmd table <machine>`: a paper-style reduction report.
    Table {
        /// Model name or `.mdl` path.
        machine: String,
    },
    /// `rmd lint <machine> [--format text|json|sarif] [--deny warnings]`
    Lint {
        /// Model name or `.mdl` path.
        machine: String,
        /// Report output format.
        format: ReportFormat,
        /// Escalate warnings to errors before deciding the exit code.
        deny_warnings: bool,
    },
    /// `rmd certify <machine> [--out DIR] [--against <machine>]
    /// [--mutant OP:SEED] [--format text|json|sarif] [--max-ii N]
    /// [--budget N]`
    Certify {
        /// Model name or `.mdl` path of the original description.
        machine: String,
        /// Certify against this second description instead of the
        /// machine's own reductions.
        against: Option<String>,
        /// Apply this seeded rmd-fault mutation operator to the machine
        /// and certify the mutant against the original (the
        /// counterexample-replay loop).
        mutant: Option<(rmd_fault::MutationOp, u64)>,
        /// Write the certificate JSON into this directory (default-mode
        /// runs only).
        out: Option<String>,
        /// Result output format.
        format: ReportFormat,
        /// Override the modulo pass's II bound (`None` = the complete
        /// bound, the larger machine span).
        max_ii: Option<u32>,
        /// Override the global pass's product-state budget.
        budget: Option<u64>,
    },
    /// `rmd fuzz [--seed N] [--count N] [--size small|medium|large]
    /// [--mutant OP:SEED] [--corpus DIR] [--replay]`
    Fuzz {
        /// Base seed of the campaign.
        seed: u64,
        /// Generated machines to push through the pipeline.
        count: u32,
        /// Generator size preset name (`small`, `medium`, `large`).
        size: String,
        /// Inject this seeded rmd-fault mutation into every case's
        /// reduction output (the harness self-test mode).
        mutant: Option<(rmd_fault::MutationOp, u64)>,
        /// Regression-corpus directory: minimized failures are written
        /// here, and `--replay` reads it back.
        corpus: Option<String>,
        /// Replay the corpus directory instead of running a campaign.
        replay: bool,
    },
    /// `rmd bench [<machine>...] [--quick] [--threads N] [--out DIR]
    /// [--backend NAME] [--compare OLD.json [--against NEW.json]]
    /// [--metric PATH] [--tolerance FRAC]`
    Bench {
        /// Machines to benchmark; empty means the default pair
        /// (`fig1` + `cydra5-subset`).
        machines: Vec<String>,
        /// Shrink every workload for CI smoke runs.
        quick: bool,
        /// Worker threads for the parallel suite run; `None` picks a
        /// host-derived default.
        threads: Option<usize>,
        /// Output directory for `BENCH_*.json`; `None` means the
        /// current directory (the repo root, by convention).
        out: Option<String>,
        /// Query backend for the `query_window` workload (validated
        /// against [`rmd_bench::BACKEND_NAMES`] at parse time).
        backend: Option<&'static str>,
        /// Baseline `BENCH_*.json` record: diff the fresh run (or the
        /// `against` record) against it and exit 11 when the guard
        /// metric regresses beyond tolerance.
        compare: Option<String>,
        /// With `compare`: diff this already-written record instead of
        /// running any benchmark (a pure file-vs-file comparison).
        against: Option<String>,
        /// Dotted path of the guard metric
        /// ([`rmd_bench::compare::DEFAULT_METRIC`] when `None`).
        metric: Option<String>,
        /// Tolerated relative drop in `[0, 1)`
        /// ([`rmd_bench::compare::DEFAULT_TOLERANCE`] when `None`).
        tolerance: Option<f64>,
    },
    /// `rmd profile <machine> [--loops N] [--format text|jsonl|chrome]
    /// [--out FILE] [--table6] [--backend NAME]`
    Profile {
        /// Model name or `.mdl` path.
        machine: String,
        /// Loops to schedule; `None` picks the profile default (the
        /// scheduler section is skipped for non-suite machines either
        /// way).
        loops: Option<usize>,
        /// Output format for the event stream.
        format: ProfileFormat,
        /// Write the formatted output to this file instead of stdout.
        out: Option<String>,
        /// Also render the per-function work-unit table and record it
        /// under `results/`.
        table6: bool,
        /// Meter only this query backend (validated against
        /// [`rmd_bench::BACKEND_NAMES`] at parse time).
        backend: Option<&'static str>,
    },
    /// `rmd serve [--socket PATH] [--queue N] [--deadline-ms N]
    /// [--chaos SEED] [--metrics FILE] [--metrics-every N]
    /// [--slow-ms N]`
    Serve {
        /// Serve a unix socket at this path instead of stdin/stdout.
        socket: Option<String>,
        /// Admission-queue depth; requests beyond it are shed with an
        /// `overloaded` reply.
        queue: Option<usize>,
        /// Default per-request deadline in milliseconds (0 disables).
        deadline_ms: Option<u64>,
        /// Deterministic fault-injection seed (chaos mode).
        chaos: Option<u64>,
        /// Write flushed metrics JSON to this file instead of stderr.
        metrics: Option<String>,
        /// Emit a metrics snapshot (JSONL) every N requests while the
        /// daemon runs; 0 or `None` disables periodic emission.
        metrics_every: Option<u64>,
        /// Log a structured JSONL record to stderr for every request
        /// slower than N milliseconds; 0 or `None` disables.
        slow_ms: Option<u64>,
        /// Directory of `rmd certify` certificates; machines without a
        /// vouching certificate are refused. `None` means the default
        /// `certs` directory.
        certs: Option<String>,
        /// Serve without the certificate gate.
        uncertified: bool,
    },
    /// `rmd models`
    Models,
    /// `rmd help` or no args.
    Help,
}

/// Output format of `rmd profile`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProfileFormat {
    /// Human-readable report (default).
    #[default]
    Text,
    /// One JSON event per line.
    Jsonl,
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    Chrome,
    /// Prometheus/OpenMetrics text exposition of the merged metric
    /// registry (counters, gauges, and histogram summaries).
    Prom,
}

/// Output format of `rmd lint` and `rmd certify` reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReportFormat {
    /// Human-readable report (default).
    #[default]
    Text,
    /// One JSON object (one line for lint reports, pretty-printed for
    /// certificates).
    Json,
    /// SARIF 2.1.0 log for code-scanning upload.
    Sarif,
}

impl ReportFormat {
    /// Parses a `--format` argument shared by `lint` and `certify`.
    fn parse(v: Option<&str>) -> Result<ReportFormat, CliError> {
        match v {
            Some("text") => Ok(ReportFormat::Text),
            Some("json") => Ok(ReportFormat::Json),
            Some("sarif") => Ok(ReportFormat::Sarif),
            other => Err(CliError::Usage(format!(
                "--format expects `text`, `json`, or `sarif`, got {other:?}"
            ))),
        }
    }
}

/// Objective selection on the command line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParsedObjective {
    /// `--objective res-uses` (default).
    ResUses,
    /// `--objective word --k N`.
    Word {
        /// Cycles per word.
        k: u32,
    },
}

impl From<ParsedObjective> for Objective {
    fn from(p: ParsedObjective) -> Objective {
        match p {
            ParsedObjective::ResUses => Objective::ResUses,
            ParsedObjective::Word { k } => Objective::KCycleWord { k },
        }
    }
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed command lines.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "stats" => Ok(Command::Stats {
            machine: required(&mut it, "stats", "<machine>")?,
        }),
        "matrix" => Ok(Command::Matrix {
            machine: required(&mut it, "matrix", "<machine>")?,
        }),
        "render" => Ok(Command::Render {
            machine: required(&mut it, "render", "<machine>")?,
        }),
        "verify" => Ok(Command::Verify {
            left: required(&mut it, "verify", "<machine-a>")?,
            right: required(&mut it, "verify", "<machine-b>")?,
        }),
        "table" => Ok(Command::Table {
            machine: required(&mut it, "table", "<machine>")?,
        }),
        "lint" => {
            let machine = required(&mut it, "lint", "<machine>")?;
            let mut format = ReportFormat::Text;
            let mut deny_warnings = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--format" => {
                        format = ReportFormat::parse(it.next().map(String::as_str))?;
                    }
                    "--deny" => match it.next().map(String::as_str) {
                        Some("warnings") => deny_warnings = true,
                        other => {
                            return Err(CliError::Usage(format!(
                                "--deny expects `warnings`, got {other:?}"
                            )))
                        }
                    },
                    other => {
                        return Err(CliError::Usage(format!("unknown option `{other}`")))
                    }
                }
            }
            Ok(Command::Lint {
                machine,
                format,
                deny_warnings,
            })
        }
        "certify" => {
            let machine = required(&mut it, "certify", "<machine>")?;
            let mut against = None;
            let mut mutant = None;
            let mut out = None;
            let mut format = ReportFormat::Text;
            let mut max_ii = None;
            let mut budget = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--against" => {
                        against = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--against expects a machine".to_owned())
                        })?);
                    }
                    "--mutant" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--mutant expects OP:SEED".to_owned())
                        })?;
                        mutant = Some(parse_mutant(v)?);
                    }
                    "--out" => {
                        out = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--out expects a directory".to_owned())
                        })?);
                    }
                    "--format" => {
                        format = ReportFormat::parse(it.next().map(String::as_str))?;
                    }
                    "--max-ii" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--max-ii expects a positive number".to_owned())
                        })?;
                        let n: u32 = v.parse().map_err(|_| {
                            CliError::Usage(format!(
                                "--max-ii expects a positive number, got `{v}`"
                            ))
                        })?;
                        if n == 0 {
                            return Err(CliError::Usage(
                                "--max-ii must be at least 1".to_owned(),
                            ));
                        }
                        max_ii = Some(n);
                    }
                    "--budget" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--budget expects a number".to_owned())
                        })?;
                        budget = Some(v.parse().map_err(|_| {
                            CliError::Usage(format!("--budget expects a number, got `{v}`"))
                        })?);
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown option `{other}`")))
                    }
                }
            }
            if against.is_some() && mutant.is_some() {
                return Err(CliError::Usage(
                    "--against and --mutant are mutually exclusive".to_owned(),
                ));
            }
            if out.is_some() && (against.is_some() || mutant.is_some()) {
                return Err(CliError::Usage(
                    "--out only applies when certifying a machine against its own \
                     reductions"
                        .to_owned(),
                ));
            }
            Ok(Command::Certify {
                machine,
                against,
                mutant,
                out,
                format,
                max_ii,
                budget,
            })
        }
        "fuzz" => {
            let mut seed = 0u64;
            let mut count = 100u32;
            let mut size = "small".to_owned();
            let mut mutant = None;
            let mut corpus = None;
            let mut replay = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seed" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--seed expects a number".to_owned())
                        })?;
                        seed = v.parse().map_err(|_| {
                            CliError::Usage(format!("--seed expects a number, got `{v}`"))
                        })?;
                    }
                    "--count" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--count expects a positive number".to_owned())
                        })?;
                        let n: u32 = v.parse().map_err(|_| {
                            CliError::Usage(format!(
                                "--count expects a positive number, got `{v}`"
                            ))
                        })?;
                        if n == 0 {
                            return Err(CliError::Usage(
                                "--count must be at least 1".to_owned(),
                            ));
                        }
                        count = n;
                    }
                    "--size" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage(
                                "--size expects `small`, `medium`, or `large`".to_owned(),
                            )
                        })?;
                        if rmd_fault::GenConfig::preset(v).is_none() {
                            return Err(CliError::Usage(format!(
                                "--size expects `small`, `medium`, or `large`, got `{v}`"
                            )));
                        }
                        size = v.clone();
                    }
                    "--mutant" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--mutant expects OP:SEED".to_owned())
                        })?;
                        mutant = Some(parse_mutant(v)?);
                    }
                    "--corpus" => {
                        corpus = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--corpus expects a directory".to_owned())
                        })?);
                    }
                    "--replay" => replay = true,
                    other => {
                        return Err(CliError::Usage(format!("unknown option `{other}`")))
                    }
                }
            }
            if replay && mutant.is_some() {
                return Err(CliError::Usage(
                    "--replay re-injects each entry's recorded mutant; --mutant does \
                     not apply"
                        .to_owned(),
                ));
            }
            Ok(Command::Fuzz {
                seed,
                count,
                size,
                mutant,
                corpus,
                replay,
            })
        }
        "bench" => {
            let mut machines = Vec::new();
            let mut quick = false;
            let mut threads = None;
            let mut out = None;
            let mut backend = None;
            let mut compare = None;
            let mut against = None;
            let mut metric = None;
            let mut tolerance = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => quick = true,
                    "--backend" => backend = Some(parse_backend(it.next())?),
                    "--compare" => {
                        compare = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage(
                                "--compare expects a baseline BENCH_*.json path".to_owned(),
                            )
                        })?);
                    }
                    "--against" => {
                        against = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--against expects a BENCH_*.json path".to_owned())
                        })?);
                    }
                    "--metric" => {
                        metric = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage(
                                "--metric expects a dotted record path".to_owned(),
                            )
                        })?);
                    }
                    "--tolerance" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--tolerance expects a fraction in [0, 1)".to_owned())
                        })?;
                        let t: f64 = v.parse().map_err(|_| {
                            CliError::Usage(format!(
                                "--tolerance expects a fraction in [0, 1), got `{v}`"
                            ))
                        })?;
                        if !(0.0..1.0).contains(&t) {
                            return Err(CliError::Usage(format!(
                                "--tolerance expects a fraction in [0, 1), got `{v}`"
                            )));
                        }
                        tolerance = Some(t);
                    }
                    "--threads" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--threads expects a positive number".to_owned())
                        })?;
                        let n: usize = v.parse().map_err(|_| {
                            CliError::Usage(format!(
                                "--threads expects a positive number, got `{v}`"
                            ))
                        })?;
                        if n == 0 {
                            return Err(CliError::Usage(
                                "--threads expects a positive number, got `0`".to_owned(),
                            ));
                        }
                        threads = Some(n);
                    }
                    "--out" => {
                        out = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--out expects a directory".to_owned())
                        })?);
                    }
                    other if other.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown option `{other}`")))
                    }
                    machine => machines.push(machine.to_owned()),
                }
            }
            if compare.is_none() {
                if against.is_some() {
                    return Err(CliError::Usage(
                        "--against requires --compare".to_owned(),
                    ));
                }
                if metric.is_some() || tolerance.is_some() {
                    return Err(CliError::Usage(
                        "--metric/--tolerance require --compare".to_owned(),
                    ));
                }
            }
            if compare.is_some() && against.is_none() && machines.len() != 1 {
                return Err(CliError::Usage(
                    "--compare without --against needs exactly one machine to bench".to_owned(),
                ));
            }
            Ok(Command::Bench {
                machines,
                quick,
                threads,
                out,
                backend,
                compare,
                against,
                metric,
                tolerance,
            })
        }
        "profile" => {
            let machine = required(&mut it, "profile", "<machine>")?;
            let mut loops = None;
            let mut format = ProfileFormat::Text;
            let mut out = None;
            let mut table6 = false;
            let mut backend = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--backend" => backend = Some(parse_backend(it.next())?),
                    "--loops" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--loops expects a number".to_owned())
                        })?;
                        loops = Some(v.parse().map_err(|_| {
                            CliError::Usage(format!("--loops expects a number, got `{v}`"))
                        })?);
                    }
                    "--format" => match it.next().map(String::as_str) {
                        Some("text") => format = ProfileFormat::Text,
                        Some("jsonl") => format = ProfileFormat::Jsonl,
                        Some("chrome") => format = ProfileFormat::Chrome,
                        Some("prom") => format = ProfileFormat::Prom,
                        other => {
                            return Err(CliError::Usage(format!(
                                "--format expects `text`, `jsonl`, `chrome`, or `prom`, got {other:?}"
                            )))
                        }
                    },
                    "--out" => {
                        out = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--out expects a file path".to_owned())
                        })?);
                    }
                    "--table6" => table6 = true,
                    other => {
                        return Err(CliError::Usage(format!("unknown option `{other}`")))
                    }
                }
            }
            Ok(Command::Profile {
                machine,
                loops,
                format,
                out,
                table6,
                backend,
            })
        }
        "serve" => {
            let mut socket = None;
            let mut queue = None;
            let mut deadline_ms = None;
            let mut chaos = None;
            let mut metrics = None;
            let mut metrics_every = None;
            let mut slow_ms = None;
            let mut certs = None;
            let mut uncertified = false;
            fn num<T: std::str::FromStr>(
                flag: &str,
                v: Option<&String>,
            ) -> Result<T, CliError> {
                v.and_then(|v| v.parse().ok()).ok_or_else(|| {
                    CliError::Usage(format!("{flag} expects a non-negative number"))
                })
            }
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => {
                        socket = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--socket expects a path".to_owned())
                        })?);
                    }
                    "--queue" => {
                        let n: usize = num("--queue", it.next())?;
                        if n == 0 {
                            return Err(CliError::Usage(
                                "--queue must be at least 1".to_owned(),
                            ));
                        }
                        queue = Some(n);
                    }
                    "--deadline-ms" => deadline_ms = Some(num("--deadline-ms", it.next())?),
                    "--chaos" => chaos = Some(num("--chaos", it.next())?),
                    "--metrics-every" => {
                        metrics_every = Some(num("--metrics-every", it.next())?);
                    }
                    "--slow-ms" => slow_ms = Some(num("--slow-ms", it.next())?),
                    "--metrics" => {
                        metrics = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--metrics expects a file path".to_owned())
                        })?);
                    }
                    "--certs" => {
                        certs = Some(it.next().cloned().ok_or_else(|| {
                            CliError::Usage("--certs expects a directory".to_owned())
                        })?);
                    }
                    "--uncertified" => uncertified = true,
                    other => {
                        return Err(CliError::Usage(format!("unknown option `{other}`")))
                    }
                }
            }
            if uncertified && certs.is_some() {
                return Err(CliError::Usage(
                    "--certs and --uncertified are mutually exclusive".to_owned(),
                ));
            }
            Ok(Command::Serve {
                socket,
                queue,
                deadline_ms,
                chaos,
                metrics,
                metrics_every,
                slow_ms,
                certs,
                uncertified,
            })
        }
        "models" => Ok(Command::Models),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "reduce" => {
            let machine = required(&mut it, "reduce", "<machine>")?;
            let mut objective = ParsedObjective::ResUses;
            let mut k: Option<u32> = None;
            let mut want_word = false;
            let mut emit_mdl = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--objective" => match it.next().map(String::as_str) {
                        Some("res-uses") => want_word = false,
                        Some("word") => want_word = true,
                        other => {
                            return Err(CliError::Usage(format!(
                                "--objective expects `res-uses` or `word`, got {other:?}"
                            )))
                        }
                    },
                    "--k" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--k expects a number".to_owned())
                        })?;
                        k = Some(v.parse().map_err(|_| {
                            CliError::Usage(format!("--k expects a number, got `{v}`"))
                        })?);
                    }
                    "--emit-mdl" => emit_mdl = true,
                    other => {
                        return Err(CliError::Usage(format!("unknown option `{other}`")))
                    }
                }
            }
            if want_word {
                objective = ParsedObjective::Word { k: k.unwrap_or(4) };
            } else if k.is_some() {
                return Err(CliError::Usage(
                    "--k only applies with --objective word".to_owned(),
                ));
            }
            Ok(Command::Reduce {
                machine,
                objective,
                emit_mdl,
            })
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `rmd help`)"
        ))),
    }
}

/// Validates a `--backend` argument against the shared
/// [`rmd_bench::BACKEND_NAMES`] vocabulary, returning the canonical
/// static name. Unknown names are a usage error (exit 2) that lists
/// the valid backends.
fn parse_backend(v: Option<&String>) -> Result<&'static str, CliError> {
    let list = rmd_bench::BACKEND_NAMES.join(", ");
    match v {
        None => Err(CliError::Usage(format!(
            "--backend expects one of: {list}"
        ))),
        Some(v) => rmd_bench::BACKEND_NAMES
            .iter()
            .find(|&&n| n == v.as_str())
            .copied()
            .ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown backend `{v}` (valid backends: {list})"
                ))
            }),
    }
}

/// Parses a `--mutant OP:SEED` argument against the rmd-fault operator
/// vocabulary, e.g. `drop-usage:3`. Unknown operators are a usage error
/// that lists the valid names.
fn parse_mutant(spec: &str) -> Result<(rmd_fault::MutationOp, u64), CliError> {
    let list = rmd_fault::ALL_OPERATORS.map(|o| o.name()).join(", ");
    let Some((name, seed)) = spec.split_once(':') else {
        return Err(CliError::Usage(format!(
            "--mutant expects OP:SEED (operators: {list})"
        )));
    };
    let op = rmd_fault::ALL_OPERATORS
        .into_iter()
        .find(|o| o.name() == name)
        .ok_or_else(|| {
            CliError::Usage(format!(
                "unknown mutation operator `{name}` (valid operators: {list})"
            ))
        })?;
    let seed: u64 = seed.parse().map_err(|_| {
        CliError::Usage(format!("--mutant expects a numeric seed, got `{seed}`"))
    })?;
    Ok((op, seed))
}

fn required(
    it: &mut core::slice::Iter<'_, String>,
    cmd: &str,
    what: &str,
) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("`rmd {cmd}` requires {what}")))
}

/// Built-in model names accepted anywhere a machine is expected.
pub const MODEL_NAMES: [&str; 5] = ["fig1", "mips", "alpha", "cydra5", "cydra5-subset"];

/// Loads a machine from a built-in model name or an `.mdl` file path,
/// then checks it against the default validation [`Limits`].
///
/// # Errors
///
/// [`CliError::Parse`] for unreadable files and MDL syntax errors
/// (with positions), [`CliError::Validation`] when the parsed machine
/// exceeds a resource limit.
pub fn load_machine(spec: &str) -> Result<MachineDescription, CliError> {
    let m = match spec {
        "fig1" => models::example_machine(),
        "mips" => models::mips_r3000(),
        "alpha" => models::alpha21064(),
        "cydra5" => models::cydra5(),
        "cydra5-subset" => models::cydra5_subset(),
        _ => {
            let text = std::fs::read_to_string(spec).map_err(|e| CliError::Parse {
                spec: spec.to_owned(),
                message: format!("cannot read: {e}"),
            })?;
            let (m, _) = mdl::parse_machine(&text).map_err(|e| CliError::Parse {
                spec: spec.to_owned(),
                message: e.to_string(),
            })?;
            m
        }
    };
    Limits::default().validate(&m).map_err(CliError::from)?;
    Ok(m)
}

/// Lints a machine spec without the [`Limits`] gate, so limit
/// violations surface as findings (`RMD-L005`) rather than hard
/// failures. Built-in names lint the expanded model; `.mdl` paths are
/// re-parsed with a source map so findings carry declaration spans.
fn lint_spec(spec: &str) -> Result<rmd_analyze::Report, CliError> {
    let mut report = match spec {
        "fig1" => rmd_analyze::lint_machine(&models::example_machine()),
        "mips" => rmd_analyze::lint_machine(&models::mips_r3000()),
        "alpha" => rmd_analyze::lint_machine(&models::alpha21064()),
        "cydra5" => rmd_analyze::lint_machine(&models::cydra5()),
        "cydra5-subset" => rmd_analyze::lint_machine(&models::cydra5_subset()),
        _ => {
            let text = std::fs::read_to_string(spec).map_err(|e| CliError::Parse {
                spec: spec.to_owned(),
                message: format!("cannot read: {e}"),
            })?;
            let (d, map) = mdl::parse_with_source_map(&text).map_err(|e| CliError::Parse {
                spec: spec.to_owned(),
                message: e.to_string(),
            })?;
            rmd_analyze::lint_alt(&d, Some(&map))
        }
    };
    report.subject = spec.to_owned();
    Ok(report)
}

/// Finding id for a disproved equivalence (`rmd certify`).
const CERTIFY_MISMATCH: &str = "RMD-C001";
/// Finding id for a certification that could not be completed.
const CERTIFY_ERROR: &str = "RMD-C002";

/// The display key for a machine spec: the model name itself, or the
/// file stem for `.mdl` paths (the same convention `bench` and
/// `profile` use to key their records).
fn spec_key(spec: &str) -> String {
    if MODEL_NAMES.contains(&spec) {
        spec.to_owned()
    } else {
        std::path::Path::new(spec)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| spec.to_owned())
    }
}

/// Runs the `bench --compare` guard on two loaded records: appends the
/// delta report to `out` on success, or returns
/// [`CliError::BenchRegression`] (exit 11) when the guard metric fell
/// below `old * (1 - tolerance)`.
fn run_compare(
    old: &serde_json::Value,
    new: &serde_json::Value,
    metric: Option<&str>,
    tolerance: Option<f64>,
    out: &mut String,
) -> Result<(), CliError> {
    let metric = metric.unwrap_or(rmd_bench::compare::DEFAULT_METRIC);
    let tolerance = tolerance.unwrap_or(rmd_bench::compare::DEFAULT_TOLERANCE);
    let cmp = rmd_bench::compare::compare_records(old, new, metric, tolerance)
        .map_err(CliError::Internal)?;
    if cmp.regressed {
        return Err(CliError::BenchRegression {
            report: cmp.report,
            message: format!(
                "{}: {} -> {} regressed beyond {:.0}% tolerance",
                cmp.metric,
                cmp.old_value,
                cmp.new_value,
                tolerance * 100.0
            ),
        });
    }
    out.push_str(&cmp.report);
    Ok(())
}

/// One-line proof statistics for a successful `certify_pair` run.
fn render_stats(stats: &rmd_certify::EquivalenceStats) -> String {
    let global = if stats.global.completed {
        format!("complete ({} states)", stats.global.product_states)
    } else {
        format!("skipped at budget ({} states)", stats.global.product_states)
    };
    format!(
        "  {} pairs, {} product states (max {}); modulo II<={} ({} comparisons); \
         global pass {global}; {} schedules revalidated\n",
        stats.pairs,
        stats.pair_product_states,
        stats.max_pair_states,
        stats.modulo.max_ii,
        stats.modulo.comparisons,
        stats.schedules_checked,
    )
}

/// Human-readable rendering of a full certificate.
fn render_cert_text(cert: &rmd_certify::Certificate) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{}: certified equivalent under {} objective(s)",
        cert.machine,
        cert.objectives.len()
    );
    let _ = writeln!(
        s,
        "  fingerprint {}, matrix {}, {} operations, {} resources",
        cert.fingerprint, cert.matrix_fingerprint, cert.operations, cert.resources
    );
    for o in &cert.objectives {
        let global = if o.global_completed {
            format!("complete ({} states)", o.global_states)
        } else {
            format!("skipped at budget ({} states)", o.global_states)
        };
        let _ = writeln!(
            s,
            "  {}: {} resources, {} usages; {} pairs, {} states (max {}); \
             modulo II<={}; global pass {global}; {} schedules",
            o.objective,
            o.reduced_resources,
            o.reduced_usages,
            o.pairs,
            o.pair_product_states,
            o.max_pair_states,
            o.modulo_max_ii,
            o.schedules_checked,
        );
    }
    s
}

/// Renders a clean (equivalence-proved) pair result in the requested
/// format. The report carries no findings; JSON and SARIF renderings
/// are the machine-readable "no findings" documents.
fn render_certify_clean(
    report: &rmd_analyze::Report,
    format: ReportFormat,
    headline: &str,
    stats: &rmd_certify::EquivalenceStats,
) -> String {
    match format {
        ReportFormat::Text => format!("{headline}\n{}", render_stats(stats)),
        ReportFormat::Json => {
            let mut j = report.render_json();
            j.push('\n');
            j
        }
        ReportFormat::Sarif => {
            let mut s = report.render_sarif();
            s.push('\n');
            s
        }
    }
}

/// Converts a certification failure into the exit-9 [`CliError::Certify`],
/// rendering the counterexample (or proof error) in the requested format
/// and — when the suspect description is in hand — replaying the
/// counterexample through the rmd-fault runtime query modules for
/// independent confirmation.
fn certify_failure(
    mut report: rmd_analyze::Report,
    format: ReportFormat,
    original: &MachineDescription,
    suspect: Option<&MachineDescription>,
    failure: &rmd_certify::CertifyFailure,
) -> CliError {
    let message = failure.to_string();
    let (id, mut text) = match failure {
        rmd_certify::CertifyFailure::Mismatch(cex) => {
            let mut t = String::from("NOT equivalent.\n");
            t.push_str(&cex.render(original));
            if let Some(s) = suspect {
                match rmd_fault::confirm_counterexample(original, s, cex) {
                    Some(div) => {
                        let _ = writeln!(
                            t,
                            "runtime replay confirms the divergence ({div})"
                        );
                    }
                    None => {
                        let _ = writeln!(
                            t,
                            "runtime replay did NOT reproduce the divergence"
                        );
                    }
                }
            }
            (CERTIFY_MISMATCH, t)
        }
        rmd_certify::CertifyFailure::Error(e) => {
            (CERTIFY_ERROR, format!("certification failed: {e}\n"))
        }
    };
    report.diagnostics.push(rmd_analyze::Diagnostic {
        id,
        severity: rmd_analyze::Severity::Error,
        message: text.trim_end().to_owned(),
        span: None,
    });
    let rendered = match format {
        ReportFormat::Text => text,
        ReportFormat::Json => {
            text = report.render_json();
            text.push('\n');
            text
        }
        ReportFormat::Sarif => {
            text = report.render_sarif();
            text.push('\n');
            text
        }
    };
    CliError::Certify {
        report: rendered,
        message,
    }
}

/// Writes a certificate into `dir` as `<machine>.json`, creating the
/// directory if needed.
fn write_certificate(
    cert: &rmd_certify::Certificate,
    dir: &str,
) -> Result<std::path::PathBuf, CliError> {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| CliError::Export {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let path = dir.join(format!("{}.json", cert.machine));
    std::fs::write(&path, cert.render_json()).map_err(|e| CliError::Export {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    Ok(path)
}

/// The `rmd certify` command body: default mode proves the machine's
/// own reductions and emits a certificate; `--against` proves an
/// arbitrary pair; `--mutant` certifies a seeded rmd-fault mutant
/// against the original and replays any counterexample through the
/// runtime query modules.
fn run_certify(
    spec: &str,
    against: Option<&str>,
    mutant: Option<(rmd_fault::MutationOp, u64)>,
    out_dir: Option<&str>,
    format: ReportFormat,
    options: &rmd_certify::CertifyOptions,
) -> Result<String, CliError> {
    let original = load_machine(spec)?;
    let mut report = rmd_analyze::Report::new(spec);
    report.fingerprint = Some(rmd_machine::content_fingerprint(&original));

    if let Some((op, seed)) = mutant {
        let mu = rmd_fault::mutate(&original, op, seed).ok_or_else(|| {
            CliError::Usage(format!("--mutant {op}:{seed} does not apply to `{spec}`"))
        })?;
        let suspect = match &mu.payload {
            rmd_fault::MutantPayload::Machine(m)
            | rmd_fault::MutantPayload::ReducedMachine(m) => m.clone(),
            rmd_fault::MutantPayload::QueryWord { .. } => {
                return Err(CliError::Usage(format!(
                    "--mutant {op}:{seed} corrupts a query module's packed state, not \
                     the description; the static certifier has nothing to compare — \
                     replay it with the rmd-fault differential oracle instead"
                )))
            }
        };
        return match rmd_certify::certify_pair(&original, &suspect, options) {
            Ok(stats) => {
                let headline = format!(
                    "mutant {op}:{seed} of `{spec}` ({}) is neutral: certified equivalent",
                    mu.what
                );
                Ok(render_certify_clean(&report, format, &headline, &stats))
            }
            Err(failure) => Err(certify_failure(
                report,
                format,
                &original,
                Some(&suspect),
                &failure,
            )),
        };
    }

    if let Some(b_spec) = against {
        let suspect = load_machine(b_spec)?;
        return match rmd_certify::certify_pair(&original, &suspect, options) {
            Ok(stats) => {
                let headline = format!(
                    "equivalent: `{spec}` and `{b_spec}` admit the same placements in \
                     every reachable scheduling state"
                );
                Ok(render_certify_clean(&report, format, &headline, &stats))
            }
            Err(failure) => Err(certify_failure(
                report,
                format,
                &original,
                Some(&suspect),
                &failure,
            )),
        };
    }

    match rmd_certify::certify_machine(&original, &spec_key(spec), options) {
        Ok(cert) => {
            let mut text = match format {
                ReportFormat::Text => render_cert_text(&cert),
                ReportFormat::Json => cert.render_json(),
                ReportFormat::Sarif => {
                    let mut s = report.render_sarif();
                    s.push('\n');
                    s
                }
            };
            if let Some(dir) = out_dir {
                let path = write_certificate(&cert, dir)?;
                let _ = writeln!(text, "[wrote {}]", path.display());
            }
            Ok(text)
        }
        Err(failure) => Err(certify_failure(report, format, &original, None, &failure)),
    }
}

/// The `rmd fuzz` command body.
///
/// Campaign mode generates `count` machines from `seed` and pushes each
/// through the differential pipeline; minimized failures are written
/// into the corpus directory (when given) and the run exits 10.
/// `--replay` instead re-runs every `.mdl` entry under the corpus
/// directory and checks its recorded expectation.
fn run_fuzz(
    seed: u64,
    count: u32,
    size: &str,
    mutant: Option<(rmd_fault::MutationOp, u64)>,
    corpus: Option<&str>,
    replay: bool,
) -> Result<String, CliError> {
    let cap = 1 << 18;
    if replay {
        let dir = corpus.unwrap_or("corpus");
        let mut entries: Vec<(String, String)> = Vec::new();
        let read = std::fs::read_dir(dir).map_err(|e| CliError::Parse {
            spec: dir.to_owned(),
            message: format!("cannot read corpus directory: {e}"),
        })?;
        for item in read {
            let path = item
                .map_err(|e| CliError::Parse {
                    spec: dir.to_owned(),
                    message: e.to_string(),
                })?
                .path();
            if path.extension().is_some_and(|x| x == "mdl") {
                let text = std::fs::read_to_string(&path).map_err(|e| CliError::Parse {
                    spec: path.display().to_string(),
                    message: format!("cannot read: {e}"),
                })?;
                entries.push((path.display().to_string(), text));
            }
        }
        entries.sort();
        return match rmd_fault::replay_corpus(&entries) {
            Ok(summaries) => {
                let mut out = String::new();
                for s in &summaries {
                    let _ = writeln!(out, "{s}");
                }
                let _ = writeln!(out, "replayed {} corpus entries, all expectations hold", summaries.len());
                Ok(out)
            }
            Err(message) => Err(CliError::Fuzz {
                report: format!("{message}\n"),
                message,
            }),
        };
    }

    let cfg = rmd_fault::FuzzConfig {
        seed,
        count,
        size: rmd_fault::GenConfig::preset(size)
            .ok_or_else(|| CliError::Usage(format!("unknown size preset `{size}`")))?,
        mutant,
        automata_cap: cap,
    };
    let report = rmd_fault::fuzz(&cfg);
    let mut rendered = report.render();
    if !report.is_clean() {
        if let Some(dir_str) = corpus {
            let dir = std::path::Path::new(dir_str);
            std::fs::create_dir_all(dir).map_err(|e| CliError::Export {
                path: dir_str.to_owned(),
                message: e.to_string(),
            })?;
            for f in &report.failures {
                let path = dir.join(format!("fuzz-{:016x}.mdl", f.case_seed));
                std::fs::write(&path, rmd_fault::render_corpus_entry(f)).map_err(|e| {
                    CliError::Export {
                        path: path.display().to_string(),
                        message: e.to_string(),
                    }
                })?;
                let _ = writeln!(rendered, "[wrote {}]", path.display());
            }
        }
        return Err(CliError::Fuzz {
            report: rendered,
            message: format!(
                "{} divergence(s) in {} cases (seed {seed})",
                report.failures.len(),
                report.cases
            ),
        });
    }
    Ok(rendered)
}

/// Executes a command, returning its stdout text.
///
/// # Errors
///
/// Returns a [`CliError`] classified by pipeline stage; print it to
/// stderr and exit with [`CliError::exit_code`].
pub fn run(cmd: &Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Help => {
            out.push_str(HELP);
        }
        Command::Models => {
            for name in MODEL_NAMES {
                let m = load_machine(name)?;
                let _ = writeln!(
                    out,
                    "{name:14} {} resources, {} operations, {} usages",
                    m.num_resources(),
                    m.num_operations(),
                    m.total_usages()
                );
            }
        }
        Command::Stats { machine } => {
            let m = load_machine(machine)?;
            let f = ForbiddenMatrix::compute(&m);
            let classes = ClassPartition::compute(&m, &f);
            let cm = classes
                .class_machine(&m)
                .map_err(|e| CliError::Validation(RmdError::from(e)))?;
            let cf = ForbiddenMatrix::compute(&cm);
            let _ = writeln!(out, "{m}");
            let _ = writeln!(
                out,
                "operation classes:       {}",
                classes.num_classes()
            );
            let _ = writeln!(
                out,
                "forbidden latencies:     {} (max {})",
                cf.total_nonneg(),
                cf.max_latency()
            );
            let _ = writeln!(
                out,
                "avg usages per class:    {:.2}",
                cm.avg_usages_per_op()
            );
            let _ = writeln!(
                out,
                "longest table:           {} cycles",
                m.max_table_length()
            );
        }
        Command::Matrix { machine } => {
            let m = load_machine(machine)?;
            let f = ForbiddenMatrix::compute(&m);
            for (x, xop) in m.ops() {
                for (y, yop) in m.ops() {
                    let s = f.get(x, y);
                    if !s.is_empty() {
                        let _ =
                            writeln!(out, "F[{}][{}] = {s}", xop.name(), yop.name());
                    }
                }
            }
        }
        Command::Render { machine } => {
            let m = load_machine(machine)?;
            out.push_str(&rmd_machine::render::machine(&m));
        }
        Command::Table { machine } => {
            let m = load_machine(machine)?;
            let report = rmd_bench::reduction_report(&m, &[32, 64]);
            out.push_str(&rmd_bench::render_report(&report));
        }
        Command::Lint {
            machine,
            format,
            deny_warnings,
        } => {
            let mut report = lint_spec(machine)?;
            if *deny_warnings {
                report.escalate_warnings();
            }
            let rendered = match format {
                ReportFormat::Text => report.render_text(),
                ReportFormat::Json => {
                    let mut j = report.render_json();
                    j.push('\n');
                    j
                }
                ReportFormat::Sarif => {
                    let mut s = report.render_sarif();
                    s.push('\n');
                    s
                }
            };
            if report.errors() > 0 {
                return Err(CliError::Lint {
                    report: rendered,
                    errors: report.errors(),
                });
            }
            out.push_str(&rendered);
        }
        Command::Certify {
            machine,
            against,
            mutant,
            out: out_dir,
            format,
            max_ii,
            budget,
        } => {
            let options = rmd_certify::CertifyOptions {
                max_ii: *max_ii,
                global_budget: budget
                    .unwrap_or(rmd_certify::CertifyOptions::default().global_budget),
                ..rmd_certify::CertifyOptions::default()
            };
            let text = run_certify(
                machine,
                against.as_deref(),
                *mutant,
                out_dir.as_deref(),
                *format,
                &options,
            )?;
            out.push_str(&text);
        }
        Command::Fuzz {
            seed,
            count,
            size,
            mutant,
            corpus,
            replay,
        } => {
            let text = run_fuzz(*seed, *count, size, *mutant, corpus.as_deref(), *replay)?;
            out.push_str(&text);
        }
        Command::Bench {
            machines,
            quick,
            threads,
            out: out_dir,
            backend,
            compare,
            against,
            metric,
            tolerance,
        } => {
            use rmd_bench::benchcmd;
            // Pure file-vs-file trajectory check: no benchmark runs at
            // all, just two committed records and the guard.
            if let (Some(baseline), Some(new_path)) = (compare, against) {
                let old_rec = rmd_bench::compare::load_record(std::path::Path::new(baseline))
                    .map_err(CliError::Internal)?;
                let new_rec = rmd_bench::compare::load_record(std::path::Path::new(new_path))
                    .map_err(CliError::Internal)?;
                run_compare(&old_rec, &new_rec, metric.as_deref(), *tolerance, &mut out)?;
                return Ok(out);
            }
            let specs: Vec<String> = if machines.is_empty() {
                vec!["fig1".to_owned(), "cydra5-subset".to_owned()]
            } else {
                machines.clone()
            };
            let opts = benchcmd::BenchOptions {
                quick: *quick,
                threads: threads.unwrap_or_else(benchcmd::default_threads),
                out_dir: out_dir.as_deref().unwrap_or(".").into(),
                backend: *backend,
            };
            for spec in &specs {
                let m = load_machine(spec)?;
                let mut rec = benchcmd::bench_machine(&m, &opts);
                // The serve load-driver lives in rmd-serve; glue its
                // report into the plain-data record section here so
                // rmd-bench stays free of a daemon dependency.
                let load_opts = rmd_serve::LoadOptions {
                    requests: if *quick { 32 } else { 200 },
                    ..rmd_serve::LoadOptions::default()
                };
                let load = rmd_serve::run_load(&m, &load_opts).map_err(|e| {
                    CliError::Internal(format!("serve load driver failed: {e}"))
                })?;
                rec.serve = Some(benchcmd::ServeBench {
                    requests: load.requests,
                    ok: load.ok,
                    errors: load.errors,
                    shed: load.shed,
                    req_per_s: load.req_per_s,
                    p50_ns: load.p50_ns,
                    p99_ns: load.p99_ns,
                });
                // Key the record by the spec the user asked for (model
                // name, or file stem for .mdl paths), in canonical
                // underscore spelling, so filenames are predictable
                // regardless of internal machine names and spelling
                // variants (`cydra5-subset` vs `cydra5_subset`) can
                // never fork the trajectory into near-duplicate files.
                rec.machine = benchcmd::sanitize_machine_name(&spec_key(spec));
                let path = benchcmd::write_bench_record(&rec, &opts.out_dir)
                    .map_err(|e| CliError::Internal(format!("cannot write bench record: {e}")))?;
                let _ = writeln!(
                    out,
                    "{}: {:.0} queries/s, {:.1} reductions/s",
                    rec.machine, rec.query.queries_per_sec, rec.reduction.reductions_per_sec
                );
                if let Some(s) = &rec.scheduler {
                    let _ = writeln!(
                        out,
                        "  suite: {} loops / {} ops; serial {:.0} ms, parallel {:.0} ms \
                         on {} threads (speedup {:.2}, identical schedules: {})",
                        s.loops,
                        s.ops_scheduled,
                        s.serial_wall_ms,
                        s.parallel_wall_ms,
                        rec.threads,
                        s.speedup,
                        s.schedules_identical
                    );
                    for e in &s.speedup_by_threads {
                        let _ = writeln!(
                            out,
                            "    @{} threads: {:.0} ms (speedup {:.2}, identical: {})",
                            e.threads, e.parallel_wall_ms, e.speedup, e.schedules_identical
                        );
                    }
                }
                if let Some(s) = &rec.stress {
                    let _ = writeln!(
                        out,
                        "  stress: {} loops / {} ops; serial {:.0} ms, parallel {:.0} ms \
                         (speedup {:.2}, identical schedules: {})",
                        s.loops,
                        s.ops_scheduled,
                        s.serial_wall_ms,
                        s.parallel_wall_ms,
                        s.speedup,
                        s.schedules_identical
                    );
                    for e in &s.speedup_by_threads {
                        let _ = writeln!(
                            out,
                            "    @{} threads: {:.0} ms (speedup {:.2}, identical: {})",
                            e.threads, e.parallel_wall_ms, e.speedup, e.schedules_identical
                        );
                    }
                }
                if let Some(s) = &rec.serve {
                    let _ = writeln!(
                        out,
                        "  serve: {:.0} req/s, p50 {:.1} us, p99 {:.1} us, {} shed",
                        s.req_per_s,
                        s.p50_ns as f64 / 1e3,
                        s.p99_ns as f64 / 1e3,
                        s.shed
                    );
                }
                let _ = writeln!(out, "  [recorded {}]", path.display());
                if let Some(baseline) = compare {
                    // Guard the fresh trajectory point against the
                    // committed baseline (exit 11 on a regression).
                    let old_rec =
                        rmd_bench::compare::load_record(std::path::Path::new(baseline))
                            .map_err(CliError::Internal)?;
                    let new_rec = rmd_bench::compare::load_record(&path)
                        .map_err(CliError::Internal)?;
                    run_compare(&old_rec, &new_rec, metric.as_deref(), *tolerance, &mut out)?;
                }
            }
        }
        Command::Profile {
            machine,
            loops,
            format,
            out: out_file,
            table6,
            backend,
        } => {
            use rmd_bench::profile;
            let m = load_machine(machine)?;
            let opts = profile::ProfileOptions {
                loops: loops.unwrap_or(profile::DEFAULT_PROFILE_LOOPS),
                backend: *backend,
                ..profile::ProfileOptions::default()
            };
            let p = profile::profile_machine(&m, &opts);
            let rendered = match format {
                ProfileFormat::Text => profile::render_profile(&p),
                ProfileFormat::Jsonl => rmd_obs::export::events_to_jsonl(&p.events),
                ProfileFormat::Chrome => {
                    let mut s = rmd_obs::export::events_to_chrome_trace(&p.events);
                    s.push('\n');
                    s
                }
                ProfileFormat::Prom => rmd_obs::export::registry_to_prom(&p.registry),
            };
            match out_file {
                Some(path) => {
                    std::fs::write(path, &rendered).map_err(|e| CliError::Export {
                        path: path.clone(),
                        message: e.to_string(),
                    })?;
                    let _ = writeln!(out, "[wrote {path}]");
                }
                None => out.push_str(&rendered),
            }
            if *table6 {
                if *format != ProfileFormat::Text || out_file.is_some() {
                    // The full text report embeds the table already when
                    // it goes to stdout; otherwise render it here.
                    out.push_str(&profile::render_work_table(&p));
                }
                let mut rec = profile::profile_record(&p);
                // Key the record by the requested spec, like `bench`.
                rec.machine = if MODEL_NAMES.contains(&machine.as_str()) {
                    machine.clone()
                } else {
                    std::path::Path::new(machine)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| machine.clone())
                };
                let dir = std::path::Path::new("results");
                let path =
                    profile::write_profile_record(&rec, dir).map_err(|e| CliError::Export {
                        path: dir.join(format!("PROFILE_{}.json", rec.machine)).display().to_string(),
                        message: e.to_string(),
                    })?;
                let _ = writeln!(out, "[recorded {}]", path.display());
            }
        }
        Command::Serve {
            socket,
            queue,
            deadline_ms,
            chaos,
            metrics,
            metrics_every,
            slow_ms,
            certs,
            uncertified,
        } => {
            // Replies go to stdout (stdio mode) or the socket; the run
            // summary goes to stderr inside the daemon. Nothing is
            // returned here so stdout stays a pure reply stream.
            //
            // The certificate gate is on by default: a machine is only
            // admitted when some certificate under the cert directory
            // (default `certs/`) vouches for its content fingerprint.
            let cert_dir = if *uncertified {
                None
            } else {
                Some(std::path::PathBuf::from(
                    certs.as_deref().unwrap_or("certs"),
                ))
            };
            let opts = rmd_serve::ServeOptions {
                socket: socket.as_ref().map(std::path::PathBuf::from),
                queue_cap: queue.unwrap_or(64),
                metrics_path: metrics.as_ref().map(std::path::PathBuf::from),
                metrics_every: metrics_every.unwrap_or(0),
                slow_ms: slow_ms.unwrap_or(0),
                engine: rmd_serve::EngineConfig {
                    default_deadline_ms: deadline_ms.unwrap_or(0),
                    chaos: chaos.map(rmd_serve::Chaos::new),
                    cert_dir,
                    ..rmd_serve::EngineConfig::default()
                },
                ..rmd_serve::ServeOptions::default()
            };
            rmd_serve::run(&opts).map_err(|e| CliError::Serve {
                message: e.to_string(),
            })?;
        }
        Command::Verify { left, right } => {
            let a = load_machine(left)?;
            let b = load_machine(right)?;
            match verify_equivalence(&a, &b) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "equivalent: `{left}` and `{right}` forbid exactly the same latencies"
                    );
                }
                Err(e) => {
                    return Err(CliError::Verification {
                        message: format!("NOT equivalent: {e}"),
                    })
                }
            }
        }
        Command::Reduce {
            machine,
            objective,
            emit_mdl,
        } => {
            let m = load_machine(machine)?;
            let red = try_reduce(&m, (*objective).into(), &ReduceOptions::default())
                .map_err(CliError::from)?;
            verify_equivalence(&m, &red.reduced).map_err(|e| CliError::Verification {
                message: format!("reduction broke equivalence: {e}"),
            })?;
            let _ = writeln!(
                out,
                "reduced `{}` under {:?}:",
                m.name(),
                Objective::from(*objective)
            );
            let _ = writeln!(
                out,
                "  resources  {:4} -> {:4}",
                m.num_resources(),
                red.reduced.num_resources()
            );
            let _ = writeln!(
                out,
                "  usages     {:4} -> {:4}",
                m.total_usages(),
                red.reduced.total_usages()
            );
            let _ = writeln!(
                out,
                "  generating set {} resources, {} after pruning",
                red.genset_size, red.pruned_size
            );
            let _ = writeln!(out, "  equivalence verified: identical forbidden latencies");
            if *emit_mdl {
                out.push('\n');
                out.push_str(&mdl::print(&red.reduced));
            }
        }
    }
    Ok(out)
}

/// The help text.
pub const HELP: &str = "\
rmd — reduced multipipeline machine descriptions (PLDI '96)

USAGE:
    rmd stats  <machine>                     description statistics
    rmd reduce <machine> [options]           reduce + verify
    rmd verify <machine-a> <machine-b>       exact equivalence check
    rmd matrix <machine>                     forbidden-latency matrix
    rmd render <machine>                     ASCII reservation tables
    rmd table  <machine>                     paper-style reduction report
    rmd lint   <machine> [options]           lint the description
    rmd certify <machine> [options]          prove reductions equivalent ->
                                             certs/<machine>.json
    rmd fuzz   [options]                     generative differential fuzzing
    rmd bench  [<machine>...] [options]      perf workloads -> BENCH_*.json
    rmd profile <machine> [options]          traced run -> phase/latency report
    rmd serve  [options]                     line-JSON scheduling daemon
    rmd models                               list built-in models

OPTIONS (reduce):
    --objective res-uses|word                selection objective [res-uses]
    --k <N>                                  cycles per word (with `word`) [4]
    --emit-mdl                               print the reduced machine as MDL

OPTIONS (lint):
    --format text|json|sarif                 report format [text]
    --deny warnings                          treat warnings as errors

OPTIONS (certify):
    --out <DIR>                              write the certificate JSON to
                                             DIR/<machine>.json
    --against <machine>                      prove equivalence of two given
                                             descriptions instead of the
                                             machine's own reductions
    --mutant <OP:SEED>                       certify a seeded rmd-fault
                                             mutant against the original;
                                             counterexamples are replayed
                                             through the runtime query
                                             modules
    --format text|json|sarif                 result format [text]
    --max-ii <N>                             cap the modulo pass's II bound
                                             (default: the complete bound)
    --budget <N>                             global-pass product-state
                                             budget

OPTIONS (fuzz):
    --seed <N>                               base campaign seed [0]
    --count <N>                              machines to generate [100]
    --size small|medium|large                generator size envelope [small]
    --mutant <OP:SEED>                       corrupt every case's reduction
                                             with this seeded rmd-fault
                                             operator (harness self-test)
    --corpus <DIR>                           write minimized failures here
                                             as replayable .mdl entries
    --replay                                 replay the corpus directory
                                             [corpus] instead of fuzzing

OPTIONS (bench):
    --quick                                  smaller workloads (CI smoke)
    --threads <N>                            worker threads [host cores, min 4]
    --out <DIR>                              output directory [.]
    --backend <NAME>                         query_window workload backend
                                             [bitvec]
    --compare <OLD.json>                     diff the fresh record (exactly
                                             one machine) against this
                                             baseline; exit 11 when the
                                             guard metric regresses
    --against <NEW.json>                     with --compare: diff two
                                             existing records, run nothing
    --metric <PATH>                          guard metric, dotted path
                                             [query.queries_per_sec]
    --tolerance <FRAC>                       tolerated relative drop in
                                             [0, 1) [0.5]

OPTIONS (profile):
    --loops <N>                              suite loops to schedule [64]
    --format text|jsonl|chrome|prom          report format [text]
    --out <FILE>                             write the report to FILE
    --table6                                 append the per-function work
                                             table and record it under
                                             results/PROFILE_<name>.json
    --backend <NAME>                         meter only this query backend

OPTIONS (serve):
    --socket <PATH>                          serve a unix socket instead of
                                             stdin/stdout
    --queue <N>                              admission-queue depth [64];
                                             overflow is shed with a typed
                                             `overloaded` reply
    --deadline-ms <N>                        default per-request deadline
                                             [0 = none]
    --chaos <SEED>                           deterministic fault injection
                                             (corrupt/slow/panic ~1/10 each)
    --metrics <FILE>                         write flushed rmd-obs metrics
                                             JSON here [stderr]
    --metrics-every <N>                      also emit a metrics snapshot
                                             (JSONL) every N requests while
                                             serving [0 = off]
    --slow-ms <N>                            log a structured JSONL record
                                             for every request over N ms
                                             [0 = off]
    --certs <DIR>                            admit only machines some
                                             certificate in DIR vouches
                                             for [certs]
    --uncertified                            serve without the certificate
                                             gate

Valid --backend names: discrete, bitvec, compiled, modulo_discrete,
modulo_bitvec; anything else is a usage error (exit 2).

Bench with no machines runs the default pair (fig1, cydra5-subset) and
writes one BENCH_<name>.json record per machine into the output
directory; record filenames use canonical underscore spelling
(BENCH_cydra5_subset.json). With --compare the run becomes a trajectory
guard: the fresh record (or, with --against, a second existing record)
is diffed against the baseline, every shared numeric leaf is reported,
and the invocation exits 11 when the guard metric falls below
old * (1 - tolerance). Metrics are higher-is-better, so improvements
never fail the guard.

Profile runs the reduction pipeline, all five query backends, and the
loop-suite scheduler under rmd-obs tracing; `jsonl` dumps the raw event
stream, `chrome` a trace loadable in chrome://tracing, and `prom` the
merged metric registry as Prometheus/OpenMetrics text exposition.
Export failures (--out / --table6) exit with code 7.

Lint exits 0 when no error-severity findings remain and 6 otherwise;
the report is always printed on stdout.

Certify statically proves that every reduction of the machine admits
exactly the same placements as the original, in every reachable linear
and modulo scheduling state, and writes a deterministic certificate
that `rmd serve` checks before admitting the machine. It exits 0 on a
proof and 9 on a disproof (printing the counterexample trace) or when
the proof cannot be completed.

Fuzz generates seeded, structure-aware machine descriptions and checks
render/parse round-trips, lints, both reduction objectives, and a
differential query trace across all five backends plus the automata
baseline. Failures are minimized, cross-checked by the static prover,
and (with --corpus) written as self-contained regression entries; a
failing campaign or a violated replay expectation exits 10. Equal
seeds reproduce identical campaigns.

Serve answers every request in-band with a typed JSON reply and exits 0
on a graceful drain (SIGTERM, EOF, or a `shutdown` request); only
transport setup failures (e.g. the socket path cannot be bound) exit
with code 8. Machines are admitted only when a certificate under the
--certs directory vouches for their content fingerprint, unless
--uncertified is given; uncertified machines are refused with a typed
`uncertified` reply. Live telemetry: a `{\"type\":\"metrics\"}` frame
returns a registry snapshot in-band, `\"trace\":true` on any request
returns its span tree inline (replies without it stay byte-identical
to the offline CLI), and panics, quarantines, and drains dump a
flight-recorder black box of the last requests to stderr.

<machine> is a built-in model name (fig1, mips, alpha, cydra5,
cydra5-subset) or a path to an .mdl file.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_reduce_with_options() {
        let c = parse_args(&args(&[
            "reduce",
            "mips",
            "--objective",
            "word",
            "--k",
            "7",
            "--emit-mdl",
        ]))
        .expect("valid command line");
        assert_eq!(
            c,
            Command::Reduce {
                machine: "mips".into(),
                objective: ParsedObjective::Word { k: 7 },
                emit_mdl: true,
            }
        );
    }

    fn usage_error(args_: &[&str]) -> CliError {
        match parse_args(&args(args_)) {
            Err(e) => e,
            Ok(c) => unreachable!("expected a usage error, parsed {c:?}"),
        }
    }

    #[test]
    fn parses_serve_with_options() {
        let c = parse_args(&args(&[
            "serve",
            "--socket",
            "/tmp/rmd.sock",
            "--queue",
            "8",
            "--deadline-ms",
            "250",
            "--chaos",
            "197",
            "--metrics",
            "metrics.json",
        ]))
        .expect("valid command line");
        assert_eq!(
            c,
            Command::Serve {
                socket: Some("/tmp/rmd.sock".into()),
                queue: Some(8),
                deadline_ms: Some(250),
                chaos: Some(197),
                metrics: Some("metrics.json".into()),
                metrics_every: None,
                slow_ms: None,
                certs: None,
                uncertified: false,
            }
        );
        let c = parse_args(&args(&["serve", "--certs", "my-certs"])).expect("parses");
        assert_eq!(
            c,
            Command::Serve {
                socket: None,
                queue: None,
                deadline_ms: None,
                chaos: None,
                metrics: None,
                metrics_every: None,
                slow_ms: None,
                certs: Some("my-certs".into()),
                uncertified: false,
            }
        );
        let c = parse_args(&args(&["serve", "--uncertified"])).expect("parses");
        assert!(matches!(c, Command::Serve { uncertified: true, .. }));
    }

    #[test]
    fn rejects_bad_serve_usage_with_exit_code_2() {
        for bad in [
            &["serve", "--socket"][..],
            &["serve", "--queue", "0"],
            &["serve", "--queue", "many"],
            &["serve", "--deadline-ms", "-1"],
            &["serve", "--chaos"],
            &["serve", "--metrics"],
            &["serve", "--certs"],
            &["serve", "--certs", "c", "--uncertified"],
            &["serve", "--nope"],
        ] {
            let e = usage_error(bad);
            assert_eq!(e.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn serve_transport_failure_exits_8() {
        // Binding a socket inside a directory that does not exist is a
        // transport setup failure — the only path to exit code 8. The
        // CLI reports it as a typed error instead of panicking.
        let cmd = Command::Serve {
            socket: Some("/nonexistent-dir/rmd.sock".into()),
            queue: None,
            deadline_ms: None,
            chaos: None,
            metrics: None,
            metrics_every: None,
            slow_ms: None,
            certs: None,
            uncertified: true,
        };
        let e = run(&cmd).expect_err("bind must fail");
        assert_eq!(e.exit_code(), 8);
        assert!(matches!(e, CliError::Serve { .. }), "{e:?}");
    }

    #[test]
    fn parses_fuzz_with_options() {
        let c = parse_args(&args(&["fuzz"])).expect("defaults parse");
        assert_eq!(
            c,
            Command::Fuzz {
                seed: 0,
                count: 100,
                size: "small".into(),
                mutant: None,
                corpus: None,
                replay: false,
            }
        );
        let c = parse_args(&args(&[
            "fuzz",
            "--seed",
            "42",
            "--count",
            "500",
            "--size",
            "medium",
            "--mutant",
            "drop-usage:1",
            "--corpus",
            "corpus",
        ]))
        .expect("valid command line");
        assert_eq!(
            c,
            Command::Fuzz {
                seed: 42,
                count: 500,
                size: "medium".into(),
                mutant: Some((rmd_fault::MutationOp::DropUsage, 1)),
                corpus: Some("corpus".into()),
                replay: false,
            }
        );
        let c = parse_args(&args(&["fuzz", "--replay", "--corpus", "c"])).expect("parses");
        assert!(matches!(c, Command::Fuzz { replay: true, .. }));
    }

    #[test]
    fn rejects_bad_fuzz_usage_with_exit_code_2() {
        for bad in [
            &["fuzz", "--seed"][..],
            &["fuzz", "--seed", "many"],
            &["fuzz", "--count", "0"],
            &["fuzz", "--size", "gigantic"],
            &["fuzz", "--mutant", "bogus:1"],
            &["fuzz", "--corpus"],
            &["fuzz", "--replay", "--mutant", "drop-usage:1"],
            &["fuzz", "--nope"],
        ] {
            let e = usage_error(bad);
            assert_eq!(e.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn fuzz_campaign_is_clean_at_head() {
        let out = run(&Command::Fuzz {
            seed: 0xF00D,
            count: 5,
            size: "small".into(),
            mutant: None,
            corpus: None,
            replay: false,
        })
        .expect("HEAD finds no divergences");
        assert!(out.contains("passed            5"), "{out}");
    }

    #[test]
    fn fuzz_mutant_campaign_exits_10_and_writes_corpus() {
        let dir = std::env::temp_dir().join(format!("rmd-fuzz-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = Command::Fuzz {
            seed: 0xBEEF,
            count: 8,
            size: "small".into(),
            mutant: Some((rmd_fault::MutationOp::DropUsage, 1)),
            corpus: Some(dir.display().to_string()),
            replay: false,
        };
        let e = run(&cmd).expect_err("semantic mutants must be caught");
        assert_eq!(e.exit_code(), 10);
        let CliError::Fuzz { report, .. } = &e else {
            unreachable!("expected a fuzz error, got {e:?}");
        };
        assert!(report.contains("failure: stage differential"), "{report}");
        // The corpus replays clean through the same CLI path.
        let replayed = run(&Command::Fuzz {
            seed: 0,
            count: 1,
            size: "small".into(),
            mutant: None,
            corpus: Some(dir.display().to_string()),
            replay: true,
        })
        .expect("written corpus replays with expectations held");
        assert!(replayed.contains("still caught"), "{replayed}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_usage_with_exit_code_2() {
        for bad in [
            &["reduce"][..],
            &["reduce", "mips", "--k", "2"][..],
            &["frobnicate"][..],
            &["reduce", "mips", "--objective", "speed"][..],
        ] {
            let e = usage_error(bad);
            assert!(matches!(e, CliError::Usage(_)), "{bad:?} -> {e:?}");
            assert_eq!(e.exit_code(), 2);
        }
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).expect("empty args"), Command::Help);
        assert!(run(&Command::Help).expect("help runs").contains("USAGE"));
    }

    #[test]
    fn stats_and_reduce_run_on_builtin_models() {
        let s = run(&Command::Stats {
            machine: "fig1".into(),
        })
        .expect("stats on builtin model");
        assert!(s.contains("operation classes"));
        let r = run(&Command::Reduce {
            machine: "fig1".into(),
            objective: ParsedObjective::ResUses,
            emit_mdl: true,
        })
        .expect("reduce on builtin model");
        assert!(r.contains("resources     5 ->    2"), "{r}");
        assert!(r.contains("machine \"fig1-example-reduced\""));
    }

    #[test]
    fn verify_detects_equivalence_and_difference() {
        assert!(run(&Command::Verify {
            left: "fig1".into(),
            right: "fig1".into(),
        })
        .is_ok());
        match run(&Command::Verify {
            left: "fig1".into(),
            right: "mips".into(),
        }) {
            Err(e @ CliError::Verification { .. }) => {
                assert_eq!(e.exit_code(), 5);
                assert!(e.to_string().contains("NOT equivalent"));
            }
            other => unreachable!("expected a verification error, got {other:?}"),
        }
    }

    #[test]
    fn load_machine_reports_missing_files_as_parse_errors() {
        match load_machine("/no/such/file.mdl") {
            Err(e @ CliError::Parse { .. }) => {
                assert_eq!(e.exit_code(), 3);
                assert!(e.to_string().contains("cannot read"));
            }
            other => unreachable!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn emitted_mdl_reparses() {
        let out = run(&Command::Reduce {
            machine: "cydra5-subset".into(),
            objective: ParsedObjective::Word { k: 4 },
            emit_mdl: true,
        })
        .expect("reduce succeeds");
        let mdl_start = out.find("machine \"").expect("mdl present");
        let (m, _) =
            rmd_machine::mdl::parse_machine(&out[mdl_start..]).expect("emitted mdl reparses");
        assert!(m.num_resources() > 0);
    }
}

#[cfg(test)]
mod lint_tests {
    use super::*;
    use std::path::Path;

    fn fixture(name: &str) -> String {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../analyze/tests/fixtures")
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn parses_lint_with_options() {
        let c = parse_args(
            &["lint", "mips", "--format", "json", "--deny", "warnings"]
                .map(String::from),
        )
        .expect("valid command line");
        assert_eq!(
            c,
            Command::Lint {
                machine: "mips".into(),
                format: ReportFormat::Json,
                deny_warnings: true,
            }
        );
        let c = parse_args(&["lint", "mips", "--format", "sarif"].map(String::from))
            .expect("valid command line");
        assert_eq!(
            c,
            Command::Lint {
                machine: "mips".into(),
                format: ReportFormat::Sarif,
                deny_warnings: false,
            }
        );
        for bad in [
            &["lint"][..],
            &["lint", "mips", "--format", "yaml"][..],
            &["lint", "mips", "--deny", "infos"][..],
        ] {
            let e = parse_args(&bad.iter().map(|s| s.to_string()).collect::<Vec<_>>())
                .expect_err("usage error");
            assert_eq!(e.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn builtin_models_lint_without_errors() {
        for name in MODEL_NAMES {
            let out = run(&Command::Lint {
                machine: name.into(),
                format: ReportFormat::Text,
                deny_warnings: true,
            })
            .expect("built-ins pass --deny warnings");
            assert!(out.contains("0 error(s)"), "{name}: {out}");
        }
    }

    #[test]
    fn error_fixture_exits_with_code_6_and_keeps_the_report() {
        match run(&Command::Lint {
            machine: fixture("l005_table_overrun.mdl"),
            format: ReportFormat::Text,
            deny_warnings: false,
        }) {
            Err(e @ CliError::Lint { .. }) => {
                assert_eq!(e.exit_code(), 6);
                let CliError::Lint { report, errors } = e else {
                    unreachable!()
                };
                assert!(errors >= 1);
                assert!(report.contains("RMD-L005"), "{report}");
            }
            other => unreachable!("expected a lint failure, got {other:?}"),
        }
    }

    #[test]
    fn deny_warnings_escalates_a_warning_only_fixture() {
        let spec = fixture("l001_dead_resource.mdl");
        let out = run(&Command::Lint {
            machine: spec.clone(),
            format: ReportFormat::Text,
            deny_warnings: false,
        })
        .expect("warnings alone exit 0");
        assert!(out.contains("RMD-L001"), "{out}");
        let e = run(&Command::Lint {
            machine: spec,
            format: ReportFormat::Text,
            deny_warnings: true,
        })
        .expect_err("--deny warnings escalates");
        assert_eq!(e.exit_code(), 6);
    }

    #[test]
    fn json_format_is_one_line_and_machine_readable() {
        let out = run(&Command::Lint {
            machine: "fig1".into(),
            format: ReportFormat::Json,
            deny_warnings: false,
        })
        .expect("fig1 lints clean of errors");
        assert_eq!(out.lines().count(), 1, "{out}");
        assert!(out.starts_with("{\"subject\":\"fig1\""), "{out}");
        assert!(out.contains("\"errors\":0"), "{out}");
        // The report carries the same content fingerprint `rmd serve`
        // caches under and `rmd certify` binds certificates to.
        let fp = rmd_machine::content_fingerprint(&models::example_machine());
        assert!(out.contains(&format!("\"fingerprint\":\"{fp}\"")), "{out}");
    }

    #[test]
    fn sarif_format_is_a_valid_log() {
        let out = run(&Command::Lint {
            machine: "fig1".into(),
            format: ReportFormat::Sarif,
            deny_warnings: false,
        })
        .expect("fig1 lints clean of errors");
        assert!(out.contains("\"version\":\"2.1.0\""), "{out}");
        assert!(
            serde_json::from_str(&out).is_ok(),
            "{out}"
        );
    }

    #[test]
    fn missing_lint_input_is_a_parse_error() {
        let e = run(&Command::Lint {
            machine: "/no/such/file.mdl".into(),
            format: ReportFormat::Text,
            deny_warnings: false,
        })
        .expect_err("missing file");
        assert_eq!(e.exit_code(), 3);
    }
}

#[cfg(test)]
mod certify_tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_certify_with_options() {
        let c = parse_args(&args(&[
            "certify",
            "fig1",
            "--out",
            "certs",
            "--format",
            "json",
            "--max-ii",
            "12",
            "--budget",
            "1000",
        ]))
        .expect("valid command line");
        assert_eq!(
            c,
            Command::Certify {
                machine: "fig1".into(),
                against: None,
                mutant: None,
                out: Some("certs".into()),
                format: ReportFormat::Json,
                max_ii: Some(12),
                budget: Some(1000),
            }
        );
        let c = parse_args(&args(&["certify", "fig1", "--mutant", "drop-usage:3"]))
            .expect("valid command line");
        assert_eq!(
            c,
            Command::Certify {
                machine: "fig1".into(),
                against: None,
                mutant: Some((rmd_fault::MutationOp::DropUsage, 3)),
                out: None,
                format: ReportFormat::Text,
                max_ii: None,
                budget: None,
            }
        );
    }

    #[test]
    fn rejects_bad_certify_usage_with_exit_code_2() {
        for bad in [
            &["certify"][..],
            &["certify", "fig1", "--mutant"][..],
            &["certify", "fig1", "--mutant", "drop-usage"][..],
            &["certify", "fig1", "--mutant", "warp-drive:3"][..],
            &["certify", "fig1", "--mutant", "drop-usage:many"][..],
            &["certify", "fig1", "--against", "mips", "--mutant", "drop-usage:3"][..],
            &["certify", "fig1", "--against", "mips", "--out", "certs"][..],
            &["certify", "fig1", "--format", "yaml"][..],
            &["certify", "fig1", "--max-ii", "0"][..],
            &["certify", "fig1", "--budget", "lots"][..],
            &["certify", "fig1", "--bogus"][..],
        ] {
            let e = parse_args(&args(bad)).expect_err("usage error");
            assert_eq!(e.exit_code(), 2, "{bad:?}");
        }
    }

    /// Builds a `certify` command; `out`, `against`, `mutant`, and
    /// `format` vary per test, the budget knobs stay at their defaults.
    fn certify_with(
        machine: &str,
        against: Option<&str>,
        mutant: Option<(rmd_fault::MutationOp, u64)>,
        out: Option<&str>,
        format: ReportFormat,
    ) -> Command {
        Command::Certify {
            machine: machine.into(),
            against: against.map(str::to_owned),
            mutant,
            out: out.map(str::to_owned),
            format,
            max_ii: None,
            budget: None,
        }
    }

    #[test]
    fn certifies_fig1_and_writes_a_vouching_certificate() {
        let dir = std::env::temp_dir().join(format!("rmd-certify-cli-{}", std::process::id()));
        let out = run(&certify_with(
            "fig1",
            None,
            None,
            Some(&dir.to_string_lossy()),
            ReportFormat::Text,
        ))
        .expect("fig1 certifies");
        assert!(out.contains("certified equivalent"), "{out}");
        assert!(out.contains("[wrote "), "{out}");
        let body = std::fs::read_to_string(dir.join("fig1.json")).expect("cert written");
        let fp = rmd_machine::content_fingerprint(&models::example_machine());
        assert!(rmd_certify::Certificate::vouches_for(&body, &fp), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_format_emits_the_certificate_itself() {
        let out = run(&certify_with("fig1", None, None, None, ReportFormat::Json))
            .expect("fig1 certifies");
        assert!(out.contains("\"schema\": \"rmd-cert/1\""), "{out}");
        assert!(out.contains("\"status\": \"equivalent\""), "{out}");
    }

    #[test]
    fn against_mode_proves_a_machine_equivalent_to_itself() {
        let out = run(&certify_with(
            "fig1",
            Some("fig1"),
            None,
            None,
            ReportFormat::Text,
        ))
        .expect("fig1 == fig1");
        assert!(out.contains("equivalent"), "{out}");
        assert!(out.contains("pairs"), "{out}");
    }

    #[test]
    fn against_mode_disproves_with_exit_code_9() {
        // fig1 and mips do not even share an operation set: the proof
        // cannot be attempted, which is still a certification failure.
        let e = run(&certify_with(
            "fig1",
            Some("mips"),
            None,
            None,
            ReportFormat::Text,
        ))
        .expect_err("fig1 != mips");
        assert_eq!(e.exit_code(), 9);
        let CliError::Certify { report, message } = e else {
            panic!("expected a certify error");
        };
        assert!(report.contains("certification failed"), "{report}");
        assert!(message.contains("operation sets differ"), "{message}");
    }

    #[test]
    fn semantic_mutant_yields_a_confirmed_counterexample_and_exit_9() {
        // Find a seeded description-level mutant that changes the
        // forbidden-latency matrix, then certify it through the CLI: the
        // prover must report a counterexample (never panic) and the
        // runtime replay must confirm it.
        let m = models::example_machine();
        let (op, seed) = rmd_fault::ALL_OPERATORS
            .into_iter()
            .flat_map(|op| (0..8).map(move |s| (op, s)))
            .find(|&(op, seed)| {
                rmd_fault::mutate(&m, op, seed).is_some_and(|mu| {
                    matches!(
                        mu.payload,
                        rmd_fault::MutantPayload::Machine(_)
                            | rmd_fault::MutantPayload::ReducedMachine(_)
                    ) && mu.is_semantic(&m)
                })
            })
            .expect("fig1 has semantic description mutants");
        let e = run(&certify_with(
            "fig1",
            None,
            Some((op, seed)),
            None,
            ReportFormat::Text,
        ))
        .expect_err("semantic mutant must be disproved");
        assert_eq!(e.exit_code(), 9, "{op}:{seed}");
        let CliError::Certify { report, .. } = e else {
            panic!("expected a certify error");
        };
        assert!(report.contains("counterexample"), "{report}");
        assert!(
            report.contains("runtime replay confirms the divergence"),
            "{report}"
        );
    }

    #[test]
    fn sarif_failure_report_is_valid_json_with_the_finding() {
        let e = run(&certify_with(
            "fig1",
            Some("mips"),
            None,
            None,
            ReportFormat::Sarif,
        ))
        .expect_err("fig1 != mips");
        let CliError::Certify { report, .. } = e else {
            panic!("expected a certify error");
        };
        assert!(report.contains("\"ruleId\":\"RMD-C002\""), "{report}");
        assert!(
            serde_json::from_str(&report).is_ok(),
            "{report}"
        );
    }
}

#[cfg(test)]
mod table_tests {
    use super::*;

    #[test]
    fn table_command_renders_report() {
        let c = parse_args(&["table".to_string(), "fig1".to_string()]).expect("parses");
        let out = run(&c).expect("table runs");
        assert!(out.contains("number of resources"), "{out}");
        assert!(out.contains("res-uses"));
    }
}

#[cfg(test)]
mod bench_tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    fn usage_error(args_: &[&str]) -> CliError {
        match parse_args(&args(args_)) {
            Err(e) => e,
            Ok(c) => unreachable!("expected a usage error, parsed {c:?}"),
        }
    }

    /// One row of the bench parse table: argv, then the expected
    /// machines / quick / threads / out / backend fields of
    /// [`Command::Bench`].
    type BenchRow<'a> = (
        &'a [&'a str],
        &'a [&'a str],
        bool,
        Option<usize>,
        Option<&'a str>,
        Option<&'static str>,
    );

    #[test]
    fn parses_bench_command_lines() {
        let table: &[BenchRow] = &[
            (&["bench"], &[], false, None, None, None),
            (&["bench", "--quick"], &[], true, None, None, None),
            (&["bench", "fig1"], &["fig1"], false, None, None, None),
            (
                &["bench", "fig1", "cydra5-subset", "--threads", "3"],
                &["fig1", "cydra5-subset"],
                false,
                Some(3),
                None,
                None,
            ),
            (
                &["bench", "mips", "--quick", "--out", "/tmp/b"],
                &["mips"],
                true,
                None,
                Some("/tmp/b"),
                None,
            ),
            (
                &["bench", "fig1", "--backend", "modulo_bitvec"],
                &["fig1"],
                false,
                None,
                None,
                Some("modulo_bitvec"),
            ),
        ];
        for (argv, machines, quick, threads, out, backend) in table {
            let c = parse_args(&args(argv)).expect("valid bench command line");
            assert_eq!(
                c,
                Command::Bench {
                    machines: machines.iter().map(|s| s.to_string()).collect(),
                    quick: *quick,
                    threads: *threads,
                    out: out.map(str::to_owned),
                    backend: *backend,
                    compare: None,
                    against: None,
                    metric: None,
                    tolerance: None,
                },
                "{argv:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_bench_usage_with_exit_code_2() {
        for bad in [
            &["bench", "--threads"][..],
            &["bench", "--threads", "0"][..],
            &["bench", "--threads", "many"][..],
            &["bench", "--out"][..],
            &["bench", "--bogus"][..],
            &["bench", "--backend"][..],
            &["bench", "--backend", "warp-drive"][..],
        ] {
            let e = usage_error(bad);
            assert!(matches!(e, CliError::Usage(_)), "{bad:?} -> {e:?}");
            assert_eq!(e.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn unknown_backend_lists_the_valid_names() {
        let e = usage_error(&["bench", "--backend", "warp-drive"]);
        let msg = e.to_string();
        for name in rmd_bench::BACKEND_NAMES {
            assert!(msg.contains(name), "missing `{name}` in: {msg}");
        }
    }

    #[test]
    fn bench_rejects_unknown_machine_names() {
        // An unknown model name falls through to the file-read path and
        // surfaces as a parse error (exit 3), like every other command.
        let e = run(&Command::Bench {
            machines: vec!["not-a-model".into()],
            quick: true,
            threads: Some(1),
            out: None,
            backend: None,
            compare: None,
            against: None,
            metric: None,
            tolerance: None,
        })
        .expect_err("unknown machine must fail");
        assert!(matches!(e, CliError::Parse { .. }), "{e:?}");
        assert_eq!(e.exit_code(), 3);
    }

    #[test]
    fn bench_quick_writes_a_well_formed_record() {
        let dir = std::env::temp_dir().join(format!("rmd-bench-test-{}", std::process::id()));
        let out = run(&Command::Bench {
            machines: vec!["fig1".into()],
            quick: true,
            threads: Some(2),
            out: Some(dir.to_string_lossy().into_owned()),
            backend: None,
            compare: None,
            against: None,
            metric: None,
            tolerance: None,
        })
        .expect("quick bench on fig1");
        assert!(out.contains("fig1:"), "{out}");
        assert!(out.contains("queries/s"), "{out}");
        let path = dir.join("BENCH_fig1.json");
        let body = std::fs::read_to_string(&path).expect("record written");
        assert!(rmd_bench::benchcmd::json_is_well_formed(&body), "{body}");
        assert!(body.contains("\"schema\": \"rmd-bench/6\""), "{body}");
        assert!(body.contains("\"machine\": \"fig1\""), "{body}");
        assert!(body.contains("\"phases\""), "{body}");
        assert!(body.contains("\"query_window\""), "{body}");
        assert!(body.contains("\"host_parallelism\""), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_bench_compare_flags() {
        let c = parse_args(&args(&[
            "bench",
            "fig1",
            "--quick",
            "--compare",
            "old.json",
            "--metric",
            "serve.req_per_s",
            "--tolerance",
            "0.9",
        ]))
        .expect("valid compare command line");
        assert!(
            matches!(
                &c,
                Command::Bench { compare: Some(p), against: None, metric: Some(m), tolerance: Some(t), .. }
                    if p == "old.json" && m == "serve.req_per_s" && *t == 0.9
            ),
            "{c:?}"
        );
        // File-vs-file mode needs no machines at all.
        let c = parse_args(&args(&["bench", "--compare", "a.json", "--against", "b.json"]))
            .expect("file-vs-file parses");
        assert!(
            matches!(&c, Command::Bench { machines, against: Some(_), .. } if machines.is_empty()),
            "{c:?}"
        );
    }

    #[test]
    fn rejects_bad_compare_usage_with_exit_code_2() {
        for bad in [
            &["bench", "--compare"][..],
            &["bench", "fig1", "--against", "b.json"][..],
            &["bench", "fig1", "--metric", "x"][..],
            &["bench", "fig1", "--tolerance", "0.5"][..],
            &["bench", "fig1", "--compare", "a.json", "--tolerance", "1.5"][..],
            &["bench", "fig1", "--compare", "a.json", "--tolerance", "lots"][..],
            // --compare without --against must bench exactly one machine.
            &["bench", "--compare", "a.json"][..],
            &["bench", "fig1", "mips", "--compare", "a.json"][..],
        ] {
            let e = usage_error(bad);
            assert!(matches!(e, CliError::Usage(_)), "{bad:?} -> {e:?}");
            assert_eq!(e.exit_code(), 2, "{bad:?}");
        }
    }

    fn compare_cmd(old: &str, new: &str) -> Command {
        Command::Bench {
            machines: vec![],
            quick: true,
            threads: None,
            out: None,
            backend: None,
            compare: Some(old.to_owned()),
            against: Some(new.to_owned()),
            metric: None,
            tolerance: None,
        }
    }

    #[test]
    fn bench_compare_file_vs_file_guards_the_trajectory() {
        let dir = std::env::temp_dir().join(format!("rmd-compare-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let old = dir.join("old.json");
        let bad = dir.join("bad.json");
        std::fs::write(
            &old,
            r#"{"schema":"rmd-bench/6","machine":"fig1","query":{"queries_per_sec":1000.0}}"#,
        )
        .unwrap();
        std::fs::write(
            &bad,
            r#"{"schema":"rmd-bench/6","machine":"fig1","query":{"queries_per_sec":1.0}}"#,
        )
        .unwrap();
        // Identical records compare clean and print the delta report.
        let out = run(&compare_cmd(
            &old.to_string_lossy(),
            &old.to_string_lossy(),
        ))
        .expect("identical records never regress");
        assert!(out.contains("-> ok"), "{out}");
        assert!(out.contains("query.queries_per_sec"), "{out}");
        // A 1000x cliff trips the guard: exit code 11 with the report.
        let e = run(&compare_cmd(&old.to_string_lossy(), &bad.to_string_lossy()))
            .expect_err("cliff must regress");
        assert_eq!(e.exit_code(), 11);
        assert!(
            matches!(&e, CliError::BenchRegression { report, .. } if report.contains("REGRESSED")),
            "{e:?}"
        );
        assert!(e.to_string().contains("regressed beyond"), "{e}");
        // The committed repo record compared against itself is clean —
        // exactly what the bench-guard CI job relies on.
        let committed =
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig1.json");
        let out = run(&compare_cmd(committed, committed)).expect("committed record vs itself");
        assert!(out.contains("-> ok"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_serve_telemetry_flags() {
        let c = parse_args(&args(&[
            "serve",
            "--metrics-every",
            "100",
            "--slow-ms",
            "5",
            "--uncertified",
        ]))
        .expect("valid serve telemetry flags");
        assert!(
            matches!(
                c,
                Command::Serve { metrics_every: Some(100), slow_ms: Some(5), .. }
            ),
            "{c:?}"
        );
        for bad in [
            &["serve", "--metrics-every"][..],
            &["serve", "--metrics-every", "-1"],
            &["serve", "--slow-ms", "soon"],
        ] {
            assert_eq!(usage_error(bad).exit_code(), 2, "{bad:?}");
        }
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    /// One row of the profile parse table: argv, then the expected
    /// loops / format / out / table6 / backend fields of
    /// [`Command::Profile`].
    type ProfileRow<'a> = (
        &'a [&'a str],
        Option<usize>,
        ProfileFormat,
        Option<&'a str>,
        bool,
        Option<&'static str>,
    );

    #[test]
    fn parses_profile_command_lines() {
        let rows: &[ProfileRow] = &[
            (&["profile", "fig1"], None, ProfileFormat::Text, None, false, None),
            (
                &["profile", "mips", "--loops", "8"],
                Some(8),
                ProfileFormat::Text,
                None,
                false,
                None,
            ),
            (
                &["profile", "fig1", "--format", "jsonl"],
                None,
                ProfileFormat::Jsonl,
                None,
                false,
                None,
            ),
            (
                &["profile", "fig1", "--format", "chrome", "--out", "t.json"],
                None,
                ProfileFormat::Chrome,
                Some("t.json"),
                false,
                None,
            ),
            (
                &["profile", "cydra5-subset", "--table6"],
                None,
                ProfileFormat::Text,
                None,
                true,
                None,
            ),
            (
                &["profile", "fig1", "--backend", "bitvec"],
                None,
                ProfileFormat::Text,
                None,
                false,
                Some("bitvec"),
            ),
        ];
        for (argv, loops, format, out, table6, backend) in rows {
            let c = parse_args(&args(argv)).expect("valid profile command line");
            assert_eq!(
                c,
                Command::Profile {
                    machine: argv[1].to_string(),
                    loops: *loops,
                    format: *format,
                    out: out.map(str::to_owned),
                    table6: *table6,
                    backend: *backend,
                },
                "argv: {argv:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_profile_usage_with_exit_code_2() {
        for argv in [
            &["profile"][..],
            &["profile", "fig1", "extra"][..],
            &["profile", "fig1", "--loops"][..],
            &["profile", "fig1", "--loops", "many"][..],
            &["profile", "fig1", "--format", "xml"][..],
            &["profile", "fig1", "--out"][..],
            &["profile", "fig1", "--bogus"][..],
            &["profile", "fig1", "--backend"][..],
            &["profile", "fig1", "--backend", "abacus"][..],
        ] {
            let e = parse_args(&args(argv)).expect_err("should be a usage error");
            assert_eq!(e.exit_code(), 2, "argv: {argv:?}");
        }
    }

    #[test]
    fn profile_text_report_covers_phases_and_backends() {
        let out = run(&Command::Profile {
            machine: "fig1".into(),
            loops: Some(2),
            format: ProfileFormat::Text,
            out: None,
            table6: false,
            backend: None,
        })
        .expect("profile fig1");
        for phase in rmd_core::REDUCTION_PHASES {
            assert!(out.contains(phase), "missing phase {phase}: {out}");
        }
        assert!(out.contains("query.modulo_bitvec"), "{out}");
        assert!(out.contains("Table 6"), "{out}");
    }

    #[test]
    fn profile_jsonl_export_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("rmd-profile-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("fig1.jsonl");
        let out = run(&Command::Profile {
            machine: "fig1".into(),
            loops: Some(0),
            format: ProfileFormat::Jsonl,
            out: Some(path.to_string_lossy().into_owned()),
            table6: false,
            backend: None,
        })
        .expect("profile fig1 --format jsonl --out");
        assert!(out.contains("[wrote "), "{out}");
        let body = std::fs::read_to_string(&path).expect("export written");
        assert!(!body.is_empty());
        for line in body.lines() {
            assert!(
                rmd_bench::benchcmd::json_is_well_formed(line),
                "bad JSONL line: {line}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_prom_format_renders_text_exposition() {
        let out = run(&Command::Profile {
            machine: "fig1".into(),
            loops: Some(0),
            format: ProfileFormat::Prom,
            out: None,
            table6: false,
            backend: None,
        })
        .expect("profile fig1 --format prom");
        assert!(out.contains("# TYPE reduce_runs counter"), "{out}");
        assert!(out.contains("reduce_runs 1"), "{out}");
        // Histograms render as summaries with quantile labels.
        assert!(out.contains("quantile=\"0.99\""), "{out}");
        // Prom metric names never carry dots or dashes.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad prom name in line: {line}"
            );
        }
    }

    #[test]
    fn unwritable_export_path_exits_with_code_7() {
        let e = run(&Command::Profile {
            machine: "fig1".into(),
            loops: Some(0),
            format: ProfileFormat::Jsonl,
            out: Some("/nonexistent-dir/trace.jsonl".into()),
            table6: false,
            backend: None,
        })
        .expect_err("export must fail");
        assert_eq!(e.exit_code(), 7);
        assert!(e.to_string().contains("/nonexistent-dir/trace.jsonl"), "{e}");
    }
}
