//! The `rmd` binary. All logic lives in the library for testability.
//!
//! Exit codes: 0 success, 1 internal error, 2 usage, 3 parse,
//! 4 validation, 5 verification failure, 6 lint findings at error
//! severity, 7 export failure, 8 serve transport failure, 9
//! certification failure, 10 fuzz divergence or corpus-replay
//! violation, 11 bench-trajectory regression (see
//! `rmd_cli::CliError`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rmd_cli::parse_args(&args) {
        Ok(cmd) => match rmd_cli::run(&cmd) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                // Lint, certify, fuzz, and bench-compare failures still
                // print the full report (findings, counterexample
                // trace, minimized machines, metric deltas) on stdout
                // so machine-readable formats stay intact; only the
                // one-line summary goes to stderr.
                match &e {
                    rmd_cli::CliError::Lint { report, .. }
                    | rmd_cli::CliError::Certify { report, .. }
                    | rmd_cli::CliError::Fuzz { report, .. }
                    | rmd_cli::CliError::BenchRegression { report, .. } => print!("{report}"),
                    _ => {}
                }
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", rmd_cli::HELP);
            std::process::exit(e.exit_code());
        }
    }
}
