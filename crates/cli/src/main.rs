//! The `rmd` binary. All logic lives in the library for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rmd_cli::parse_args(&args) {
        Ok(cmd) => match rmd_cli::run(&cmd) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", rmd_cli::HELP);
            std::process::exit(2);
        }
    }
}
