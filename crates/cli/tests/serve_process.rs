//! End-to-end daemon smoke test against the real `rmd` binary: certify
//! a machine, pipeline requests over a unix socket behind the
//! certificate gate, SIGTERM mid-burst, and assert a clean drain — exit
//! 0, every admitted frame answered, uncertified machines refused,
//! metrics flushed, and no panic in stderr.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn wait_for_socket(path: &std::path::Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !path.exists() {
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("daemon exited before binding the socket: {status}");
        }
        assert!(Instant::now() < deadline, "socket never appeared");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn pipelined_socket_burst_with_sigterm_drains_cleanly() {
    let dir = std::env::temp_dir().join(format!("rmd-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let socket = dir.join("rmd.sock");
    let metrics = dir.join("metrics.json");
    let certs = dir.join("certs");

    // Certify fig1 through the real binary first: the daemon serves
    // behind the certificate gate and must admit only vouched machines.
    let certify = Command::new(env!("CARGO_BIN_EXE_rmd"))
        .args(["certify", "fig1", "--out", certs.to_str().unwrap()])
        .output()
        .expect("run rmd certify");
    assert!(certify.status.success(), "{certify:?}");

    let mut child = Command::new(env!("CARGO_BIN_EXE_rmd"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--queue",
            "256",
            "--metrics",
            metrics.to_str().unwrap(),
            "--certs",
            certs.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rmd serve");
    wait_for_socket(&socket, &mut child);

    let stream = UnixStream::connect(&socket).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    // One machine frame plus 100 pipelined schedule frames.
    writer
        .write_all(b"{\"type\":\"machine\",\"model\":\"fig1\",\"id\":0}\n")
        .expect("write machine frame");
    let mut line = String::new();
    reader.read_line(&mut line).expect("machine reply");
    let v: serde_json::Value = serde_json::from_str(&line).expect("machine reply JSON");
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true), "{line}");
    let fp = v
        .get("fingerprint")
        .and_then(|f| f.as_str())
        .expect("fingerprint")
        .to_string();

    // A machine without a vouching certificate is refused, typed.
    writer
        .write_all(b"{\"type\":\"machine\",\"model\":\"mips\",\"id\":900}\n")
        .expect("write uncertified machine frame");
    let mut line = String::new();
    reader.read_line(&mut line).expect("uncertified reply");
    let v: serde_json::Value = serde_json::from_str(&line).expect("uncertified reply JSON");
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(false), "{line}");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str()),
        Some("uncertified"),
        "{line}"
    );

    let mut burst = String::new();
    for i in 1..=100 {
        burst.push_str(&format!(
            "{{\"type\":\"schedule\",\"id\":{i},\"fingerprint\":\"{fp}\",\"nodes\":[\"A\",\"B\"],\"edges\":[[0,1,2,0]]}}\n"
        ));
    }
    writer.write_all(burst.as_bytes()).expect("write burst");
    writer.flush().expect("flush burst");

    // Collect the first half of the replies, then SIGTERM mid-burst.
    let mut replies = Vec::new();
    for _ in 0..50 {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("reply") > 0, "early EOF");
        replies.push(line);
    }
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");

    // Everything already admitted still gets answered; frames sent
    // after the signal may be rejected or hit a closed socket — both
    // are acceptable, panicking is not.
    let _ = writer.write_all(b"{\"type\":\"status\",\"id\":200}\n");
    let _ = writer.flush();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => replies.push(line),
        }
    }
    assert!(
        replies.len() >= 100,
        "expected the full burst answered, got {} replies",
        replies.len()
    );
    let mut ok = 0;
    for line in &replies {
        let v: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("not JSON ({e}): {line}"));
        match v.get("ok").and_then(|o| o.as_bool()) {
            Some(true) => ok += 1,
            Some(false) => {
                let kind = v
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(|k| k.as_str());
                assert!(
                    kind == Some("shutting_down") || kind == Some("overloaded"),
                    "{line}"
                );
            }
            None => panic!("reply lacks ok: {line}"),
        }
    }
    assert!(ok >= 100, "only {ok} successful replies");

    let status = child.wait().expect("wait for daemon");
    assert!(status.success(), "daemon exit status {status}");

    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(!stderr.contains("panicked"), "panic in stderr:\n{stderr}");
    assert!(stderr.contains("drained"), "no drain summary:\n{stderr}");

    let metrics_json = std::fs::read_to_string(&metrics).expect("metrics flushed to file");
    assert!(
        serde_json::from_str(&metrics_json).is_ok(),
        "metrics not JSON: {metrics_json}"
    );
    assert!(!socket.exists(), "socket file not cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}
