//! The workspace-wide error taxonomy and input-validation limits.
//!
//! Every fallible public entry point across the reduction pipeline
//! reports failures through [`RmdError`] — a hand-rolled, dependency-free
//! enum — instead of panicking. Errors sort into four families:
//!
//! - **Input errors** ([`RmdError::InvalidMachine`], [`RmdError::Parse`],
//!   [`RmdError::LimitExceeded`], [`RmdError::DegenerateInput`]): the
//!   caller handed us something malformed or unreasonably large.
//! - **Verification errors** ([`RmdError::VerificationFailed`]): a
//!   reduction's forbidden-latency matrix diverged from the original's —
//!   the one failure the paper's Theorem 1 says must never reach a
//!   scheduler.
//! - **Resource-exhaustion errors** ([`RmdError::BudgetExhausted`]): a
//!   configurable step budget ran out mid-pipeline.
//! - **Scheduling errors** ([`RmdError::Unschedulable`]): no feasible
//!   initiation interval within the configured range.

use crate::verify::EquivalenceError;
use core::fmt;
use rmd_machine::mdl::ParseError;
use rmd_machine::{MachineDescription, MachineError};

/// The unified error type for the reduction pipeline and its drivers.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum RmdError {
    /// The machine description violates a structural invariant.
    InvalidMachine(MachineError),
    /// An MDL source failed to parse.
    Parse(ParseError),
    /// An explicit resource limit was exceeded.
    LimitExceeded {
        /// Which limit (e.g. "resources", "operations", "table cycles").
        what: &'static str,
        /// The observed value.
        value: u64,
        /// The configured maximum.
        limit: u64,
    },
    /// The input is structurally valid but degenerate in a way the
    /// pipeline cannot meaningfully process.
    DegenerateInput(String),
    /// A reduced description failed exact-equivalence verification
    /// against its original.
    VerificationFailed(EquivalenceError),
    /// The configured step budget ran out before the pipeline finished.
    BudgetExhausted {
        /// Steps charged when the budget tripped.
        steps: u64,
    },
    /// No feasible initiation interval within the configured range.
    Unschedulable {
        /// The largest II attempted.
        max_ii: u32,
    },
    /// An I/O failure (file read/write), carried as a message to keep
    /// the error `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for RmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmdError::InvalidMachine(e) => write!(f, "invalid machine: {e}"),
            RmdError::Parse(e) => write!(f, "parse error: {e}"),
            RmdError::LimitExceeded { what, value, limit } => {
                write!(f, "limit exceeded: {value} {what} (maximum {limit})")
            }
            RmdError::DegenerateInput(msg) => write!(f, "degenerate input: {msg}"),
            RmdError::VerificationFailed(e) => {
                write!(f, "reduction failed equivalence verification: {e}")
            }
            RmdError::BudgetExhausted { steps } => {
                write!(f, "step budget exhausted after {steps} steps")
            }
            RmdError::Unschedulable { max_ii } => {
                write!(f, "no feasible initiation interval up to {max_ii}")
            }
            RmdError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for RmdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmdError::InvalidMachine(e) => Some(e),
            RmdError::Parse(e) => Some(e),
            RmdError::VerificationFailed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for RmdError {
    fn from(e: MachineError) -> Self {
        RmdError::InvalidMachine(e)
    }
}

impl From<ParseError> for RmdError {
    fn from(e: ParseError) -> Self {
        RmdError::Parse(e)
    }
}

impl From<EquivalenceError> for RmdError {
    fn from(e: EquivalenceError) -> Self {
        RmdError::VerificationFailed(e)
    }
}

/// Explicit resource limits applied before the pipeline touches an
/// input. Defaults are far above any real machine model but low enough
/// to reject adversarial inputs long before they can exhaust memory or
/// overflow latency arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Limits {
    /// Maximum declared resources.
    pub max_resources: usize,
    /// Maximum declared operations.
    pub max_operations: usize,
    /// Maximum reservation-table length in cycles. Also guards the
    /// latency arithmetic: forbidden latencies span
    /// `-(len-1) ..= len-1`, computed in `i32`, so this must stay far
    /// below `i32::MAX`.
    pub max_table_cycles: u32,
    /// Maximum total usages summed over all operations.
    pub max_total_usages: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_resources: 4096,
            max_operations: 4096,
            max_table_cycles: 1 << 16,
            max_total_usages: 1 << 20,
        }
    }
}

impl Limits {
    /// Validates `machine` against these limits.
    ///
    /// # Errors
    ///
    /// Returns [`RmdError::LimitExceeded`] naming the first violated
    /// limit, or [`RmdError::DegenerateInput`] for inputs no limit can
    /// make sense of.
    pub fn validate(&self, machine: &MachineDescription) -> Result<(), RmdError> {
        if machine.num_resources() > self.max_resources {
            return Err(RmdError::LimitExceeded {
                what: "resources",
                value: machine.num_resources() as u64,
                limit: self.max_resources as u64,
            });
        }
        if machine.num_operations() > self.max_operations {
            return Err(RmdError::LimitExceeded {
                what: "operations",
                value: machine.num_operations() as u64,
                limit: self.max_operations as u64,
            });
        }
        let mut total_usages = 0usize;
        for (_, op) in machine.ops() {
            let len = op.table().length();
            if len > self.max_table_cycles {
                return Err(RmdError::LimitExceeded {
                    what: "table cycles",
                    value: u64::from(len),
                    limit: u64::from(self.max_table_cycles),
                });
            }
            // Redundant with the limit above for sane configurations,
            // but keeps latency-offset arithmetic overflow-free even if
            // a caller raises `max_table_cycles` recklessly.
            if len > (i32::MAX as u32) / 4 {
                return Err(RmdError::DegenerateInput(format!(
                    "operation `{}` spans {len} cycles; forbidden-latency \
                     offsets would overflow i32",
                    op.name()
                )));
            }
            total_usages += op.table().num_usages();
        }
        if total_usages > self.max_total_usages {
            return Err(RmdError::LimitExceeded {
                what: "total usages",
                value: total_usages as u64,
                limit: self.max_total_usages as u64,
            });
        }
        Ok(())
    }
}

/// A countdown of pipeline work: each unit is roughly one usage-pair
/// consideration in generating-set construction. When it hits zero, the
/// pipeline stops with [`RmdError::BudgetExhausted`] instead of running
/// unbounded on pathological inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepBudget {
    limit: u64,
    used: u64,
}

impl StepBudget {
    /// A budget of `limit` steps.
    pub fn new(limit: u64) -> Self {
        StepBudget { limit, used: 0 }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        StepBudget::new(u64::MAX)
    }

    /// Steps charged so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Charges `n` steps.
    ///
    /// # Errors
    ///
    /// Returns [`RmdError::BudgetExhausted`] once the total exceeds the
    /// limit; the pipeline unwinds and the caller decides what to do
    /// (typically fall back to the original tables).
    pub fn charge(&mut self, n: u64) -> Result<(), RmdError> {
        self.used = self.used.saturating_add(n);
        if self.used > self.limit {
            Err(RmdError::BudgetExhausted { steps: self.used })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::MachineBuilder;

    fn tiny() -> MachineDescription {
        let mut b = MachineBuilder::new("t");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish();
        b.build().unwrap()
    }

    #[test]
    fn default_limits_admit_real_models() {
        for m in rmd_machine::models::all_machines() {
            assert!(Limits::default().validate(&m).is_ok(), "{}", m.name());
        }
    }

    #[test]
    fn tight_limits_reject_with_the_right_name() {
        let m = tiny();
        let limits = Limits {
            max_resources: 0,
            ..Limits::default()
        };
        match limits.validate(&m) {
            Err(RmdError::LimitExceeded { what, value, limit }) => {
                assert_eq!(what, "resources");
                assert_eq!((value, limit), (1, 0));
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
        let limits = Limits {
            max_table_cycles: 0,
            ..Limits::default()
        };
        assert!(matches!(
            limits.validate(&m),
            Err(RmdError::LimitExceeded {
                what: "table cycles",
                ..
            })
        ));
    }

    #[test]
    fn budget_trips_exactly_once_exceeded() {
        let mut b = StepBudget::new(10);
        assert!(b.charge(10).is_ok());
        assert_eq!(b.used(), 10);
        match b.charge(1) {
            Err(RmdError::BudgetExhausted { steps }) => assert_eq!(steps, 11),
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_their_family() {
        let e = RmdError::LimitExceeded {
            what: "resources",
            value: 5,
            limit: 2,
        };
        assert_eq!(e.to_string(), "limit exceeded: 5 resources (maximum 2)");
        assert!(RmdError::BudgetExhausted { steps: 3 }
            .to_string()
            .contains("3 steps"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let me = MachineError::NoOperations;
        let e: RmdError = me.clone().into();
        assert_eq!(e, RmdError::InvalidMachine(me));
        assert!(std::error::Error::source(&e).is_some());
    }
}
