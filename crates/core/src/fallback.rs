//! Graceful degradation: reduce, verify, and fall back to the original
//! tables when anything goes wrong.
//!
//! The paper's correctness gate (Theorem 1, §5) is that a reduced
//! description's forbidden-latency matrix is bit-for-bit identical to
//! the original's. [`reduce_with_fallback`] enforces that gate at
//! runtime: every reduction is re-verified with
//! [`verify_equivalence`](crate::verify_equivalence) before being
//! handed out, and any failure — invalid input, exhausted step budget,
//! or (hypothetically) a verification miss — yields the **original**
//! machine description instead, with the reason recorded. Scheduling
//! against the original tables is always correct, merely slower, so a
//! bad reduction can never miscompile a loop.

use crate::error::RmdError;
use crate::reduce::{try_reduce, ReduceOptions, Reduction};
use crate::select::Objective;
use crate::verify::verify_equivalence;
use rmd_machine::MachineDescription;

/// Why [`reduce_with_fallback`] declined to use a reduction.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum FallbackEvent {
    /// The input failed validation or the pipeline errored before
    /// producing a reduction.
    ReductionFailed(RmdError),
    /// A reduction was produced but failed exact-equivalence
    /// verification against the original.
    VerificationFailed(RmdError),
}

impl FallbackEvent {
    /// The underlying error.
    pub fn error(&self) -> &RmdError {
        match self {
            FallbackEvent::ReductionFailed(e) | FallbackEvent::VerificationFailed(e) => e,
        }
    }
}

/// The outcome of [`reduce_with_fallback`]: always a usable machine
/// description, never an unverified reduction.
#[derive(Clone, Debug)]
pub struct FallbackReduction {
    /// The description to schedule against: the verified reduced machine,
    /// or a clone of the original if the pipeline fell back.
    pub machine: MachineDescription,
    /// The full reduction artifacts, present only when the reduction
    /// succeeded *and* verified.
    pub reduction: Option<Reduction>,
    /// Why the original tables were kept, if they were.
    pub fallback: Option<FallbackEvent>,
}

impl FallbackReduction {
    /// `true` if the pipeline fell back to the original tables.
    pub fn used_fallback(&self) -> bool {
        self.fallback.is_some()
    }
}

/// Reduces `machine`, verifies the result, and falls back to the
/// original tables on any failure.
///
/// The returned [`FallbackReduction::machine`] is **always** safe to
/// schedule against:
///
/// - on success it is the reduced machine, already re-verified to
///   produce an identical forbidden-latency matrix;
/// - on any failure (limit violation, degenerate input, exhausted step
///   budget, verification mismatch) it is the original machine, and
///   [`FallbackReduction::fallback`] records why.
///
/// This function never panics on malformed input and never returns an
/// unverified reduction.
pub fn reduce_with_fallback(
    machine: &MachineDescription,
    objective: Objective,
    options: &ReduceOptions,
) -> FallbackReduction {
    let red = match try_reduce(machine, objective, options) {
        Ok(red) => red,
        Err(e) => {
            rmd_obs::instant("reduce", "fallback");
            return FallbackReduction {
                machine: machine.clone(),
                reduction: None,
                fallback: Some(FallbackEvent::ReductionFailed(e)),
            };
        }
    };
    let verified = {
        let _s = rmd_obs::span("reduce", "verify");
        verify_equivalence(machine, &red.reduced)
    };
    match verified {
        Ok(()) => FallbackReduction {
            machine: red.reduced.clone(),
            reduction: Some(red),
            fallback: None,
        },
        Err(e) => {
            rmd_obs::instant("reduce", "fallback");
            FallbackReduction {
                machine: machine.clone(),
                reduction: None,
                fallback: Some(FallbackEvent::VerificationFailed(e.into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Limits;
    use rmd_machine::models::{all_machines, example_machine};

    #[test]
    fn success_returns_a_verified_reduction() {
        for m in all_machines() {
            let out = reduce_with_fallback(&m, Objective::ResUses, &ReduceOptions::default());
            assert!(!out.used_fallback(), "{}", m.name());
            let red = out.reduction.as_ref().expect("reduction present");
            assert_eq!(out.machine, red.reduced);
            assert!(verify_equivalence(&m, &out.machine).is_ok(), "{}", m.name());
        }
    }

    #[test]
    fn exhausted_budget_falls_back_to_the_original() {
        let m = example_machine();
        let options = ReduceOptions {
            max_steps: Some(1),
            ..ReduceOptions::default()
        };
        let out = reduce_with_fallback(&m, Objective::ResUses, &options);
        assert!(out.used_fallback());
        assert!(out.reduction.is_none());
        assert_eq!(out.machine, m, "fallback must hand back the original");
        match out.fallback {
            Some(FallbackEvent::ReductionFailed(RmdError::BudgetExhausted { steps })) => {
                assert!(steps > 1);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn limit_violation_falls_back_to_the_original() {
        let m = example_machine();
        let options = ReduceOptions {
            limits: Limits {
                max_operations: 1,
                ..Limits::default()
            },
            ..ReduceOptions::default()
        };
        let out = reduce_with_fallback(&m, Objective::ResUses, &options);
        assert!(out.used_fallback());
        assert_eq!(out.machine, m);
        match out.fallback.unwrap().error() {
            RmdError::LimitExceeded { what, .. } => assert_eq!(*what, "operations"),
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }

    /// Serializes tests that toggle the global tracing flag.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        rmd_obs::set_enabled(true);
        let _ = rmd_obs::drain_events(); // discard anything older
        let r = f();
        rmd_obs::set_enabled(false);
        r
    }

    #[test]
    fn tracing_emits_every_reduction_phase() {
        let (out, events) = with_tracing(|| {
            let out = reduce_with_fallback(
                &example_machine(),
                Objective::ResUses,
                &ReduceOptions::default(),
            );
            (out, rmd_obs::drain_events())
        });
        assert!(!out.used_fallback());
        for phase in crate::REDUCTION_PHASES {
            assert!(
                events
                    .iter()
                    .any(|e| e.cat == "reduce" && e.name == *phase),
                "missing phase span: {phase}"
            );
        }
        // No fallback happened, so no fallback instant was emitted.
        assert!(!events.iter().any(|e| e.name == "fallback"));
    }

    #[test]
    fn fallback_emits_an_instant_event() {
        let (out, events) = with_tracing(|| {
            let options = ReduceOptions {
                max_steps: Some(1),
                ..ReduceOptions::default()
            };
            let out = reduce_with_fallback(&example_machine(), Objective::ResUses, &options);
            (out, rmd_obs::drain_events())
        });
        assert!(out.used_fallback());
        assert!(events
            .iter()
            .any(|e| e.cat == "reduce" && e.name == "fallback"));
    }

    #[test]
    fn generous_budget_still_succeeds() {
        let m = example_machine();
        let options = ReduceOptions {
            max_steps: Some(1_000_000),
            ..ReduceOptions::default()
        };
        let out = reduce_with_fallback(&m, Objective::KCycleWord { k: 2 }, &options);
        assert!(!out.used_fallback());
    }
}
