//! Stable fingerprints of reduction sub-results.
//!
//! The forbidden-latency matrix is the paper's equivalence criterion:
//! two descriptions are interchangeable for scheduling exactly when
//! their matrices agree. [`matrix_fingerprint`] condenses a matrix into
//! a 64-bit FNV-1a hash over its `(x, y, latency)` triples in row-major
//! order, so a semantic change to a description visibly changes one
//! number. The same value appears in three places — the RMD-L009 lint
//! message, `rmd certify` certificates, and the rmd-fault audit — which
//! lets findings from all three tools be joined without re-deriving the
//! matrix.

use rmd_latency::ForbiddenMatrix;
use rmd_machine::fnv::Fnv64;

/// FNV-1a 64-bit hash over every `(x, y, latency)` triple of the
/// forbidden-latency matrix, in row-major order with latencies in the
/// [`rmd_latency::LatencySet`] iteration order.
///
/// Mixes whole `u64` values per [`Fnv64::mix_u64`] — the granularity
/// the golden certificates under `certs/` pin.
pub fn matrix_fingerprint(f: &ForbiddenMatrix) -> u64 {
    let mut h = Fnv64::new();
    for x in 0..f.num_ops() {
        for y in 0..f.num_ops() {
            for lat in f.get_idx(x, y).iter() {
                h.mix_u64(x as u64);
                h.mix_u64(y as u64);
                h.mix_u64(lat as u32 as u64);
            }
        }
    }
    h.finish()
}

/// [`matrix_fingerprint`] rendered as 16 lowercase hex digits — the
/// textual form used by certificates and the RMD-L009 lint message.
pub fn matrix_fingerprint_hex(f: &ForbiddenMatrix) -> String {
    format!("{:016x}", matrix_fingerprint(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models;

    #[test]
    fn equivalent_descriptions_share_a_fingerprint() {
        let m = models::example_machine();
        let f = ForbiddenMatrix::compute(&m);
        let r = crate::reduce(&m, crate::Objective::ResUses);
        let rf = ForbiddenMatrix::compute(&r.reduced);
        assert_eq!(matrix_fingerprint(&f), matrix_fingerprint(&rf));
    }

    #[test]
    fn different_machines_differ() {
        let a = ForbiddenMatrix::compute(&models::example_machine());
        let b = ForbiddenMatrix::compute(&models::cydra5_subset());
        assert_ne!(matrix_fingerprint(&a), matrix_fingerprint(&b));
        assert_eq!(matrix_fingerprint_hex(&a).len(), 16);
    }
}
