//! Algorithm 1: building the generating set of maximal resources.

use crate::error::{RmdError, StepBudget};
use crate::synth::{SynthResource, SynthUsage};
use core::fmt;
use rmd_latency::ForbiddenMatrix;

/// One step of Algorithm 1, recorded when tracing is enabled.
///
/// Resource indices refer to creation order (resources are appended;
/// subsumed resources are dropped from the final set but keep their
/// indices in the trace).
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum GenSetEvent {
    /// Started processing the elementary pair for `latency ∈ F[x][y]`.
    ProcessPair {
        /// Class that issues first (usage in cycle 0).
        x: u32,
        /// Class whose usage sits in cycle `latency`.
        y: u32,
        /// The forbidden latency the pair encodes.
        latency: i32,
    },
    /// Rule 1: the pair was fully compatible with `resource`; its usages
    /// were merged in.
    Rule1 {
        /// Index of the updated resource.
        resource: usize,
    },
    /// Rule 2: the pair was partially compatible with `from`; a new
    /// resource combining the pair and the compatible usages was added.
    Rule2 {
        /// Index of the partially compatible resource.
        from: usize,
        /// Index of the newly created resource.
        new: usize,
    },
    /// Rule 2, degenerate case: the combination was just the pair itself,
    /// or was already contained in an existing resource, and was
    /// discarded.
    Rule2Discarded {
        /// Index of the partially compatible resource.
        from: usize,
    },
    /// Rule 3: the pair's usages were not co-resident anywhere; the pair
    /// itself became a new resource.
    Rule3 {
        /// Index of the newly created resource.
        new: usize,
    },
    /// Rule 4: class `class` only forbids the 0 self-contention latency;
    /// a single-usage resource was added for it.
    Rule4 {
        /// The class receiving a single-usage resource.
        class: u32,
        /// Index of the newly created resource.
        new: usize,
    },
}

impl fmt::Display for GenSetEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenSetEvent::ProcessPair { x, y, latency } => {
                write!(f, "process pair: {latency} ∈ F[c{x}][c{y}]")
            }
            GenSetEvent::Rule1 { resource } => {
                write!(f, "  rule 1: fully compatible — merged into resource {resource}")
            }
            GenSetEvent::Rule2 { from, new } => write!(
                f,
                "  rule 2: partially compatible with resource {from} — created resource {new}"
            ),
            GenSetEvent::Rule2Discarded { from } => write!(
                f,
                "  rule 2: partially compatible with resource {from} — combination discarded"
            ),
            GenSetEvent::Rule3 { new } => {
                write!(f, "  rule 3: pair not co-resident — added as resource {new}")
            }
            GenSetEvent::Rule4 { class, new } => write!(
                f,
                "rule 4: class c{class} has only the 0 self-latency — added resource {new}"
            ),
        }
    }
}

/// The trace of a generating-set construction.
#[derive(Clone, Debug, Default)]
pub struct GenSetTrace {
    /// Events in the order Algorithm 1 produced them.
    pub events: Vec<GenSetEvent>,
}

/// Builds the generating set of maximal resources (paper Algorithm 1).
///
/// The result is a set of [`SynthResource`]s that (a) forbid only
/// latencies forbidden by `f` and (b) include every maximal resource of
/// the target machine (Theorem 1); it may also contain some submaximal
/// resources, which [`prune_dominated`](crate::prune_dominated) removes.
///
/// This implementation additionally keeps the working set an *antichain*
/// under usage-set inclusion: a Rule 2 combination already contained in
/// an existing resource is discarded, and resources subsumed by a new or
/// grown resource are dropped. Both moves are safe for Theorem 1 — the
/// inductive argument only requires that, at each step, *some* resource
/// contains all usages accumulated so far, and a superset resource
/// satisfies that just as well — and they keep the construction
/// polynomial in practice on machine descriptions with long non-pipelined
/// occupancies.
pub fn generating_set(f: &ForbiddenMatrix) -> Vec<SynthResource> {
    build(f, None, None).expect("unlimited budget cannot exhaust")
}

/// Like [`generating_set`], also recording every rule application —
/// used by the Figure 3 reproduction and for debugging machine models.
pub fn generating_set_traced(f: &ForbiddenMatrix) -> (Vec<SynthResource>, GenSetTrace) {
    let mut trace = GenSetTrace::default();
    let set = build(f, Some(&mut trace), None).expect("unlimited budget cannot exhaust");
    (set, trace)
}

/// Like [`generating_set`], but charges one step per elementary pair and
/// per pair-versus-resource consideration against `budget`, unwinding
/// with [`RmdError::BudgetExhausted`](crate::RmdError::BudgetExhausted)
/// when it runs out — the hook
/// [`reduce_with_fallback`](crate::reduce_with_fallback) uses to bound
/// worst-case work.
///
/// # Errors
///
/// Returns [`RmdError::BudgetExhausted`](crate::RmdError::BudgetExhausted)
/// if `budget` runs out mid-construction.
pub fn generating_set_budgeted(
    f: &ForbiddenMatrix,
    budget: &mut StepBudget,
) -> Result<Vec<SynthResource>, RmdError> {
    build(f, None, Some(budget))
}

/// A 64-bit inclusion signature: `sig(a) & !sig(b) != 0` proves `a ⊄ b`.
fn signature(r: &SynthResource) -> u64 {
    let mut s = 0u64;
    for u in r.usages() {
        s |= 1u64 << ((u.class.wrapping_mul(31).wrapping_add(u.cycle)) % 64);
    }
    s
}

struct WorkingSet {
    /// Slot is `None` once the resource has been subsumed.
    slots: Vec<Option<SynthResource>>,
    sigs: Vec<u64>,
}

impl WorkingSet {
    fn new() -> Self {
        WorkingSet {
            slots: Vec::new(),
            sigs: Vec::new(),
        }
    }

    /// Is `cand` a subset of (or equal to) some live resource?
    fn subsumed(&self, cand: &SynthResource, sig: u64) -> bool {
        self.slots.iter().zip(&self.sigs).any(|(s, &rs)| {
            sig & !rs == 0 && s.as_ref().is_some_and(|r| cand.is_subset(r))
        })
    }

    /// Drops live resources that are strict subsets of `cand`.
    fn drop_subsets_of(&mut self, cand: &SynthResource, sig: u64, except: usize) {
        for i in 0..self.slots.len() {
            if i == except {
                continue;
            }
            if self.sigs[i] & !sig != 0 {
                continue;
            }
            if let Some(r) = &self.slots[i] {
                if r.len() < cand.len() && r.is_subset(cand) {
                    self.slots[i] = None;
                }
            }
        }
    }

    /// Adds `cand` (assumed not subsumed); returns its index.
    fn push(&mut self, cand: SynthResource) -> usize {
        let sig = signature(&cand);
        self.drop_subsets_of(&cand, sig, usize::MAX);
        self.slots.push(Some(cand));
        self.sigs.push(sig);
        self.slots.len() - 1
    }

    fn refresh_sig(&mut self, i: usize) {
        if let Some(r) = &self.slots[i] {
            self.sigs[i] = signature(r);
        }
    }
}

fn build(
    f: &ForbiddenMatrix,
    mut trace: Option<&mut GenSetTrace>,
    mut budget: Option<&mut StepBudget>,
) -> Result<Vec<SynthResource>, RmdError> {
    let n = f.num_ops();
    let mut set = WorkingSet::new();

    macro_rules! charge {
        ($n:expr) => {
            if let Some(b) = budget.as_deref_mut() {
                b.charge($n)?;
            }
        };
    }

    macro_rules! emit {
        ($e:expr) => {
            if let Some(t) = trace.as_deref_mut() {
                t.events.push($e);
            }
        };
    }

    // Step 1: elementary pairs for all nonnegative forbidden latencies,
    // excluding the 0 self-contention latencies (Rule 4 covers those).
    // Row-major order matches the paper's Figure 3 walk-through.
    for x in 0..n {
        for y in 0..n {
            for lat in f.get_idx(x, y).iter_nonneg() {
                if lat == 0 && x == y {
                    continue;
                }
                charge!(1);
                let u0 = SynthUsage::new(x as u32, 0);
                let u1 = SynthUsage::new(y as u32, lat as u32);
                emit!(GenSetEvent::ProcessPair {
                    x: x as u32,
                    y: y as u32,
                    latency: lat,
                });

                // Step 2: try the pair against every resource currently
                // in the set (snapshot; later additions already hold it).
                let snapshot = set.slots.len();
                let mut co_resident = false;
                for qi in 0..snapshot {
                    charge!(1);
                    let Some(q) = &set.slots[qi] else { continue };
                    if q.accepts(f, u0) && q.accepts(f, u1) {
                        // Rule 1: merge the pair into q.
                        let q = set.slots[qi].as_mut().expect("checked live");
                        let grew = q.insert(u0) | q.insert(u1);
                        co_resident = true;
                        if grew {
                            set.refresh_sig(qi);
                            let grown = set.slots[qi].clone().expect("live");
                            let sig = set.sigs[qi];
                            set.drop_subsets_of(&grown, sig, qi);
                        }
                        emit!(GenSetEvent::Rule1 { resource: qi });
                    } else {
                        // Rule 2: combine the pair with the compatible
                        // subset of q.
                        let q = set.slots[qi].as_ref().expect("checked live");
                        let mut cand = SynthResource::from_usages([u0, u1]);
                        for &w in q.usages() {
                            if crate::synth::usages_compatible(f, w, u0)
                                && crate::synth::usages_compatible(f, w, u1)
                            {
                                cand.insert(w);
                            }
                        }
                        // "If this new resource is not simply p itself
                        // with no other usages, then it is added" — and
                        // a combination an existing resource already
                        // contains adds nothing (antichain invariant).
                        if cand.len() > 2 {
                            let sig = signature(&cand);
                            if set.subsumed(&cand, sig) {
                                co_resident = true;
                                emit!(GenSetEvent::Rule2Discarded { from: qi });
                            } else {
                                let idx = set.push(cand);
                                co_resident = true;
                                emit!(GenSetEvent::Rule2 { from: qi, new: idx });
                            }
                        } else {
                            emit!(GenSetEvent::Rule2Discarded { from: qi });
                        }
                    }
                }

                // Rule 3: the pair is not yet co-resident in any resource.
                if !co_resident {
                    let pair = SynthResource::from_usages([u0, u1]);
                    let sig = signature(&pair);
                    if !set.subsumed(&pair, sig) {
                        let idx = set.push(pair);
                        emit!(GenSetEvent::Rule3 { new: idx });
                    }
                }
            }
        }
    }

    // Step 3 / Rule 4: operations whose only forbidden latency is the 0
    // self-contention get a dedicated single-usage resource.
    for x in 0..n {
        let only_self_zero = (0..n).all(|z| {
            let row = f.get_idx(x, z);
            let col = f.get_idx(z, x);
            if z == x {
                row.len() == 1 && row.contains(0)
            } else {
                row.is_empty() && col.is_empty()
            }
        });
        if only_self_zero && !f.get_idx(x, x).is_empty() {
            let r = SynthResource::from_usages([SynthUsage::new(x as u32, 0)]);
            let idx = set.push(r);
            emit!(GenSetEvent::Rule4 {
                class: x as u32,
                new: idx,
            });
        }
    }

    Ok(set.slots.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_latency::ForbiddenMatrix;
    use rmd_machine::models::example_machine;
    use rmd_machine::MachineBuilder;

    fn u(c: u32, cy: u32) -> SynthUsage {
        SynthUsage::new(c, cy)
    }

    #[test]
    fn example_machine_generating_set_matches_figure_3() {
        // Figure 3d: the final generating set for the example machine is
        // { [B@0 A@1], [B@0 B@1 B@2 B@3] } (A = class 0, B = class 1).
        let f = ForbiddenMatrix::compute(&example_machine());
        let set = generating_set(&f);
        let r0 = SynthResource::from_usages([u(1, 0), u(0, 1)]);
        let r1 = SynthResource::from_usages([u(1, 0), u(1, 1), u(1, 2), u(1, 3)]);
        assert!(set.contains(&r0), "{set:?}");
        assert!(set.contains(&r1), "{set:?}");
        // All generated resources are valid.
        for r in &set {
            assert!(r.is_valid(&f), "{r}");
        }
    }

    #[test]
    fn trace_replays_paper_order() {
        let f = ForbiddenMatrix::compute(&example_machine());
        let (_, trace) = generating_set_traced(&f);
        let pairs: Vec<(u32, u32, i32)> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                GenSetEvent::ProcessPair { x, y, latency } => Some((*x, *y, *latency)),
                _ => None,
            })
            .collect();
        // The paper processes 1∈F[B][A], then 1,2,3 ∈ F[B][B].
        assert_eq!(pairs, vec![(1, 0, 1), (1, 1, 1), (1, 1, 2), (1, 1, 3)]);
    }

    #[test]
    fn rule4_fires_for_isolated_ops() {
        let mut b = MachineBuilder::new("m");
        let r0 = b.resource("r0");
        let r1 = b.resource("r1");
        b.operation("solo").usage(r0, 0).finish();
        b.operation("other").usage(r1, 0).usage(r1, 2).finish();
        let m = b.build().unwrap();
        let f = ForbiddenMatrix::compute(&m);
        let set = generating_set(&f);
        assert!(
            set.contains(&SynthResource::from_usages([u(0, 0)])),
            "solo op needs a single-usage resource: {set:?}"
        );
    }

    #[test]
    fn generated_resources_never_overforbid() {
        for m in rmd_machine::models::all_machines() {
            if m.num_operations() > 20 {
                continue; // big models covered in integration tests
            }
            let f = ForbiddenMatrix::compute(&m);
            for r in generating_set(&f) {
                assert!(r.is_valid(&f), "{}: {r}", m.name());
            }
        }
    }

    #[test]
    fn generating_set_covers_every_latency() {
        let m = example_machine();
        let f = ForbiddenMatrix::compute(&m);
        let set = generating_set(&f);
        let mut covered = std::collections::HashSet::new();
        for r in &set {
            covered.extend(r.forbidden_triples());
        }
        for x in 0..f.num_ops() {
            for y in 0..f.num_ops() {
                for lat in f.get_idx(x, y).iter_nonneg() {
                    assert!(
                        covered.contains(&(x as u32, y as u32, lat)),
                        "latency {lat} ∈ F[{x}][{y}] uncovered"
                    );
                }
            }
        }
    }

    #[test]
    fn result_is_an_antichain() {
        let f = ForbiddenMatrix::compute(&rmd_machine::models::mips_r3000());
        let set = generating_set(&f);
        for (i, a) in set.iter().enumerate() {
            for (j, b) in set.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset(b), "resource {i} ⊆ resource {j}");
                }
            }
        }
    }
}
