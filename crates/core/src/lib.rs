//! The machine-description reduction pipeline of Eichenberger & Davidson
//! (PLDI 1996).
//!
//! Given a machine description written close to the hardware, this crate
//! synthesizes a **reduced** description — far fewer resources and
//! resource usages — whose forbidden-latency matrix is *identical* to the
//! original's, so that contention queries against the reduced tables give
//! exactly the same answers while touching far less state.
//!
//! The pipeline (paper §3–§5):
//!
//! 1. Compute the forbidden-latency matrix and operation classes
//!    (delegated to [`rmd_latency`]).
//! 2. Build the *generating set of maximal resources* from elementary
//!    usage pairs ([`generating_set`], Algorithm 1, Rules 1–4).
//! 3. Prune dominated resources and greedily select a subset of resources
//!    and usages that covers every forbidden latency ([`select`]),
//!    minimizing either total usages ([`Objective::ResUses`], for the
//!    discrete representation) or nonempty k-cycle words
//!    ([`Objective::KCycleWord`], for the bitvector representation).
//!
//! [`reduce`] runs the whole pipeline; [`verify_equivalence`] is the
//! acceptance test, re-deriving the matrix from the reduced machine and
//! comparing bit-for-bit.
//!
//! # Example
//!
//! ```
//! use rmd_core::{reduce, verify_equivalence, Objective};
//! use rmd_machine::models::example_machine;
//!
//! let m = example_machine();
//! let red = reduce(&m, Objective::ResUses);
//! // Figure 1d: 2 synthesized resources; A uses 1, B uses 4.
//! assert_eq!(red.reduced.num_resources(), 2);
//! assert!(verify_equivalence(&m, &red.reduced).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod fallback;
pub mod fingerprints;
mod genset;
mod prune;
mod reduce;
mod select;
mod stats;
mod synth;
mod verify;

pub use error::{Limits, RmdError, StepBudget};
pub use fallback::{reduce_with_fallback, FallbackEvent, FallbackReduction};
pub use genset::{
    generating_set, generating_set_budgeted, generating_set_traced, GenSetEvent, GenSetTrace,
};
pub use prune::{dominated_by, prune_dominated};
pub use reduce::{reduce, try_reduce, ReduceOptions, Reduction, REDUCTION_PHASES};
pub use select::{select, Objective, Selection};
pub use stats::{avg_word_usages, word_usages_of_table, DescriptionStats};
pub use synth::{SynthResource, SynthUsage};
pub use verify::{verify_equivalence, EquivalenceError};
