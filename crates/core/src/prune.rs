//! Pruning dominated resources from a generating set.

use crate::synth::SynthResource;

/// Removes every resource whose generated forbidden-latency set is covered
/// by some other remaining resource (paper §5, first step of the selection
/// heuristic).
///
/// This eliminates submaximal resources that Algorithm 1 may have
/// produced, as well as redundant maximal resources such as mirror
/// images. When two resources generate *equal* sets, exactly one
/// survives.
///
/// The scan is deterministic: resources are visited in ascending order of
/// generated-set size (ties broken by original index), so smaller, less
/// useful resources are discarded first.
pub fn prune_dominated(set: &[SynthResource]) -> Vec<SynthResource> {
    dominated_by(set)
        .iter()
        .zip(set)
        .filter(|(d, _)| d.is_none())
        .map(|(_, r)| r.clone())
        .collect()
}

/// For each resource, the index of the *surviving* resource that
/// dominates it — its generated forbidden set is a subset of the
/// survivor's — or `None` for resources [`prune_dominated`] keeps.
///
/// This is the domination relation pruning acts on, exposed separately
/// so diagnostics (rmd-analyze's dominated-resource lint) can name the
/// dominator instead of merely observing that pruning shrank the set.
/// `prune_dominated(set)` keeps exactly the `None` entries, in order.
pub fn dominated_by(set: &[SynthResource]) -> Vec<Option<usize>> {
    let triples: Vec<Vec<(u32, u32, i32)>> =
        set.iter().map(SynthResource::forbidden_triples).collect();
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by_key(|&i| (triples[i].len(), i));

    // `dom[j].is_some()` ⟺ j has already been visited and removed, so
    // the guard matches the original "still live" scan exactly.
    let mut dom: Vec<Option<usize>> = vec![None; set.len()];
    for &i in &order {
        dom[i] = (0..set.len())
            .find(|&j| j != i && dom[j].is_none() && is_sorted_subset(&triples[i], &triples[j]));
    }
    // A dominator only had to be live at visit time and may itself be
    // pruned later (by an equal set visited after it); chase each chain
    // to its surviving end. Chains follow removal order, so they are
    // acyclic.
    for i in 0..set.len() {
        let Some(mut j) = dom[i] else { continue };
        while let Some(k) = dom[j] {
            j = k;
        }
        dom[i] = Some(j);
    }
    dom
}

/// Subset test over two sorted, deduplicated slices.
fn is_sorted_subset(a: &[(u32, u32, i32)], b: &[(u32, u32, i32)]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0;
    for x in a {
        loop {
            if bi >= b.len() {
                return false;
            }
            match b[bi].cmp(x) {
                core::cmp::Ordering::Less => bi += 1,
                core::cmp::Ordering::Equal => {
                    bi += 1;
                    break;
                }
                core::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genset::generating_set;
    use crate::synth::SynthUsage;
    use rmd_latency::ForbiddenMatrix;
    use rmd_machine::models::example_machine;
    use std::collections::HashSet;

    fn u(c: u32, cy: u32) -> SynthUsage {
        SynthUsage::new(c, cy)
    }

    #[test]
    fn sorted_subset_works() {
        let a = vec![(0, 0, 0), (1, 1, 2)];
        let b = vec![(0, 0, 0), (0, 1, 1), (1, 1, 2)];
        assert!(is_sorted_subset(&a, &b));
        assert!(!is_sorted_subset(&b, &a));
        assert!(is_sorted_subset(&[], &a));
        assert!(!is_sorted_subset(&[(9, 9, 9)], &b));
    }

    #[test]
    fn submaximal_resources_are_removed() {
        let big = SynthResource::from_usages([u(1, 0), u(1, 1), u(1, 2), u(1, 3)]);
        let small = SynthResource::from_usages([u(1, 0), u(1, 1)]);
        let pruned = prune_dominated(&[small, big.clone()]);
        assert_eq!(pruned, vec![big]);
    }

    #[test]
    fn equal_sets_keep_exactly_one() {
        // Mirror images generate the same forbidden set.
        let r = SynthResource::from_usages([u(1, 0), u(0, 1)]);
        let pruned = prune_dominated(&[r.clone(), r.clone()]);
        assert_eq!(pruned.len(), 1);
    }

    #[test]
    fn example_machine_prunes_to_two_maximal_resources() {
        // The paper: the example machine has exactly two maximal
        // resources (Figure 1c).
        let f = ForbiddenMatrix::compute(&example_machine());
        let pruned = prune_dominated(&generating_set(&f));
        assert_eq!(pruned.len(), 2, "{pruned:?}");
        let expect: HashSet<SynthResource> = [
            SynthResource::from_usages([u(1, 0), u(0, 1)]),
            SynthResource::from_usages([u(1, 0), u(1, 1), u(1, 2), u(1, 3)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(pruned.into_iter().collect::<HashSet<_>>(), expect);
    }

    #[test]
    fn dominated_by_names_a_surviving_dominator() {
        let small = SynthResource::from_usages([u(1, 0), u(1, 1)]);
        // Two mirror-equal supersets: the first is pruned in favor of the
        // second, so the small resource's chain must be chased past it.
        let a = SynthResource::from_usages([u(1, 0), u(1, 1), u(1, 2), u(1, 3)]);
        let b = a.clone();
        let dom = dominated_by(&[small, a, b]);
        assert_eq!(dom, vec![Some(2), Some(2), None]);
    }

    #[test]
    fn pruning_preserves_total_coverage() {
        let f = ForbiddenMatrix::compute(&example_machine());
        let set = generating_set(&f);
        let pruned = prune_dominated(&set);
        let cov = |rs: &[SynthResource]| {
            rs.iter()
                .flat_map(SynthResource::forbidden_triples)
                .collect::<HashSet<_>>()
        };
        assert_eq!(cov(&set), cov(&pruned));
    }
}
