//! The end-to-end reduction driver.

use crate::error::{Limits, RmdError, StepBudget};
use crate::genset::generating_set_budgeted;
use crate::prune::prune_dominated;
use crate::select::{select, Objective, Selection};
use rmd_latency::{ClassPartition, ForbiddenMatrix};
use rmd_machine::{MachineBuilder, MachineDescription};

/// The reduction pipeline's phase names, in execution order, exactly as
/// they appear in the `cat = "reduce"` spans emitted while
/// [`rmd_obs`] tracing is enabled.
///
/// Every phase listed here fires on **every** successful
/// [`reduce_with_fallback`](crate::reduce_with_fallback) run, so trace
/// consumers (the `rmd profile` report, the CI smoke check) can require
/// all of them to be present. The `fallback` *instant* event is not in
/// this list because it only fires when the pipeline degrades to the
/// original tables.
pub const REDUCTION_PHASES: &[&str] = &[
    "forbidden_matrix",
    "classes",
    "genset",
    "prune",
    "select",
    "materialize",
    "verify",
];

/// Knobs for [`try_reduce`] and
/// [`reduce_with_fallback`](crate::reduce_with_fallback).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ReduceOptions {
    /// Structural limits applied to the input before any work happens.
    pub limits: Limits,
    /// Step budget for generating-set construction; `None` is unlimited.
    pub max_steps: Option<u64>,
}

/// The result of reducing a machine description (paper §3–§5).
#[derive(Clone, Debug)]
pub struct Reduction {
    /// Operation classes of the original machine.
    pub classes: ClassPartition,
    /// One representative operation per class.
    pub class_machine: MachineDescription,
    /// Class-level forbidden-latency matrix (the reduction's input and
    /// its preserved invariant).
    pub matrix: ForbiddenMatrix,
    /// Size of the generating set before pruning.
    pub genset_size: usize,
    /// Size after pruning dominated resources.
    pub pruned_size: usize,
    /// The selected synthesized resources and usages.
    pub selection: Selection,
    /// The reduced machine with one operation per class.
    pub reduced_classes: MachineDescription,
    /// The reduced machine with every original operation (its table is
    /// its class's reduced table); weights and alternative-base links are
    /// preserved, so this is a drop-in replacement for the original.
    pub reduced: MachineDescription,
}

/// Runs the full reduction pipeline on `machine` under `objective`.
///
/// The returned [`Reduction::reduced`] machine produces **exactly** the
/// same forbidden-latency matrix as `machine`
/// (see [`verify_equivalence`](crate::verify_equivalence)), while using
/// far fewer resources and usages.
///
/// # Example
///
/// ```
/// use rmd_core::{reduce, Objective};
/// use rmd_machine::models::mips_r3000;
///
/// let m = mips_r3000();
/// let red = reduce(&m, Objective::ResUses);
/// assert!(red.reduced.num_resources() < m.num_resources());
/// assert!(red.reduced.total_usages() < m.total_usages());
/// ```
///
/// # Panics
///
/// Panics if the internal invariants are violated (e.g. a class ends up
/// with an empty reduced table) — this indicates a bug, not bad input, as
/// any valid machine can be reduced. Callers that must not panic on
/// hostile input should use [`try_reduce`] (typed errors) or
/// [`reduce_with_fallback`](crate::reduce_with_fallback) (graceful
/// degradation to the original tables).
pub fn reduce(machine: &MachineDescription, objective: Objective) -> Reduction {
    try_reduce(machine, objective, &ReduceOptions::default())
        .expect("reduction of a valid machine under default options cannot fail")
}

/// Runs the full reduction pipeline with explicit input validation and an
/// optional step budget, reporting failures as [`RmdError`] instead of
/// panicking.
///
/// # Errors
///
/// - [`RmdError::LimitExceeded`] / [`RmdError::DegenerateInput`] if the
///   input violates [`ReduceOptions::limits`];
/// - [`RmdError::BudgetExhausted`] if [`ReduceOptions::max_steps`] runs
///   out during generating-set construction;
/// - [`RmdError::InvalidMachine`] if an internal build step rejects its
///   machine (unreachable for valid inputs; kept as a typed error so
///   hostile inputs can never convert a bug into a panic).
pub fn try_reduce(
    machine: &MachineDescription,
    objective: Objective,
    options: &ReduceOptions,
) -> Result<Reduction, RmdError> {
    options.limits.validate(machine)?;
    let mut budget = match options.max_steps {
        Some(limit) => StepBudget::new(limit),
        None => StepBudget::unlimited(),
    };

    // Step 1: classes and the class-level matrix.
    let f_ops = {
        let _s = rmd_obs::span("reduce", "forbidden_matrix");
        ForbiddenMatrix::compute(machine)
    };
    let (classes, class_machine, matrix) = {
        let mut s = rmd_obs::span("reduce", "classes");
        let classes = ClassPartition::compute(machine, &f_ops);
        let class_machine = classes.class_machine(machine)?;
        let matrix = ForbiddenMatrix::compute(&class_machine);
        s.set_arg("classes", matrix.num_ops() as u64);
        (classes, class_machine, matrix)
    };

    // Step 2: generating set of maximal resources.
    let genset = {
        let mut s = rmd_obs::span("reduce", "genset");
        let genset = generating_set_budgeted(&matrix, &mut budget)?;
        s.set_arg("resources", genset.len() as u64);
        genset
    };
    let genset_size = genset.len();
    let pruned = {
        let mut s = rmd_obs::span("reduce", "prune");
        let pruned = prune_dominated(&genset);
        s.set_arg("kept", pruned.len() as u64);
        pruned
    };
    let pruned_size = pruned.len();

    // Cover selection touches every (resource, latency) pair; charge it
    // against the same budget before doing the work.
    budget.charge((pruned.len() as u64).saturating_mul(matrix.num_ops() as u64))?;

    // Step 3: cover selection.
    let selection = {
        let mut s = rmd_obs::span("reduce", "select");
        let selection = select(&matrix, &pruned, objective);
        s.set_arg("selected", selection.resources.len() as u64);
        selection
    };

    let _materialize_span = rmd_obs::span("reduce", "materialize");

    // Materialize the reduced class machine.
    let mut b = MachineBuilder::new(format!("{}-reduced", machine.name()));
    let mut qids = Vec::with_capacity(selection.resources.len());
    for i in 0..selection.resources.len() {
        qids.push(b.resource(format!("q{i}")));
    }
    for (ci, _) in classes.iter() {
        let rep = class_machine.operation(rmd_machine::OpId(ci.0));
        let mut ob = b.operation(rep.name().to_owned()).weight(rep.weight());
        for (ri, r) in selection.resources.iter().enumerate() {
            for u in r.usages() {
                if u.class == ci.0 {
                    ob = ob.usage(qids[ri], u.cycle);
                }
            }
        }
        ob.finish();
    }
    let reduced_classes = b.build()?;

    // Materialize the reduced full machine: each original op carries its
    // class's reduced table.
    let mut b = MachineBuilder::new(format!("{}-reduced", machine.name()));
    for i in 0..selection.resources.len() {
        b.resource(format!("q{i}"));
    }
    for (id, op) in machine.ops() {
        let class_table = reduced_classes
            .operation(rmd_machine::OpId(classes.class_of(id).0))
            .table()
            .clone();
        let mut ob = b.operation(op.name().to_owned()).weight(op.weight());
        if let Some(base) = op.base() {
            ob = ob.base(base.to_owned());
        }
        for u in class_table.usages() {
            ob = ob.usage(u.resource, u.cycle);
        }
        ob.finish();
    }
    let reduced = b.build()?;

    Ok(Reduction {
        classes,
        class_machine,
        matrix,
        genset_size,
        pruned_size,
        selection,
        reduced_classes,
        reduced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_equivalence;
    use rmd_machine::models::example_machine;

    #[test]
    fn figure_1_reduction() {
        let m = example_machine();
        let red = reduce(&m, Objective::ResUses);
        assert_eq!(red.reduced.num_resources(), 2);
        // A: 3 usages -> 1, B: 8 usages -> 4.
        let a = red.reduced.operation(red.reduced.op_by_name("A").unwrap());
        let b = red.reduced.operation(red.reduced.op_by_name("B").unwrap());
        assert_eq!(a.table().num_usages(), 1);
        assert_eq!(b.table().num_usages(), 4);
        assert!(verify_equivalence(&m, &red.reduced).is_ok());
    }

    #[test]
    fn reduction_preserves_names_weights_and_order() {
        let m = rmd_machine::models::mips_r3000();
        let red = reduce(&m, Objective::ResUses);
        assert_eq!(red.reduced.num_operations(), m.num_operations());
        for (id, op) in m.ops() {
            let rop = red.reduced.operation(id);
            assert_eq!(op.name(), rop.name());
            assert!((op.weight() - rop.weight()).abs() < 1e-12);
        }
    }

    #[test]
    fn class_members_share_reduced_tables() {
        let m = rmd_machine::models::cydra5();
        let red = reduce(&m, Objective::ResUses);
        let iadd = m.op_by_name("iadd").unwrap();
        let ior = m.op_by_name("ior").unwrap();
        assert_eq!(red.classes.class_of(iadd), red.classes.class_of(ior));
        assert_eq!(
            red.reduced.operation(iadd).table(),
            red.reduced.operation(ior).table()
        );
    }

    #[test]
    fn genset_shrinks_under_pruning() {
        let m = example_machine();
        let red = reduce(&m, Objective::ResUses);
        assert!(red.pruned_size <= red.genset_size);
        assert_eq!(red.pruned_size, 2);
    }
}
