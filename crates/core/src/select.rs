//! Step 3: selecting synthesized resources and usages (paper §5).

use crate::synth::{SynthResource, SynthUsage};
use rmd_latency::ForbiddenMatrix;
use std::collections::{HashMap, HashSet};

/// The objective the selection heuristic minimizes, matching the paper's
/// two internal representations of partial schedules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Minimize the total number of resource usages — the right choice
    /// for the *discrete* representation, whose query cost is linear in
    /// usages (paper: "res-uses").
    ResUses,
    /// Minimize the number of nonempty groups of `k` consecutive cycles
    /// in the reduced reservation tables, secondarily packing as many
    /// usages as possible into those groups — the right choice for the
    /// *bitvector* representation with `k` cycle-bitvectors per memory
    /// word (paper: "k-cycle-word uses").
    KCycleWord {
        /// Cycles packed per memory word; must be ≥ 1.
        k: u32,
    },
}

impl Objective {
    fn k(self) -> Option<u32> {
        match self {
            Objective::ResUses => None,
            Objective::KCycleWord { k } => Some(k.max(1)),
        }
    }
}

/// The outcome of resource/usage selection: the reduced synthesized
/// resources (only selected usages, empty resources dropped).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Selection {
    /// The selected resources with their selected usages.
    pub resources: Vec<SynthResource>,
    /// Objective used.
    pub objective: Objective,
}

impl Selection {
    /// Total selected usages across all resources.
    pub fn total_usages(&self) -> usize {
        self.resources.iter().map(SynthResource::len).sum()
    }
}

/// A candidate usage pair within a pruned resource.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    res: usize,
    a: usize,
    b: usize,
}

/// Greedily selects a subset of the pruned generating set's resources and
/// usages that covers every nonnegative forbidden latency of `f`
/// (paper §5's selection heuristic).
///
/// The greedy loop repeatedly takes an uncovered latency with the
/// shortest candidate-pair list and picks the candidate that (for
/// [`Objective::KCycleWord`]) opens the fewest new words, then covers the
/// most uncovered latencies, then has the largest sum of newly covered
/// latencies. For the bitvector objective, every other usage of a chosen
/// resource that falls into an already-nonempty word of the same class's
/// table is selected for free, enabling earlier-out conflict detection.
///
/// # Panics
///
/// Panics if `pruned` cannot cover some forbidden latency of `f` — that
/// would mean it is not a valid (pruned) generating set for `f`.
pub fn select(f: &ForbiddenMatrix, pruned: &[SynthResource], objective: Objective) -> Selection {
    let n = f.num_ops();
    // ---- Target list: all nonnegative forbidden latencies. ----
    let mut targets: Vec<(u32, u32, i32)> = Vec::new();
    let mut target_idx: HashMap<(u32, u32, i32), usize> = HashMap::new();
    for x in 0..n {
        for y in 0..n {
            for lat in f.get_idx(x, y).iter_nonneg() {
                let t = (x as u32, y as u32, lat);
                target_idx.insert(t, targets.len());
                targets.push(t);
            }
        }
    }
    let mut covered = vec![false; targets.len()];
    let mut uncovered_count = targets.len();

    // ---- Candidate lists per target. ----
    let mut candidates: Vec<Vec<Candidate>> = vec![Vec::new(); targets.len()];
    for (ri, r) in pruned.iter().enumerate() {
        let us = r.usages();
        for i in 0..us.len() {
            for j in i..us.len() {
                for t in pair_triples(us[i], us[j]) {
                    if let Some(&ti) = target_idx.get(&t) {
                        candidates[ti].push(Candidate { res: ri, a: i, b: j });
                    }
                }
            }
        }
    }

    // ---- Greedy cover. ----
    // Selected usage flags per resource.
    let mut sel: Vec<Vec<bool>> = pruned.iter().map(|r| vec![false; r.len()]).collect();
    // Nonempty words per class table: (class, word) — bitvector objective.
    let mut words: HashSet<(u32, u32)> = HashSet::new();
    let k = objective.k();

    // Pre-sort target visit order by candidate-list length.
    let mut order: Vec<usize> = (0..targets.len()).collect();
    order.sort_by_key(|&ti| (candidates[ti].len(), ti));

    for &ti in &order {
        if covered[ti] {
            continue;
        }
        assert!(
            !candidates[ti].is_empty(),
            "no candidate generates forbidden latency {:?}; not a generating set",
            targets[ti]
        );
        // Evaluate candidates.
        let mut best: Option<(Candidate, (i64, i64, i64, i64))> = None;
        for &c in &candidates[ti] {
            let gain = candidate_gain(pruned, &sel, c, &covered, &target_idx);
            let new_words = match k {
                None => 0,
                Some(k) => {
                    let us = pruned[c.res].usages();
                    let mut nw: HashSet<(u32, u32)> = HashSet::new();
                    for &ui in &[c.a, c.b] {
                        if !sel[c.res][ui] {
                            let u = us[ui];
                            let w = (u.class, u.cycle / k);
                            if !words.contains(&w) {
                                nw.insert(w);
                            }
                        }
                    }
                    nw.len() as i64
                }
            };
            let newly = gain.len() as i64;
            let sum: i64 = gain.iter().map(|&(_, _, l)| i64::from(l)).sum();
            let new_usages = if c.a == c.b {
                i64::from(!sel[c.res][c.a])
            } else {
                i64::from(!sel[c.res][c.a]) + i64::from(!sel[c.res][c.b])
            };
            // Lexicographic score: fewer new words, more newly covered,
            // larger sum, then fewer new usages (consolidating into
            // already-selected usages). new_words is always 0 for
            // ResUses.
            let score = (-new_words, newly, sum, -new_usages);
            if best.as_ref().map_or(true, |(_, s)| score > *s) {
                best = Some((c, score));
            }
        }
        let (c, _) = best.expect("candidate list nonempty");
        apply_candidate(pruned, &mut sel, c, k, &mut words, &mut covered, &mut uncovered_count, &target_idx);
        if uncovered_count == 0 {
            break;
        }
    }
    debug_assert_eq!(uncovered_count, 0);

    // ---- Bitvector free-packing: a usage in an already-nonempty word of
    // its class's table costs nothing, so select every such usage of the
    // selected resources (paper: "marks every other usage of marked
    // resources within the same word").
    if let Some(k) = k {
        for (ri, r) in pruned.iter().enumerate() {
            if sel[ri].iter().any(|&s| s) {
                for (ui, &u) in r.usages().iter().enumerate() {
                    if !sel[ri][ui] && words.contains(&(u.class, u.cycle / k)) {
                        sel[ri][ui] = true;
                    }
                }
            }
        }
    }

    // ---- Materialize. ----
    let resources: Vec<SynthResource> = pruned
        .iter()
        .zip(&sel)
        .filter_map(|(r, flags)| {
            let picked: Vec<SynthUsage> = r
                .usages()
                .iter()
                .zip(flags)
                .filter(|(_, &s)| s)
                .map(|(&u, _)| u)
                .collect();
            if picked.is_empty() {
                None
            } else {
                Some(SynthResource::from_usages(picked))
            }
        })
        .collect();
    let resources = drop_redundant(resources);
    let resources = consolidate(f, resources);
    let resources = drop_redundant(resources);
    Selection { resources, objective }
}

/// Drops resources whose entire generated forbidden set is also generated
/// by the other selected resources. Greedy covers can leave such
/// stragglers, especially after word-packing adds free usages; removing
/// them shrinks both the resource count and the usage count without
/// touching coverage.
fn drop_redundant(resources: Vec<SynthResource>) -> Vec<SynthResource> {
    let mut kept: Vec<SynthResource> = resources;
    loop {
        let triples: Vec<Vec<(u32, u32, i32)>> =
            kept.iter().map(SynthResource::forbidden_triples).collect();
        let mut counts: HashMap<(u32, u32, i32), usize> = HashMap::new();
        for ts in &triples {
            for &t in ts {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        // Remove the largest fully-redundant resource, if any.
        let victim = (0..kept.len())
            .filter(|&i| triples[i].iter().all(|t| counts[t] >= 2))
            .max_by_key(|&i| kept[i].len());
        match victim {
            Some(i) => {
                kept.remove(i);
            }
            None => return kept,
        }
    }
}

/// Merges selected resources whose union is still valid (every cross
/// pair of usages generates an already-forbidden latency). Merging never
/// changes any class's reserved cycles or word counts — it only reduces
/// the number of synthesized resource rows, and with it the reserved
/// table's bits per cycle.
fn consolidate(f: &ForbiddenMatrix, mut resources: Vec<SynthResource>) -> Vec<SynthResource> {
    let mut i = 0;
    while i < resources.len() {
        let mut j = i + 1;
        while j < resources.len() {
            let mergeable = resources[j]
                .usages()
                .iter()
                .all(|&u| resources[i].accepts(f, u));
            if mergeable {
                let moved: Vec<SynthUsage> = resources[j].usages().to_vec();
                for u in moved {
                    resources[i].insert(u);
                }
                resources.swap_remove(j);
            } else {
                j += 1;
            }
        }
        i += 1;
    }
    resources
}

/// The (oriented, nonnegative) forbidden triples a usage pair generates.
fn pair_triples(u: SynthUsage, v: SynthUsage) -> Vec<(u32, u32, i32)> {
    let d = i64::from(v.cycle) - i64::from(u.cycle);
    match d.cmp(&0) {
        core::cmp::Ordering::Greater => vec![(u.class, v.class, d as i32)],
        core::cmp::Ordering::Less => vec![(v.class, u.class, (-d) as i32)],
        core::cmp::Ordering::Equal => {
            if u == v {
                vec![(u.class, u.class, 0)]
            } else {
                vec![(u.class, v.class, 0), (v.class, u.class, 0)]
            }
        }
    }
}

/// Uncovered triples that selecting candidate `c` would cover.
fn candidate_gain(
    pruned: &[SynthResource],
    sel: &[Vec<bool>],
    c: Candidate,
    covered: &[bool],
    target_idx: &HashMap<(u32, u32, i32), usize>,
) -> Vec<(u32, u32, i32)> {
    let us = pruned[c.res].usages();
    let mut new_usages = vec![c.a];
    if c.b != c.a {
        new_usages.push(c.b);
    }
    let mut gain = HashSet::new();
    for (idx, &nu) in new_usages.iter().enumerate() {
        let u = us[nu];
        // vs previously selected usages of this resource
        for (wi, &w) in us.iter().enumerate() {
            if sel[c.res][wi] {
                for t in pair_triples(w, u) {
                    if let Some(&ti) = target_idx.get(&t) {
                        if !covered[ti] {
                            gain.insert(t);
                        }
                    }
                }
            }
        }
        // vs the other new usage (and itself)
        for &nv in &new_usages[idx..] {
            for t in pair_triples(u, us[nv]) {
                if let Some(&ti) = target_idx.get(&t) {
                    if !covered[ti] {
                        gain.insert(t);
                    }
                }
            }
        }
    }
    gain.into_iter().collect()
}

#[allow(clippy::too_many_arguments)]
fn apply_candidate(
    pruned: &[SynthResource],
    sel: &mut [Vec<bool>],
    c: Candidate,
    k: Option<u32>,
    words: &mut HashSet<(u32, u32)>,
    covered: &mut [bool],
    uncovered_count: &mut usize,
    target_idx: &HashMap<(u32, u32, i32), usize>,
) {
    let us = pruned[c.res].usages();
    let mut newly: Vec<usize> = Vec::new();
    for &ui in &[c.a, c.b] {
        if !sel[c.res][ui] {
            sel[c.res][ui] = true;
            newly.push(ui);
        }
    }
    // Free same-word packing within this resource and class.
    if let Some(k) = k {
        for &ui in &newly.clone() {
            let u = us[ui];
            words.insert((u.class, u.cycle / k));
        }
        for (wi, &w) in us.iter().enumerate() {
            if !sel[c.res][wi] && words.contains(&(w.class, w.cycle / k)) {
                sel[c.res][wi] = true;
                newly.push(wi);
            }
        }
    }
    // Update coverage: new usages against all selected usages of this
    // resource (including each other and themselves).
    for &ni in &newly {
        let u = us[ni];
        for (wi, &w) in us.iter().enumerate() {
            if sel[c.res][wi] {
                for t in pair_triples(w, u) {
                    if let Some(&ti) = target_idx.get(&t) {
                        if !covered[ti] {
                            covered[ti] = true;
                            *uncovered_count -= 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genset::generating_set;
    use crate::prune::prune_dominated;
    use rmd_machine::models::example_machine;

    fn u(c: u32, cy: u32) -> SynthUsage {
        SynthUsage::new(c, cy)
    }

    fn selection_covers_matrix(f: &ForbiddenMatrix, s: &Selection) -> bool {
        let mut covered = HashSet::new();
        for r in &s.resources {
            covered.extend(r.forbidden_triples());
        }
        for x in 0..f.num_ops() {
            for y in 0..f.num_ops() {
                for lat in f.get_idx(x, y).iter_nonneg() {
                    if !covered.contains(&(x as u32, y as u32, lat)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    #[test]
    fn example_machine_res_uses_matches_figure_1d() {
        let f = ForbiddenMatrix::compute(&example_machine());
        let pruned = prune_dominated(&generating_set(&f));
        let s = select(&f, &pruned, Objective::ResUses);
        // Two resources; A has 1 usage; B has 1 + 3 = 4 usages total
        // (the paper notes one redundant B usage can be dropped from the
        // 4-usage maximal resource).
        assert_eq!(s.resources.len(), 2);
        assert_eq!(s.total_usages(), 5);
        let a_usages: usize = s
            .resources
            .iter()
            .flat_map(|r| r.usages())
            .filter(|u| u.class == 0)
            .count();
        assert_eq!(a_usages, 1);
        assert!(selection_covers_matrix(&f, &s));
    }

    #[test]
    fn example_machine_every_selection_is_valid() {
        let f = ForbiddenMatrix::compute(&example_machine());
        let pruned = prune_dominated(&generating_set(&f));
        for obj in [
            Objective::ResUses,
            Objective::KCycleWord { k: 1 },
            Objective::KCycleWord { k: 2 },
            Objective::KCycleWord { k: 4 },
        ] {
            let s = select(&f, &pruned, obj);
            assert!(selection_covers_matrix(&f, &s), "{obj:?}");
            for r in &s.resources {
                assert!(r.is_valid(&f), "{obj:?}: {r}");
            }
        }
    }

    #[test]
    fn kcycle_packing_adds_free_usages() {
        let f = ForbiddenMatrix::compute(&example_machine());
        let pruned = prune_dominated(&generating_set(&f));
        let res = select(&f, &pruned, Objective::ResUses).total_usages();
        let k4 = select(&f, &pruned, Objective::KCycleWord { k: 4 }).total_usages();
        // With 4-cycle words the B@{0,1,2,3} usages are all in word 0, so
        // packing keeps them all.
        assert!(k4 >= res, "k4={k4} res={res}");
    }

    #[test]
    fn consolidation_merges_compatible_resources() {
        // Two ops conflicting only at 0 on separate "clusters" can share
        // one synthesized resource iff the cross pair is forbidden too.
        let mut b = rmd_machine::MachineBuilder::new("m");
        let r0 = b.resource("r0");
        let r1 = b.resource("r1");
        let shared = b.resource("shared");
        b.operation("x").usage(r0, 0).usage(shared, 0).finish();
        b.operation("y").usage(r1, 0).usage(shared, 0).finish();
        let m = b.build().unwrap();
        let f = ForbiddenMatrix::compute(&m);
        let pruned = prune_dominated(&generating_set(&f));
        let s = select(&f, &pruned, Objective::ResUses);
        // x and y conflict at 0 (shared), so one resource covers all
        // three targets; consolidation must not leave two.
        assert_eq!(s.resources.len(), 1, "{:?}", s.resources);
    }

    #[test]
    fn redundant_resources_are_dropped() {
        let f = ForbiddenMatrix::compute(&example_machine());
        let pruned = prune_dominated(&generating_set(&f));
        for obj in [Objective::ResUses, Objective::KCycleWord { k: 4 }] {
            let s = select(&f, &pruned, obj);
            // No selected resource may be fully redundant.
            let triples: Vec<_> = s
                .resources
                .iter()
                .map(SynthResource::forbidden_triples)
                .collect();
            for (i, ts) in triples.iter().enumerate() {
                let elsewhere: std::collections::HashSet<_> = triples
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .flat_map(|(_, t)| t.iter().copied())
                    .collect();
                assert!(
                    ts.iter().any(|t| !elsewhere.contains(t)),
                    "{obj:?}: resource {i} contributes nothing"
                );
            }
        }
    }

    #[test]
    fn zero_latency_targets_coverable_by_single_usage() {
        // A machine where two ops conflict only at latency 0.
        let mut b = rmd_machine::MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish();
        b.operation("y").usage(r, 0).finish();
        let m = b.build().unwrap();
        let f = ForbiddenMatrix::compute(&m);
        let pruned = prune_dominated(&generating_set(&f));
        let s = select(&f, &pruned, Objective::ResUses);
        assert!(selection_covers_matrix(&f, &s));
        // One resource with both ops at cycle 0 suffices.
        assert_eq!(s.resources.len(), 1);
        assert_eq!(s.resources[0].usages(), &[u(0, 0), u(1, 0)]);
    }
}
