//! Description metrics matching the paper's Tables 1–4.

use rmd_machine::{MachineDescription, ReservationTable};

/// Summary statistics of a machine description, one row of the paper's
/// Tables 1–4.
///
/// All per-operation averages use uniform weights over the machine's
/// operations (the paper's §6 assumption; the machines handed to these
/// functions have one operation per class).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DescriptionStats {
    /// Total number of resources modeled.
    pub num_resources: usize,
    /// Number of operations (classes).
    pub num_operations: usize,
    /// Total resource usages over all reservation tables.
    pub total_usages: usize,
    /// Average resource usages per operation.
    pub avg_usages_per_op: f64,
}

impl DescriptionStats {
    /// Computes the statistics of `m`.
    pub fn of(m: &MachineDescription) -> Self {
        DescriptionStats {
            num_resources: m.num_resources(),
            num_operations: m.num_operations(),
            total_usages: m.total_usages(),
            avg_usages_per_op: m.avg_usages_per_op(),
        }
    }

    /// Bits needed per schedule cycle to store a reserved table for this
    /// machine (one flag per resource) — the paper's memory-storage
    /// comparison ("22 to 90% of the memory storage").
    pub fn reserved_bits_per_cycle(&self) -> usize {
        self.num_resources
    }
}

/// Number of nonempty `k`-cycle words in `table` when its cycles are
/// shifted by `alignment` before packing — i.e. how many memory words a
/// bitvector `check` touches for a query at a cycle congruent to
/// `alignment (mod k)`.
pub fn word_usages_of_table(table: &ReservationTable, k: u32, alignment: u32) -> usize {
    assert!(k >= 1, "word size must be at least one cycle");
    let mut words: Vec<u32> = table
        .usages()
        .iter()
        .map(|u| (u.cycle + alignment) / k)
        .collect();
    words.sort_unstable();
    words.dedup();
    words.len()
}

/// Average nonempty-word count per operation, averaged over all
/// operations and all `k` possible alignments between the reserved and
/// reservation bitvectors — the paper's *word usage* metric (Tables 1–4).
pub fn avg_word_usages(m: &MachineDescription, k: u32) -> f64 {
    let mut total = 0usize;
    for op in m.operations() {
        for a in 0..k {
            total += word_usages_of_table(op.table(), k, a);
        }
    }
    total as f64 / (m.num_operations() as f64 * f64::from(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::{MachineBuilder, ResourceId};

    #[test]
    fn word_usages_respect_alignment() {
        let t = ReservationTable::from_usages([
            (ResourceId(0), 0),
            (ResourceId(1), 1),
            (ResourceId(0), 4),
        ]);
        // k=4, alignment 0: words {0, 1} -> 2.
        assert_eq!(word_usages_of_table(&t, 4, 0), 2);
        // k=4, alignment 3: cycles 3,4,7 -> words {0,1,1} -> 2.
        assert_eq!(word_usages_of_table(&t, 4, 3), 2);
        // k=1: every distinct cycle is a word.
        assert_eq!(word_usages_of_table(&t, 1, 0), 3);
        // k large: single word.
        assert_eq!(word_usages_of_table(&t, 16, 0), 1);
    }

    #[test]
    fn multiple_resources_in_one_cycle_share_a_word() {
        let t = ReservationTable::from_usages([(ResourceId(0), 0), (ResourceId(1), 0)]);
        assert_eq!(word_usages_of_table(&t, 1, 0), 1);
    }

    #[test]
    fn avg_word_usages_averages_ops_and_alignments() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish(); // 1 word at any alignment
        b.operation("y").usage(r, 0).usage(r, 1).finish();
        let m = b.build().unwrap();
        // k=2: op y occupies 1 word at alignment 0 ({0,0}), 2 at
        // alignment 1 (cycles 1,2 -> words 0,1). Average over ops and
        // alignments: (1+1+1+2)/4 = 1.25.
        assert!((avg_word_usages(&m, 2) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn stats_of_reports_counts() {
        let m = rmd_machine::models::example_machine();
        let s = DescriptionStats::of(&m);
        assert_eq!(s.num_resources, 5);
        assert_eq!(s.num_operations, 2);
        assert_eq!(s.total_usages, 11);
        assert!((s.avg_usages_per_op - 5.5).abs() < 1e-12);
        assert_eq!(s.reserved_bits_per_cycle(), 5);
    }
}
