//! Synthesized resources: the currency of the reduction algorithms.

use core::fmt;
use rmd_latency::ForbiddenMatrix;

/// A usage of a synthesized resource: operation class `class` reserves the
/// resource in `cycle` (relative to issue).
///
/// `class` indexes the operations of the *class machine* the reduction
/// runs over (one operation per class).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SynthUsage {
    /// Class index within the class machine.
    pub class: u32,
    /// Reservation cycle, relative to issue.
    pub cycle: u32,
}

impl SynthUsage {
    /// Creates a usage of the synthesized resource by `class` in `cycle`.
    pub fn new(class: u32, cycle: u32) -> Self {
        SynthUsage { class, cycle }
    }
}

impl fmt::Display for SynthUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}@{}", self.class, self.cycle)
    }
}

/// Whether two usages may coexist on one synthesized resource: the
/// latency they would forbid must already be forbidden in the target
/// machine (paper §4).
///
/// Usages `(U, a)` and `(V, b)` sharing a resource forbid the latency
/// `b − a ∈ F[U][V]` (and its mirror), so coexistence requires exactly
/// that membership.
#[inline]
pub(crate) fn usages_compatible(f: &ForbiddenMatrix, u: SynthUsage, v: SynthUsage) -> bool {
    let d = i64::from(v.cycle) - i64::from(u.cycle);
    f.get_idx(u.class as usize, v.class as usize)
        .contains(d as i32)
}

/// A synthesized resource: a set of usages, every pair of which generates
/// only latencies forbidden in the target machine.
///
/// Usages are kept sorted and deduplicated; resources are anchored so
/// that construction always places the earliest usage in cycle 0 (shifts
/// do not change the forbidden latencies, paper §3).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SynthResource {
    usages: Vec<SynthUsage>,
}

impl SynthResource {
    /// Creates an empty resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a resource from usages (sorted, deduplicated).
    pub fn from_usages<I: IntoIterator<Item = SynthUsage>>(usages: I) -> Self {
        let mut v: Vec<SynthUsage> = usages.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        SynthResource { usages: v }
    }

    /// Adds a usage; returns `true` if newly added.
    pub fn insert(&mut self, u: SynthUsage) -> bool {
        match self.usages.binary_search(&u) {
            Ok(_) => false,
            Err(pos) => {
                self.usages.insert(pos, u);
                true
            }
        }
    }

    /// Whether `u` is present.
    pub fn contains(&self, u: SynthUsage) -> bool {
        self.usages.binary_search(&u).is_ok()
    }

    /// The usages, sorted by `(class, cycle)`.
    pub fn usages(&self) -> &[SynthUsage] {
        &self.usages
    }

    /// Number of usages.
    pub fn len(&self) -> usize {
        self.usages.len()
    }

    /// Whether the resource has no usages.
    pub fn is_empty(&self) -> bool {
        self.usages.is_empty()
    }

    /// Whether every usage of `self` appears in `other`.
    pub fn is_subset(&self, other: &SynthResource) -> bool {
        self.usages.iter().all(|u| other.contains(*u))
    }

    /// Whether `u` is compatible with *every* usage of this resource.
    pub fn accepts(&self, f: &ForbiddenMatrix, u: SynthUsage) -> bool {
        self.usages.iter().all(|&w| usages_compatible(f, w, u))
    }

    /// The forbidden latencies this resource generates, as sorted
    /// `(class_x, class_y, latency ≥ 0)` triples meaning
    /// `latency ∈ F[class_x][class_y]`: usages `(U@a, V@b)` forbid
    /// `b − a ∈ F[U][V]`, reported in its nonnegative orientation.
    ///
    /// Self-pairs are included, so any usage by class `X` contributes
    /// `(X, X, 0)`.
    pub fn forbidden_triples(&self) -> Vec<(u32, u32, i32)> {
        let mut out = Vec::new();
        for (i, &u) in self.usages.iter().enumerate() {
            for &v in &self.usages[i..] {
                let d = i64::from(v.cycle) - i64::from(u.cycle);
                match d.cmp(&0) {
                    core::cmp::Ordering::Greater => out.push((u.class, v.class, d as i32)),
                    core::cmp::Ordering::Less => out.push((v.class, u.class, (-d) as i32)),
                    core::cmp::Ordering::Equal => {
                        out.push((u.class, v.class, 0));
                        out.push((v.class, u.class, 0));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Validates the resource against a forbidden matrix: every pair of
    /// usages must generate an already-forbidden latency.
    pub fn is_valid(&self, f: &ForbiddenMatrix) -> bool {
        self.usages.iter().enumerate().all(|(i, &u)| {
            self.usages[i..]
                .iter()
                .all(|&v| usages_compatible(f, u, v))
        })
    }

    /// Returns a copy shifted so its earliest usage is in cycle 0.
    pub fn anchored(&self) -> SynthResource {
        let min = self.usages.iter().map(|u| u.cycle).min().unwrap_or(0);
        SynthResource::from_usages(
            self.usages
                .iter()
                .map(|u| SynthUsage::new(u.class, u.cycle - min)),
        )
    }
}

impl FromIterator<SynthUsage> for SynthResource {
    fn from_iter<I: IntoIterator<Item = SynthUsage>>(iter: I) -> Self {
        Self::from_usages(iter)
    }
}

impl fmt::Display for SynthResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, u) in self.usages.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_latency::ForbiddenMatrix;
    use rmd_machine::models::example_machine;

    fn u(c: u32, cy: u32) -> SynthUsage {
        SynthUsage::new(c, cy)
    }

    fn example_matrix() -> ForbiddenMatrix {
        ForbiddenMatrix::compute(&example_machine())
    }

    #[test]
    fn insert_sorts_and_dedups() {
        let mut r = SynthResource::new();
        assert!(r.insert(u(1, 3)));
        assert!(r.insert(u(0, 0)));
        assert!(!r.insert(u(1, 3)));
        assert_eq!(r.usages(), &[u(0, 0), u(1, 3)]);
    }

    #[test]
    fn compatibility_follows_matrix() {
        // Example machine: op 0 = A, op 1 = B; F[B][A] = {1}.
        let f = example_matrix();
        // Usages (A@0, B@1): forbid 1 ∈ F[A][B]? d = 1, F[A][B] = {-1}: no.
        assert!(!usages_compatible(&f, u(0, 0), u(1, 1)));
        // Usages (B@0, A@1): d = 1 ∈ F[B][A] = {1}: yes.
        assert!(usages_compatible(&f, u(1, 0), u(0, 1)));
        // Self pair always compatible at distance 0 when 0 ∈ F[X][X].
        assert!(usages_compatible(&f, u(0, 2), u(0, 2)));
    }

    #[test]
    fn forbidden_triples_cover_both_orientations_of_zero() {
        let r = SynthResource::from_usages([u(0, 1), u(1, 1)]);
        let t = r.forbidden_triples();
        assert!(t.contains(&(0, 1, 0)));
        assert!(t.contains(&(1, 0, 0)));
        assert!(t.contains(&(0, 0, 0)));
        assert!(t.contains(&(1, 1, 0)));
    }

    #[test]
    fn forbidden_triples_orient_positive() {
        // B@0, A@1 generates 1 ∈ F[B][A]: triple (B, A, 1) — this is the
        // paper's resource 0' (Figure 1c).
        let r = SynthResource::from_usages([u(1, 0), u(0, 1)]);
        let t = r.forbidden_triples();
        assert!(t.contains(&(1, 0, 1)), "{t:?}");
        assert!(t.contains(&(0, 0, 0)));
        assert!(t.contains(&(1, 1, 0)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn validity_against_example_machine() {
        let f = example_matrix();
        // B@{0,1,2,3} is the paper's maximal resource 1'.
        let good = SynthResource::from_usages([u(1, 0), u(1, 1), u(1, 2), u(1, 3)]);
        assert!(good.is_valid(&f));
        // B@{0,4} would forbid 4 ∈ F[B][B]: invalid.
        let bad = SynthResource::from_usages([u(1, 0), u(1, 4)]);
        assert!(!bad.is_valid(&f));
    }

    #[test]
    fn accepts_checks_against_all_usages() {
        let f = example_matrix();
        let r = SynthResource::from_usages([u(1, 0), u(1, 3)]);
        assert!(r.accepts(&f, u(1, 1)));
        // A@1 is compatible with B@0 (1 ∈ F[A][B]? d=1-0=1 ∈ F[B→A]...)
        // but not with B@3 (d = -2 ∉ F[B][A]).
        assert!(!r.accepts(&f, u(0, 1)));
    }

    #[test]
    fn anchored_shifts_to_cycle_zero() {
        let r = SynthResource::from_usages([u(0, 2), u(1, 5)]);
        let a = r.anchored();
        assert_eq!(a.usages(), &[u(0, 0), u(1, 3)]);
    }

    #[test]
    fn subset_detection() {
        let small = SynthResource::from_usages([u(1, 0), u(1, 1)]);
        let big = SynthResource::from_usages([u(1, 0), u(1, 1), u(1, 2)]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
    }
}
