//! Exact equivalence verification between machine descriptions.

use core::fmt;
use rmd_latency::ForbiddenMatrix;
use rmd_machine::MachineDescription;

/// A witness that two machine descriptions are *not* scheduling-
/// equivalent.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum EquivalenceError {
    /// The machines declare different numbers of operations.
    OpCountMismatch {
        /// Operation count of the first machine.
        left: usize,
        /// Operation count of the second machine.
        right: usize,
    },
    /// A forbidden latency present in exactly one machine.
    LatencyMismatch {
        /// Name of operation X.
        x: String,
        /// Name of operation Y.
        y: String,
        /// The offending latency.
        latency: i32,
        /// `true` if the first machine forbids it and the second doesn't.
        in_left: bool,
    },
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::OpCountMismatch { left, right } => {
                write!(f, "operation counts differ: {left} vs {right}")
            }
            EquivalenceError::LatencyMismatch {
                x,
                y,
                latency,
                in_left,
            } => {
                let (has, lacks) = if *in_left {
                    ("first", "second")
                } else {
                    ("second", "first")
                };
                write!(
                    f,
                    "latency {latency} ∈ F[{x}][{y}] is forbidden by the {has} \
                     machine but not the {lacks}"
                )
            }
        }
    }
}

impl std::error::Error for EquivalenceError {}

/// Verifies that `left` and `right` produce identical forbidden-latency
/// matrices — the paper's formal correctness criterion for a reduced
/// machine description.
///
/// Operations are matched by position (the reduction preserves operation
/// order), and the first discrepancy is reported with operation names.
///
/// # Errors
///
/// Returns the first [`EquivalenceError`] found, if any.
pub fn verify_equivalence(
    left: &MachineDescription,
    right: &MachineDescription,
) -> Result<(), EquivalenceError> {
    if left.num_operations() != right.num_operations() {
        return Err(EquivalenceError::OpCountMismatch {
            left: left.num_operations(),
            right: right.num_operations(),
        });
    }
    let fl = ForbiddenMatrix::compute(left);
    let fr = ForbiddenMatrix::compute(right);
    for x in 0..fl.num_ops() {
        for y in 0..fl.num_ops() {
            let (sl, sr) = (fl.get_idx(x, y), fr.get_idx(x, y));
            if sl == sr {
                continue;
            }
            // Locate a witness latency.
            for f in sl.iter() {
                if !sr.contains(f) {
                    return Err(EquivalenceError::LatencyMismatch {
                        x: left.operations()[x].name().to_owned(),
                        y: left.operations()[y].name().to_owned(),
                        latency: f,
                        in_left: true,
                    });
                }
            }
            for f in sr.iter() {
                if !sl.contains(f) {
                    return Err(EquivalenceError::LatencyMismatch {
                        x: left.operations()[x].name().to_owned(),
                        y: left.operations()[y].name().to_owned(),
                        latency: f,
                        in_left: false,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::MachineBuilder;

    fn two_op(second_cycle: u32) -> MachineDescription {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish();
        b.operation("y").usage(r, second_cycle).finish();
        b.build().unwrap()
    }

    #[test]
    fn identical_machines_are_equivalent() {
        assert!(verify_equivalence(&two_op(1), &two_op(1)).is_ok());
    }

    #[test]
    fn different_latency_is_reported_with_names() {
        let e = verify_equivalence(&two_op(1), &two_op(2)).unwrap_err();
        match e {
            EquivalenceError::LatencyMismatch { x, y, .. } => {
                assert!(x == "x" || x == "y");
                assert!(y == "x" || y == "y");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn op_count_mismatch_detected() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("only").usage(r, 0).finish();
        let one = b.build().unwrap();
        let e = verify_equivalence(&one, &two_op(1)).unwrap_err();
        assert_eq!(e, EquivalenceError::OpCountMismatch { left: 1, right: 2 });
        assert_eq!(e.to_string(), "operation counts differ: 1 vs 2");
    }

    #[test]
    fn equivalent_despite_different_resources() {
        // Same constraints expressed with different resource structure.
        let mut b = MachineBuilder::new("m2");
        let r0 = b.resource("a");
        let r1 = b.resource("b");
        b.operation("x").usage(r0, 0).usage(r1, 0).finish();
        b.operation("y").usage(r0, 1).usage(r1, 1).finish();
        let redundant = b.build().unwrap();
        assert!(verify_equivalence(&two_op(1), &redundant).is_ok());
    }
}
