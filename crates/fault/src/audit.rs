//! The mutation-kill audit: generate mutants, classify them, run both
//! oracles, and score the result.

use crate::mutate::{mutate, Mutant, ALL_OPERATORS};
use crate::oracle::{matrix_oracle, trace_oracle};
use crate::rng::mix_seed;
use rmd_machine::MachineDescription;
use std::fmt::Write as _;

/// Tallies for one mutation operator.
#[derive(Clone, Debug, Default)]
pub struct OperatorStats {
    /// Operator name (stable across runs).
    pub operator: &'static str,
    /// Seeds at which the operator applied and produced a mutant.
    pub generated: u64,
    /// Mutants whose forbidden-latency matrix differs from the
    /// original's (plus query-state corruption, semantic by
    /// construction).
    pub semantic: u64,
    /// Mutants that forbid exactly the same latencies.
    pub neutral: u64,
    /// Semantic mutants killed by the equivalence verifier.
    pub killed_by_matrix: u64,
    /// Semantic mutants killed by the differential trace replayer.
    pub killed_by_trace: u64,
    /// Semantic mutants neither oracle noticed.
    pub survived: u64,
    /// Neutral mutants the trace oracle wrongly flagged — an oracle
    /// soundness bug if ever nonzero.
    pub false_kills: u64,
}

/// The outcome of auditing one machine model.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Machine name.
    pub model: String,
    /// Per-operator tallies, in [`ALL_OPERATORS`] order.
    pub per_operator: Vec<OperatorStats>,
    /// Descriptions of surviving semantic mutants (the audit failures).
    pub survivors: Vec<String>,
    /// Descriptions of wrongly-killed neutral mutants.
    pub false_positives: Vec<String>,
}

impl AuditReport {
    /// Total semantic mutants across operators.
    pub fn total_semantic(&self) -> u64 {
        self.per_operator.iter().map(|s| s.semantic).sum()
    }

    /// Total semantic mutants killed by at least one oracle.
    pub fn total_killed(&self) -> u64 {
        self.total_semantic() - self.per_operator.iter().map(|s| s.survived).sum::<u64>()
    }

    /// Fraction of semantic mutants killed (1.0 when none were
    /// generated — nothing to miss).
    pub fn kill_score(&self) -> f64 {
        let semantic = self.total_semantic();
        if semantic == 0 {
            1.0
        } else {
            self.total_killed() as f64 / semantic as f64
        }
    }

    /// A perfect audit: every semantic mutant killed, no neutral mutant
    /// wrongly flagged, and at least one semantic mutant actually
    /// exercised the oracles.
    pub fn is_perfect(&self) -> bool {
        self.survivors.is_empty() && self.false_positives.is_empty() && self.total_semantic() > 0
    }

    /// Renders a fixed-width report table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "mutation-kill audit: {}", self.model);
        let _ = writeln!(
            out,
            "{:<20} {:>5} {:>9} {:>8} {:>7} {:>7} {:>9} {:>6}",
            "operator", "mut", "semantic", "neutral", "matrix", "trace", "survived", "false"
        );
        for s in &self.per_operator {
            let _ = writeln!(
                out,
                "{:<20} {:>5} {:>9} {:>8} {:>7} {:>7} {:>9} {:>6}",
                s.operator,
                s.generated,
                s.semantic,
                s.neutral,
                s.killed_by_matrix,
                s.killed_by_trace,
                s.survived,
                s.false_kills
            );
        }
        let _ = writeln!(
            out,
            "kill score: {}/{} semantic mutants ({:.1}%)",
            self.total_killed(),
            self.total_semantic(),
            self.kill_score() * 100.0
        );
        for s in &self.survivors {
            let _ = writeln!(out, "SURVIVOR: {s}");
        }
        for s in &self.false_positives {
            let _ = writeln!(out, "FALSE POSITIVE: {s}");
        }
        out
    }
}

/// Runs every operator `seeds_per_operator` times against `machine`,
/// scoring both oracles on each generated mutant.
///
/// Deterministic in `(machine, seeds_per_operator, base_seed)`.
pub fn audit_model(
    machine: &MachineDescription,
    seeds_per_operator: u64,
    base_seed: u64,
) -> AuditReport {
    let mut per_operator = Vec::with_capacity(ALL_OPERATORS.len());
    let mut survivors = Vec::new();
    let mut false_positives = Vec::new();
    for (tag, op) in ALL_OPERATORS.iter().enumerate() {
        let mut stats = OperatorStats {
            operator: op.name(),
            ..OperatorStats::default()
        };
        for i in 0..seeds_per_operator {
            let seed = mix_seed(base_seed, tag as u64, i);
            let Some(mutant) = mutate(machine, *op, seed) else {
                continue;
            };
            stats.generated += 1;
            score_mutant(
                machine,
                &mutant,
                seed,
                &mut stats,
                &mut survivors,
                &mut false_positives,
            );
        }
        per_operator.push(stats);
    }
    AuditReport {
        model: machine.name().to_owned(),
        per_operator,
        survivors,
        false_positives,
    }
}

fn score_mutant(
    machine: &MachineDescription,
    mutant: &Mutant,
    seed: u64,
    stats: &mut OperatorStats,
    survivors: &mut Vec<String>,
    false_positives: &mut Vec<String>,
) {
    let semantic = mutant.is_semantic(machine);
    let by_matrix = matrix_oracle(machine, mutant);
    let by_trace = trace_oracle(machine, mutant, seed);
    if semantic {
        stats.semantic += 1;
        if by_matrix {
            stats.killed_by_matrix += 1;
        }
        if by_trace.is_some() {
            stats.killed_by_trace += 1;
        }
        if !by_matrix && by_trace.is_none() {
            stats.survived += 1;
            survivors.push(format!(
                "[{}] seed {seed:#018x}: {}",
                mutant.op, mutant.what
            ));
        }
    } else {
        stats.neutral += 1;
        if let Some(d) = by_trace {
            stats.false_kills += 1;
            false_positives.push(format!(
                "[{}] seed {seed:#018x}: {} — trace diverged on an equivalent machine: {d}",
                mutant.op, mutant.what
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;

    #[test]
    fn audit_is_deterministic() {
        let m = example_machine();
        let a = audit_model(&m, 4, 99);
        let b = audit_model(&m, 4, 99);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn report_renders_all_operators() {
        let m = example_machine();
        let r = audit_model(&m, 2, 1);
        assert_eq!(r.per_operator.len(), ALL_OPERATORS.len());
        let text = r.render();
        for op in ALL_OPERATORS {
            assert!(text.contains(op.name()), "{}", op.name());
        }
    }
}
