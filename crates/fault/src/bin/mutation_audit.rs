//! `mutation-audit`: run the fault-injection harness against built-in
//! machine models and fail (exit 1) unless every semantic mutant is
//! killed.
//!
//! ```text
//! mutation-audit [--model <name>|all] [--seeds N] [--seed S]
//! ```

use rmd_fault::audit_model;
use rmd_machine::{models, MachineDescription};

const DEFAULT_MODELS: [&str; 3] = ["fig1", "cydra5-subset", "mips"];

fn model_by_name(name: &str) -> Option<MachineDescription> {
    match name {
        "fig1" => Some(models::example_machine()),
        "mips" => Some(models::mips_r3000()),
        "alpha" => Some(models::alpha21064()),
        "cydra5" => Some(models::cydra5()),
        "cydra5-subset" => Some(models::cydra5_subset()),
        _ => None,
    }
}

struct Options {
    models: Vec<String>,
    seeds: u64,
    base_seed: u64,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        models: DEFAULT_MODELS.iter().map(|s| s.to_string()).collect(),
        seeds: 16,
        base_seed: 0xE1C4_B0A7,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => {
                let v = it.next().ok_or("--model expects a name or `all`")?;
                if v == "all" {
                    opts.models = ["fig1", "mips", "alpha", "cydra5", "cydra5-subset"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                } else {
                    model_by_name(v).ok_or_else(|| format!("unknown model `{v}`"))?;
                    opts.models = vec![v.clone()];
                }
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds expects a count")?;
                opts.seeds = v
                    .parse()
                    .map_err(|_| format!("--seeds expects a count, got `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed expects a number")?;
                opts.base_seed = v
                    .parse()
                    .map_err(|_| format!("--seed expects a number, got `{v}`"))?;
            }
            "--help" | "-h" => {
                return Err("usage: mutation-audit [--model <name>|all] [--seeds N] [--seed S]"
                    .to_owned())
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut all_perfect = true;
    let mut any_semantic = false;
    for name in &opts.models {
        let machine = model_by_name(name).expect("validated during parsing");
        let report = audit_model(&machine, opts.seeds, opts.base_seed);
        print!("{}", report.render());
        println!();
        any_semantic |= report.total_semantic() > 0;
        if !report.is_perfect() {
            all_perfect = false;
        }
    }
    if !all_perfect {
        if any_semantic {
            eprintln!("mutation audit FAILED: surviving or wrongly-killed mutants (see above)");
        } else {
            eprintln!("mutation audit FAILED: no semantic mutants generated (raise --seeds)");
        }
        std::process::exit(1);
    }
}
