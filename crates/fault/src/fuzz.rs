//! Generative differential fuzzing of the whole reduction stack.
//!
//! Each case draws a structured random machine from
//! [`generate`] and pushes it through the
//! same gauntlet every shipped description faces:
//!
//! 1. **render → reparse** — the canonical MDL rendering must parse
//!    back to an equal description;
//! 2. **lint** — `rmd-analyze` must report no error-severity findings;
//! 3. **reduce** — both certificate objectives must reduce and pass
//!    [`verify_equivalence`];
//! 4. **differential replay** — a query trace recorded against the
//!    original (linear and modulo) must replay answer-for-answer over
//!    every backend of the reduced description: discrete, bitvec,
//!    compiled, modulo-discrete, modulo-bitvec, and the automata
//!    baseline (skipped with accounting when its state cap trips).
//!
//! A failing case is **shrunk** — operations, then usages, then unused
//! resources are greedily removed while the failure persists — and the
//! minimized machine is canonicalized through MDL, handed to the static
//! prover (`rmd certify`) for a second opinion, and rendered as a
//! regression-corpus entry that CI replays forever after.
//!
//! The `--mutant` mode closes the loop on the harness itself: a seeded
//! [`MutationOp`] corrupts each case's *reduction output*, simulating a
//! buggy reducer. Every semantic corruption must be caught; one that
//! survives all backends is itself reported (stage `oracle-gap`).

use crate::generate::{generate, GenConfig};
use crate::mutate::{mutate, MutantPayload, MutationOp, ALL_OPERATORS};
use crate::oracle::{record_linear_trace, record_modulo_trace, replay_diff, trace_oracle};
use crate::rng::mix_seed;
use rmd_analyze::lint_machine;
use rmd_automata::{AutomataModule, Automaton, Direction};
use rmd_certify::{certify_machine, certify_pair, CertifyFailure, CertifyOptions};
use rmd_core::{try_reduce, verify_equivalence, Objective, ReduceOptions};
use rmd_machine::{mdl, MachineBuilder, MachineDescription, ResourceId};
use rmd_query::{
    BitvecModule, CompiledModule, DiscreteModule, ModuloBitvecModule, ModuloDiscreteModule,
    WordLayout,
};
use std::fmt::Write as _;

/// Seed-stream tags separating the generator and trace streams.
const TAG_CASE: u64 = 0x6361_7365; // "case"
const TAG_TRACE: u64 = 0x7472_6163; // "trac"

/// A fuzz campaign's knobs.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed; every case seed derives from it deterministically.
    pub seed: u64,
    /// Number of generated machines to push through the pipeline.
    pub count: u32,
    /// Size envelope for the generator.
    pub size: GenConfig,
    /// Inject this seeded mutation into every case's reduction output.
    pub mutant: Option<(MutationOp, u64)>,
    /// State cap for the automata baseline; a machine that exceeds it
    /// skips that backend (counted, never silent).
    pub automata_cap: usize,
}

impl FuzzConfig {
    /// The default campaign: `count` small machines from `seed`, no
    /// mutant, automata capped at 2^18 states.
    pub fn new(seed: u64, count: u32) -> Self {
        FuzzConfig {
            seed,
            count,
            size: GenConfig::small(),
            mutant: None,
            automata_cap: 1 << 18,
        }
    }
}

/// Bookkeeping one case reports alongside its verdict.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseFlags {
    /// The configured mutation found an application site.
    pub mutant_applied: bool,
    /// The applied mutation was matrix-neutral (must *not* be caught).
    pub mutant_neutral: bool,
    /// The automata baseline was skipped (state cap exceeded).
    pub automata_skipped: bool,
    /// The packed backends were skipped (more than 64 resources).
    pub packed_skipped: bool,
}

/// The verdict of one pipeline run.
#[derive(Clone, Debug)]
pub enum CaseOutcome {
    /// Every stage agreed.
    Pass(CaseFlags),
    /// A stage disagreed (or a semantic mutant survived: `oracle-gap`).
    Fail {
        /// Pipeline stage that failed: `round-trip`, `lint`, `reduce`,
        /// `equivalence`, `differential`, or `oracle-gap`.
        stage: &'static str,
        /// Human-readable description of the disagreement.
        detail: String,
        /// Flags accumulated before the failure.
        flags: CaseFlags,
    },
}

/// One failing case after minimization.
#[derive(Clone, Debug)]
pub struct FailedCase {
    /// Seed the machine was generated from.
    pub case_seed: u64,
    /// Seed of the recorded query trace.
    pub trace_seed: u64,
    /// Stage that failed on the *shrunk* machine.
    pub stage: &'static str,
    /// Divergence description from the shrunk machine.
    pub detail: String,
    /// The injected mutation, if the campaign ran one.
    pub mutant: Option<(MutationOp, u64)>,
    /// The minimized failing machine.
    pub machine: MachineDescription,
    /// Canonical MDL rendering of the minimized machine.
    pub mdl: String,
    /// The static prover's verdict on the minimized failure.
    pub certify: String,
}

/// A fuzz campaign's aggregate result.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Base seed of the campaign.
    pub seed: u64,
    /// Cases run.
    pub cases: u32,
    /// Cases whose pipeline agreed everywhere.
    pub passed: u32,
    /// Minimized failing cases.
    pub failures: Vec<FailedCase>,
    /// Cases where the configured mutation applied.
    pub mutants_applied: u32,
    /// Applied mutations that were matrix-neutral.
    pub mutants_neutral: u32,
    /// Cases that skipped the automata baseline (state cap).
    pub automata_skipped: u32,
    /// Cases that skipped the packed backends (>64 resources).
    pub packed_skipped: u32,
}

impl FuzzReport {
    /// No divergences found.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the campaign summary plus every minimized failure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "rmd-fuzz report");
        let _ = writeln!(out, "  base seed         {}", self.seed);
        let _ = writeln!(out, "  cases             {}", self.cases);
        let _ = writeln!(out, "  passed            {}", self.passed);
        let _ = writeln!(out, "  failed            {}", self.failures.len());
        let _ = writeln!(out, "  mutants applied   {}", self.mutants_applied);
        let _ = writeln!(out, "  mutants neutral   {}", self.mutants_neutral);
        let _ = writeln!(out, "  automata skipped  {}", self.automata_skipped);
        let _ = writeln!(out, "  packed skipped    {}", self.packed_skipped);
        for f in &self.failures {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "failure: stage {} (case seed {}, replay with `rmd fuzz --seed {} --count 1`)",
                f.stage, f.case_seed, f.case_seed
            );
            if let Some((op, seed)) = f.mutant {
                let _ = writeln!(out, "  mutant    {}:{seed}", op.name());
            }
            let _ = writeln!(out, "  detail    {}", f.detail);
            let _ = writeln!(out, "  certify   {}", f.certify);
            let _ = writeln!(out, "  shrunk machine:");
            for line in f.mdl.lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

/// Runs the full differential pipeline over one machine.
///
/// `mutant` corrupts the reduction output before the replay phase;
/// `trace_seed` drives the recorded query trace; `automata_cap` bounds
/// the baseline automata build.
pub fn check_machine(
    m: &MachineDescription,
    mutant: Option<(MutationOp, u64)>,
    trace_seed: u64,
    automata_cap: usize,
) -> CaseOutcome {
    let mut flags = CaseFlags::default();
    let fail = |stage, detail, flags| CaseOutcome::Fail {
        stage,
        detail,
        flags,
    };

    // ---- 1. canonical rendering round-trips -------------------------
    let src = mdl::print(m);
    match mdl::parse_machine(&src) {
        Err(e) => return fail("round-trip", format!("rendering does not parse: {e}"), flags),
        Ok((parsed, _)) if parsed != *m => {
            return fail(
                "round-trip",
                "reparsed machine differs from the original".into(),
                flags,
            )
        }
        Ok(_) => {}
    }

    // ---- 2. lint: no error-severity findings ------------------------
    let lint = lint_machine(m);
    if lint.errors() > 0 {
        return fail(
            "lint",
            format!("{} error-severity finding(s)", lint.errors()),
            flags,
        );
    }

    // ---- 3. reduce + verify under both certificate objectives -------
    let mut reduced = None;
    for objective in [Objective::ResUses, Objective::KCycleWord { k: 4 }] {
        let red = match try_reduce(m, objective, &ReduceOptions::default()) {
            Ok(r) => r,
            Err(e) => return fail("reduce", format!("{objective:?}: {e}"), flags),
        };
        if let Err(e) = verify_equivalence(m, &red.reduced) {
            return fail("equivalence", format!("{objective:?}: {e}"), flags);
        }
        if reduced.is_none() {
            reduced = Some(red.reduced);
        }
    }
    let mut rut = reduced.expect("first objective ran"); // reduction under test

    // ---- 4. optional mutation of the reduction output ---------------
    let mut semantic_mutant = false;
    if let Some((op, seed)) = mutant {
        if let Some(mu) = mutate(&rut, op, seed) {
            flags.mutant_applied = true;
            match &mu.payload {
                MutantPayload::Machine(mm) | MutantPayload::ReducedMachine(mm) => {
                    semantic_mutant = mu.is_semantic(m);
                    flags.mutant_neutral = !semantic_mutant;
                    rut = mm.clone();
                }
                MutantPayload::QueryWord { .. } => {
                    // Query-state corruption never touches the machine;
                    // the trace oracle compares the corrupted packed
                    // words against a clean discrete module directly.
                    return match trace_oracle(&rut, &mu, trace_seed) {
                        Some(d) => fail("differential", format!("corrupt-word: {d}"), flags),
                        None => fail(
                            "oracle-gap",
                            format!("planted word corruption survived: {}", mu.what),
                            flags,
                        ),
                    };
                }
            }
        }
    }

    // ---- 5. differential replay over every backend ------------------
    let span = m.max_table_length().max(rut.max_table_length()).max(1);
    let packed = rut.num_resources() <= 64;
    flags.packed_skipped = !packed;
    let layout = WordLayout::widest(64, rut.num_resources().clamp(1, 64));

    let (trace, expected) = record_linear_trace(m, span, trace_seed);
    let mut caught: Option<String> = None;
    if let Some(d) = replay_diff(&trace, &expected, &mut DiscreteModule::new(&rut)) {
        caught = Some(format!("discrete: {d}"));
    }
    if caught.is_none() && packed {
        if let Some(d) = replay_diff(&trace, &expected, &mut BitvecModule::new(&rut, layout)) {
            caught = Some(format!("bitvec: {d}"));
        }
    }
    if caught.is_none() && packed {
        if let Some(d) = replay_diff(&trace, &expected, &mut CompiledModule::new(&rut, layout)) {
            caught = Some(format!("compiled: {d}"));
        }
    }
    if caught.is_none() {
        let ii = span + 1;
        let (mtrace, mexpected) = record_modulo_trace(m, ii, span, trace_seed);
        if let Some(d) = replay_diff(&mtrace, &mexpected, &mut ModuloDiscreteModule::new(&rut, ii))
        {
            caught = Some(format!("modulo-discrete (ii {ii}): {d}"));
        }
        if caught.is_none() && packed {
            if let Some(d) = replay_diff(
                &mtrace,
                &mexpected,
                &mut ModuloBitvecModule::new(&rut, ii, layout),
            ) {
                caught = Some(format!("modulo-bitvec (ii {ii}): {d}"));
            }
        }
    }
    if caught.is_none() {
        // The automata baseline: exact by construction, but its state
        // space can blow up on adversarial machines — skip with
        // accounting rather than hang.
        match (
            Automaton::build(&rut, Direction::Forward, automata_cap),
            Automaton::build(&rut, Direction::Reverse, automata_cap),
        ) {
            (Ok(fwd), Ok(rev)) => {
                let horizon = 4 * span + 2;
                let mut am = AutomataModule::new(&rut, &fwd, &rev, horizon);
                if let Some(d) = replay_diff(&trace, &expected, &mut am) {
                    caught = Some(format!("automata: {d}"));
                }
            }
            _ => flags.automata_skipped = true,
        }
    }

    match caught {
        Some(detail) => fail("differential", detail, flags),
        None if semantic_mutant => fail(
            "oracle-gap",
            "semantic mutant of the reduction survived every backend".into(),
            flags,
        ),
        None => CaseOutcome::Pass(flags),
    }
}

/// Runs a fuzz campaign: generate, check, shrink failures, collect.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        seed: cfg.seed,
        ..FuzzReport::default()
    };
    for i in 0..cfg.count {
        let case_seed = mix_seed(cfg.seed, TAG_CASE, u64::from(i));
        let trace_seed = mix_seed(cfg.seed, TAG_TRACE, u64::from(i));
        let m = generate(case_seed, &cfg.size);
        report.cases += 1;
        let outcome = check_machine(&m, cfg.mutant, trace_seed, cfg.automata_cap);
        let (flags, failure) = match outcome {
            CaseOutcome::Pass(flags) => (flags, None),
            CaseOutcome::Fail {
                stage,
                detail,
                flags,
            } => (flags, Some((stage, detail))),
        };
        report.mutants_applied += u32::from(flags.mutant_applied);
        report.mutants_neutral += u32::from(flags.mutant_neutral);
        report.automata_skipped += u32::from(flags.automata_skipped);
        report.packed_skipped += u32::from(flags.packed_skipped);
        match failure {
            None => report.passed += 1,
            Some((want_stage, _)) => {
                // Pin the stage while shrinking so minimization cannot
                // morph a real divergence into an unrelated artifact.
                let fails = |cand: &MachineDescription| {
                    matches!(
                        check_machine(cand, cfg.mutant, trace_seed, cfg.automata_cap),
                        CaseOutcome::Fail { stage, .. } if stage == want_stage
                    )
                };
                let shrunk = shrink(&m, &fails);
                let (stage, detail) =
                    match check_machine(&shrunk, cfg.mutant, trace_seed, cfg.automata_cap) {
                        CaseOutcome::Fail { stage, detail, .. } => (stage, detail),
                        CaseOutcome::Pass(_) => unreachable!("shrink preserves failure"),
                    };
                let certify =
                    certify_verdict(&shrunk, cfg.mutant, CertifyOptions::default());
                report.failures.push(FailedCase {
                    case_seed,
                    trace_seed,
                    stage,
                    detail,
                    mutant: cfg.mutant,
                    mdl: mdl::print(&shrunk),
                    machine: shrunk,
                    certify,
                });
            }
        }
    }
    report
}

/// The static prover's second opinion on a minimized failure.
///
/// With an injected mutant, re-derive the corrupted reduction and ask
/// `certify_pair` to disprove it — the prover and the runtime replay
/// must agree the pair diverges. Without one, the failure is a real
/// find at HEAD: certify the machine itself and report the verdict.
fn certify_verdict(
    m: &MachineDescription,
    mutant: Option<(MutationOp, u64)>,
    options: CertifyOptions,
) -> String {
    if let Some((op, seed)) = mutant {
        let Ok(red) = try_reduce(m, Objective::ResUses, &ReduceOptions::default()) else {
            return "n/a (shrunk machine no longer reduces)".into();
        };
        let Some(mu) = mutate(&red.reduced, op, seed) else {
            return "n/a (mutation no longer applies to the shrunk reduction)".into();
        };
        let (MutantPayload::Machine(mm) | MutantPayload::ReducedMachine(mm)) = &mu.payload else {
            return "n/a (query-state mutant; no description pair to prove)".into();
        };
        return match certify_pair(m, mm, &options) {
            Err(CertifyFailure::Mismatch(cex)) => format!(
                "static prover confirms: probe {} at cycle {} disproves equivalence",
                cex.probe.0, cex.probe.1
            ),
            Err(CertifyFailure::Error(e)) => format!("static prover could not run: {e}"),
            Ok(_) => "static prover DISAGREES: pair certified equivalent".into(),
        };
    }
    match certify_machine(m, "fuzz-find", &options) {
        Ok(_) => "machine certifies clean (divergence is runtime-only)".into(),
        Err(e) => format!("static prover also rejects: {e}"),
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// One operation's rebuildable form: name, `(resource, cycle)` usage
/// pairs, the alternative-group label, and the weight.
type OpParts = (String, Vec<(u32, u32)>, Option<String>, f64);

/// A rebuildable copy of a machine description (same idiom as the
/// mutation operators' rebuild path).
#[derive(Clone)]
struct Parts {
    name: String,
    resources: Vec<String>,
    ops: Vec<OpParts>,
}

impl Parts {
    fn of(m: &MachineDescription) -> Parts {
        Parts {
            name: m.name().to_owned(),
            resources: m.resources().iter().map(|r| r.name().to_owned()).collect(),
            ops: m
                .operations()
                .iter()
                .map(|op| {
                    (
                        op.name().to_owned(),
                        op.table()
                            .usages()
                            .iter()
                            .map(|u| (u.resource.0, u.cycle))
                            .collect(),
                        // Base attribution is dropped: removals leave
                        // partial alternative groups whose rendering
                        // cannot preserve the base, and a flat machine
                        // always round-trips. Semantics (the forbidden
                        // matrix) are unaffected.
                        None,
                        op.weight(),
                    )
                })
                .collect(),
        }
    }

    fn build(self) -> Option<MachineDescription> {
        let mut b = MachineBuilder::new(self.name);
        for r in &self.resources {
            b.resource(r.clone());
        }
        for (name, usages, base, weight) in self.ops {
            let mut ob = b.operation(name).weight(weight);
            if let Some(base) = base {
                ob = ob.base(base);
            }
            for (r, c) in usages {
                ob = ob.usage(ResourceId(r), c);
            }
            ob.finish();
        }
        b.build().ok()
    }
}

/// Greedy structural minimization: drop operations, then usages, then
/// unreferenced resources, keeping each removal only while `fails`
/// still holds; finally canonicalize the survivor through MDL so the
/// corpus rendering reproduces the exact failing machine.
fn shrink(
    m: &MachineDescription,
    fails: &dyn Fn(&MachineDescription) -> bool,
) -> MachineDescription {
    let mut cur = m.clone();
    loop {
        let mut changed = false;

        // Drop whole operations.
        'ops: loop {
            if cur.num_operations() <= 1 {
                break;
            }
            for i in 0..cur.num_operations() {
                let mut p = Parts::of(&cur);
                p.ops.remove(i);
                if let Some(cand) = p.build() {
                    if fails(&cand) {
                        cur = cand;
                        changed = true;
                        continue 'ops;
                    }
                }
            }
            break;
        }

        // Drop individual usages (keeping every table nonempty).
        'usages: loop {
            for oi in 0..cur.num_operations() {
                let n = cur.operations()[oi].table().num_usages();
                if n < 2 {
                    continue;
                }
                for ui in 0..n {
                    let mut p = Parts::of(&cur);
                    p.ops[oi].1.remove(ui);
                    if let Some(cand) = p.build() {
                        if fails(&cand) {
                            cur = cand;
                            changed = true;
                            continue 'usages;
                        }
                    }
                }
            }
            break;
        }

        // Drop resources no usage references.
        let p = Parts::of(&cur);
        let used: Vec<bool> = (0..p.resources.len() as u32)
            .map(|r| p.ops.iter().any(|op| op.1.iter().any(|&(ur, _)| ur == r)))
            .collect();
        if used.iter().any(|&u| !u) && used.iter().any(|&u| u) {
            let remap: Vec<Option<u32>> = {
                let mut next = 0u32;
                used.iter()
                    .map(|&u| {
                        u.then(|| {
                            let id = next;
                            next += 1;
                            id
                        })
                    })
                    .collect()
            };
            let mut q = p.clone();
            q.resources = p
                .resources
                .iter()
                .zip(&used)
                .filter(|(_, &u)| u)
                .map(|(r, _)| r.clone())
                .collect();
            for op in &mut q.ops {
                for u in &mut op.1 {
                    u.0 = remap[u.0 as usize].expect("used resource survives");
                }
            }
            if let Some(cand) = q.build() {
                if fails(&cand) {
                    cur = cand;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }
    // Canonicalize: the corpus stores `mdl::print(cur)`, so the machine
    // we keep must be exactly what that text parses back to (this also
    // normalizes base attribution a partial alt group cannot round-trip).
    if let Ok((canon, _)) = mdl::parse_machine(&mdl::print(&cur)) {
        if fails(&canon) {
            return canon;
        }
    }
    cur
}

// ---------------------------------------------------------------------
// Regression corpus
// ---------------------------------------------------------------------

/// A parsed regression-corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Seed recorded for provenance (the machine is stored verbatim).
    pub case_seed: u64,
    /// Trace seed the replay must use.
    pub trace_seed: u64,
    /// Mutation to re-inject on replay.
    pub mutant: Option<(MutationOp, u64)>,
    /// `true`: the pipeline must fail on this machine; `false`: it must
    /// pass (a pinned-clean machine).
    pub expect_caught: bool,
    /// The machine itself.
    pub machine: MachineDescription,
}

/// Renders a minimized failure as a self-contained corpus entry: MDL
/// with a structured comment header (comments are legal MDL, so the
/// whole file parses as a machine).
pub fn render_corpus_entry(f: &FailedCase) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// rmd-fuzz corpus v1");
    let _ = writeln!(out, "// case-seed: {}", f.case_seed);
    let _ = writeln!(out, "// trace-seed: {}", f.trace_seed);
    if let Some((op, seed)) = f.mutant {
        let _ = writeln!(out, "// mutant: {}:{seed}", op.name());
    }
    let _ = writeln!(out, "// expect: caught");
    let _ = writeln!(out, "// stage: {}", f.stage);
    let _ = writeln!(out, "//");
    out.push_str(&f.mdl);
    out
}

/// Parses a corpus entry produced by [`render_corpus_entry`].
///
/// # Errors
///
/// A human-readable message when a header field is missing or
/// malformed, or the machine body does not parse.
pub fn parse_corpus_entry(text: &str) -> Result<CorpusEntry, String> {
    let mut case_seed = None;
    let mut trace_seed = None;
    let mut mutant = None;
    let mut expect = None;
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("//") else {
            break; // header comments end where the machine begins
        };
        let Some((key, value)) = rest.split_once(':') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "case-seed" => {
                case_seed = Some(value.parse::<u64>().map_err(|e| format!("case-seed: {e}"))?)
            }
            "trace-seed" => {
                trace_seed =
                    Some(value.parse::<u64>().map_err(|e| format!("trace-seed: {e}"))?)
            }
            "mutant" => {
                let (name, seed) = value
                    .split_once(':')
                    .ok_or_else(|| format!("mutant `{value}`: expected OP:SEED"))?;
                let op = ALL_OPERATORS
                    .into_iter()
                    .find(|op| op.name() == name.trim())
                    .ok_or_else(|| format!("unknown mutation operator `{name}`"))?;
                let seed = seed
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("mutant seed: {e}"))?;
                mutant = Some((op, seed));
            }
            "expect" => {
                expect = Some(match value {
                    "caught" => true,
                    "clean" => false,
                    other => return Err(format!("expect `{other}`: want caught|clean")),
                })
            }
            _ => {} // stage/detail lines are informational
        }
    }
    let (machine, _) =
        mdl::parse_machine(text).map_err(|e| format!("machine body does not parse: {e}"))?;
    Ok(CorpusEntry {
        case_seed: case_seed.ok_or("missing `// case-seed:` header")?,
        trace_seed: trace_seed.ok_or("missing `// trace-seed:` header")?,
        mutant,
        expect_caught: expect.ok_or("missing `// expect:` header")?,
        machine,
    })
}

/// Replays one corpus entry; `Ok` carries a one-line summary.
///
/// # Errors
///
/// The entry's expectation was not met (a pinned failure passed, or a
/// pinned-clean machine failed).
pub fn replay_corpus_entry(e: &CorpusEntry, automata_cap: usize) -> Result<String, String> {
    let outcome = check_machine(&e.machine, e.mutant, e.trace_seed, automata_cap);
    match (e.expect_caught, outcome) {
        (true, CaseOutcome::Fail { stage, detail, .. }) => {
            Ok(format!("still caught at stage {stage}: {detail}"))
        }
        (true, CaseOutcome::Pass(_)) => Err(format!(
            "regression NOT caught anymore (case seed {}): the pipeline passed \
             a machine it once failed",
            e.case_seed
        )),
        (false, CaseOutcome::Pass(_)) => Ok("still clean".into()),
        (false, CaseOutcome::Fail { stage, detail, .. }) => Err(format!(
            "pinned-clean machine now fails at stage {stage}: {detail}"
        )),
    }
}

/// Replays a set of `(name, text)` corpus entries, stopping at the
/// first violated expectation.
///
/// # Errors
///
/// The offending entry's name plus the parse or replay failure.
pub fn replay_corpus(entries: &[(String, String)]) -> Result<Vec<String>, String> {
    let mut summaries = Vec::with_capacity(entries.len());
    for (name, text) in entries {
        let entry = parse_corpus_entry(text).map_err(|e| format!("{name}: {e}"))?;
        let summary =
            replay_corpus_entry(&entry, 1 << 18).map_err(|e| format!("{name}: {e}"))?;
        summaries.push(format!("{name}: {summary}"));
    }
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;

    #[test]
    fn head_is_clean_on_a_quick_campaign() {
        let report = fuzz(&FuzzConfig::new(0xF00D, 25));
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.passed, 25);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = fuzz(&FuzzConfig::new(7, 5));
        let b = fuzz(&FuzzConfig::new(7, 5));
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn injected_semantic_mutants_are_caught_and_shrunk() {
        let mut cfg = FuzzConfig::new(0xBEEF, 8);
        cfg.mutant = Some((MutationOp::DropUsage, 1));
        let report = fuzz(&cfg);
        assert!(report.mutants_applied > 0, "{}", report.render());
        // Every non-neutral application must surface as a failure.
        let expected = report.mutants_applied - report.mutants_neutral;
        assert_eq!(report.failures.len() as u32, expected, "{}", report.render());
        for f in &report.failures {
            assert_eq!(f.stage, "differential", "{}", f.detail);
            assert!(
                f.certify.starts_with("static prover confirms")
                    || f.certify.starts_with("n/a"),
                "{}",
                f.certify
            );
            // Shrunk machines are small and self-contained.
            assert!(f.machine.num_operations() <= 8);
        }
    }

    #[test]
    fn corpus_entries_round_trip_and_replay() {
        let mut cfg = FuzzConfig::new(0xBEEF, 4);
        cfg.mutant = Some((MutationOp::DropUsage, 1));
        let report = fuzz(&cfg);
        let f = report.failures.first().expect("mutant campaign fails");
        let text = render_corpus_entry(f);
        let entry = parse_corpus_entry(&text).expect("rendered entry parses");
        assert_eq!(entry.case_seed, f.case_seed);
        assert_eq!(entry.trace_seed, f.trace_seed);
        assert_eq!(entry.mutant, f.mutant);
        assert!(entry.expect_caught);
        assert_eq!(entry.machine, f.machine, "stored MDL reproduces the machine");
        let summary = replay_corpus_entry(&entry, 1 << 18).expect("replay re-catches");
        assert!(summary.contains("still caught"));
    }

    #[test]
    fn clean_corpus_entries_are_supported() {
        let m = example_machine();
        let text = format!(
            "// rmd-fuzz corpus v1\n// case-seed: 0\n// trace-seed: 3\n// expect: clean\n//\n{}",
            mdl::print(&m)
        );
        let entry = parse_corpus_entry(&text).unwrap();
        assert!(!entry.expect_caught);
        assert!(replay_corpus_entry(&entry, 1 << 18).is_ok());
    }

    #[test]
    fn malformed_corpus_entries_are_rejected_with_context() {
        for (text, needle) in [
            ("machine \"m\" { resources { r; } op a { use r @ 0; } }", "case-seed"),
            ("// case-seed: 1\n// trace-seed: 2\n// expect: maybe\nmachine \"m\" { resources { r; } op a { use r @ 0; } }", "caught|clean"),
            ("// case-seed: 1\n// trace-seed: 2\n// mutant: bogus:1\n// expect: caught\nmachine \"m\" { resources { r; } op a { use r @ 0; } }", "unknown mutation operator"),
        ] {
            let err = parse_corpus_entry(text).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }
}
