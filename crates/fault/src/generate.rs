//! Seeded, structure-aware machine description generator.
//!
//! Random reservation tables with uniformly sprinkled usages exercise
//! almost nothing of the reduction pipeline: they rarely produce
//! forbidden-latency *spans*, never produce alternatives, and their
//! resources have no sharing structure to compress. This generator
//! instead composes the structural features real machine descriptions
//! are made of — the same corners the hand-written zoo under
//! `machines/` pins individually:
//!
//! * **clustered resource groups** — each cluster owns an issue slot,
//!   a writeback bus, and its function units; multi-cluster machines
//!   add a shared inter-cluster bus some operations cross;
//! * **pipelined units** — a chain of stage resources reserved at
//!   ascending cycles (one forbidden latency per shared stage offset);
//! * **non-pipelined units** — one unit resource held for a multi-cycle
//!   span, yielding a contiguous forbidden-latency span;
//! * **multi-alternative operations** — sibling operations expanded
//!   from a common base across different clusters or units, named so
//!   [`mdl::print`](rmd_machine::mdl) re-collapses them into `alt`
//!   blocks and the rendering round-trips;
//! * **writeback contention** — result-bus usages at distinct
//!   latencies, the classic source of cross-operation forbidden
//!   latencies (paper Figure 1);
//! * **shared-usage alternative groups** — a per-operation decode port
//!   every alternative of a group reserves at issue time, so reduction
//!   sees usages common to the whole `alt` block rather than only
//!   per-alternative structure;
//! * **degenerate single-resource machines** — occasionally the whole
//!   topology collapses onto one port that every operation contends
//!   on, the maximal-conflict corner where every pairwise forbidden
//!   latency is live.
//!
//! Determinism is the contract: [`generate`] is a pure function of
//! `(seed, config)`, so a seed printed by a failing fuzz report
//! reproduces the identical machine anywhere.

use crate::rng::{mix_seed, SplitMix64};
use rmd_machine::{MachineBuilder, MachineDescription, ResourceId};

/// Size envelope for [`generate`]. All bounds are inclusive maxima;
/// the generator draws the actual shape uniformly at or below them.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of clusters (at least 1 is always generated).
    pub max_clusters: u32,
    /// Maximum function units per cluster (at least 1 per cluster).
    pub max_units: u32,
    /// Maximum pipeline depth of a pipelined unit / maximum occupancy
    /// span of a non-pipelined unit, in cycles (at least 1).
    pub max_depth: u32,
    /// Maximum number of base operations (at least 1).
    pub max_ops: u32,
    /// Maximum alternatives a base operation expands into (at least 1;
    /// 2+ produces `alt` blocks).
    pub max_alts: u32,
}

impl GenConfig {
    /// Small machines: fast to reduce, automata always tractable.
    /// The default envelope for high-count fuzz runs.
    pub fn small() -> Self {
        GenConfig {
            max_clusters: 2,
            max_units: 2,
            max_depth: 4,
            max_ops: 4,
            max_alts: 2,
        }
    }

    /// Mid-size machines: several clusters, deeper units, more
    /// alternatives — the shape of the paper's real-machine studies.
    pub fn medium() -> Self {
        GenConfig {
            max_clusters: 3,
            max_units: 3,
            max_depth: 8,
            max_ops: 8,
            max_alts: 3,
        }
    }

    /// Large machines: stresses reduction wall-time and automata size;
    /// the harness skips the automata baseline when it blows its state
    /// cap, so large runs still terminate.
    pub fn large() -> Self {
        GenConfig {
            max_clusters: 4,
            max_units: 4,
            max_depth: 12,
            max_ops: 14,
            max_alts: 4,
        }
    }

    /// The preset named `name` (`small`, `medium`, or `large`).
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "small" => Some(Self::small()),
            "medium" => Some(Self::medium()),
            "large" => Some(Self::large()),
            _ => None,
        }
    }
}

/// One function unit inside a cluster.
enum Unit {
    /// Stage resources reserved at ascending cycles.
    Pipelined { stages: Vec<ResourceId> },
    /// One resource held for `span` consecutive cycles.
    NonPipelined { res: ResourceId, span: u32 },
}

/// A cluster: issue slot, writeback bus, function units.
struct Cluster {
    issue: ResourceId,
    bus: ResourceId,
    units: Vec<Unit>,
}

/// Generates a syntactically valid, structurally interesting machine
/// description from `seed` within the `cfg` size envelope. Equal
/// `(seed, cfg)` pairs yield byte-identical canonical MDL renderings.
pub fn generate(seed: u64, cfg: &GenConfig) -> MachineDescription {
    let mut rng = SplitMix64::new(mix_seed(seed, 0x0067_656e, 0)); // "gen"
    let mut b = MachineBuilder::new(format!("fuzz-{seed:016x}"));

    // --- degenerate single-resource machines -------------------------
    // Roughly one machine in twelve collapses the whole topology onto
    // a single port. Every operation contends on the same resource, so
    // every pairwise conflict is live and reduction must preserve the
    // maximal forbidden-latency sets (real analogue: a single-issue
    // scalar port). Drawn first so it is a stable prefix decision.
    if rng.below(12) == 0 {
        return generate_degenerate(&mut rng, b, cfg);
    }

    // --- resource topology -------------------------------------------
    let nclusters = 1 + rng.below(u64::from(cfg.max_clusters.max(1))) as usize;
    let mut clusters = Vec::with_capacity(nclusters);
    for c in 0..nclusters {
        let issue = b.resource(format!("c{c}_issue"));
        let bus = b.resource(format!("c{c}_wb"));
        let nunits = 1 + rng.below(u64::from(cfg.max_units.max(1))) as usize;
        let mut units = Vec::with_capacity(nunits);
        for u in 0..nunits {
            let depth = 1 + rng.below(u64::from(cfg.max_depth.max(1))) as u32;
            if rng.flip() {
                // Pipelined: one resource per stage. Adjacent stages may
                // share a physical resource (a structural hazard), which
                // is what produces interior forbidden latencies.
                let mut stages = Vec::with_capacity(depth as usize);
                for s in 0..depth {
                    if s > 0 && rng.below(4) == 0 {
                        stages.push(stages[s as usize - 1]);
                    } else {
                        stages.push(b.resource(format!("c{c}_u{u}_s{s}")));
                    }
                }
                units.push(Unit::Pipelined { stages });
            } else {
                units.push(Unit::NonPipelined {
                    res: b.resource(format!("c{c}_u{u}_np")),
                    span: depth,
                });
            }
        }
        clusters.push(Cluster { issue, bus, units });
    }
    // Inter-cluster result bus, present only on clustered machines.
    let xbus = (nclusters > 1).then(|| b.resource("xbus"));

    // --- operations --------------------------------------------------
    let nops = 1 + rng.below(u64::from(cfg.max_ops.max(1))) as usize;
    for o in 0..nops {
        let name = format!("op{o}");
        let nalts = 1 + rng.below(u64::from(cfg.max_alts.max(1))) as usize;
        // An alternative is a (cluster, unit) placement; distinct
        // placements only, so every alternative is selectable.
        let mut placements: Vec<(usize, usize)> = Vec::new();
        for _ in 0..nalts {
            let c = rng.index(clusters.len());
            let u = rng.index(clusters[c].units.len());
            if !placements.contains(&(c, u)) {
                placements.push((c, u));
            }
        }
        let crosses = xbus.is_some() && rng.below(3) == 0;
        let writeback = rng.flip();
        if placements.len() == 1 {
            let (c, u) = placements[0];
            let op = b.operation(&name);
            emit_alt(op, &clusters[c], u, crosses.then_some(xbus).flatten(), writeback, &mut rng)
                .finish();
        } else {
            // Half the groups also reserve a shared per-operation
            // decode port at issue time: a usage common to *every*
            // alternative, the structure per-alternative reduction
            // must keep aligned across the whole `alt` block.
            let shared = rng.flip().then(|| b.resource(format!("op{o}_dec")));
            // Expanded-alternative naming (`name#k`, equal weights) so
            // the canonical rendering re-collapses into an `alt` block.
            for (k, &(c, u)) in placements.iter().enumerate() {
                let mut op = b.operation(format!("{name}#{k}")).base(&name);
                if let Some(dec) = shared {
                    op = op.usage(dec, 0);
                }
                emit_alt(op, &clusters[c], u, crosses.then_some(xbus).flatten(), writeback, &mut rng)
                    .finish();
            }
        }
    }

    b.build().expect("generated description is structurally valid")
}

/// Emits a machine whose every operation contends on one port: either
/// a multi-cycle occupancy span starting at issue, or issue plus a
/// jittered second reservation (the two-usage shape that makes every
/// issue distance up to the jitter a forbidden latency).
fn generate_degenerate(
    rng: &mut SplitMix64,
    mut b: MachineBuilder,
    cfg: &GenConfig,
) -> MachineDescription {
    let port = b.resource("the_port");
    let depth = u64::from(cfg.max_depth.max(1));
    let nops = 1 + rng.below(u64::from(cfg.max_ops.max(1))) as usize;
    for o in 0..nops {
        let op = b.operation(format!("op{o}"));
        if rng.flip() {
            let span = 1 + rng.below(depth) as u32;
            op.span(port, 0, span).finish();
        } else {
            let again = 1 + rng.below(depth) as u32;
            op.usage(port, 0).usage(port, again).finish();
        }
    }
    b.build().expect("degenerate description is structurally valid")
}

/// Emits the reservation-table body of one alternative: issue at cycle
/// 0, the unit's stage chain or occupancy span, an optional writeback
/// on the cluster bus, and an optional inter-cluster bus crossing.
fn emit_alt<'a>(
    mut op: rmd_machine::OperationBuilder<'a>,
    cluster: &Cluster,
    unit: usize,
    xbus: Option<ResourceId>,
    writeback: bool,
    rng: &mut SplitMix64,
) -> rmd_machine::OperationBuilder<'a> {
    op = op.usage(cluster.issue, 0);
    let result_cycle = match &cluster.units[unit] {
        Unit::Pipelined { stages } => {
            for (s, &res) in stages.iter().enumerate() {
                op = op.usage(res, s as u32 + 1);
            }
            stages.len() as u32 + 1
        }
        Unit::NonPipelined { res, span } => {
            op = op.span(*res, 1, 1 + span);
            span + 1
        }
    };
    if writeback {
        // A jittered writeback latency is the classic forbidden-latency
        // source: two ops whose bus cycles differ by d conflict at
        // issue distance d.
        let wb = result_cycle + rng.below(3) as u32;
        op = op.usage(cluster.bus, wb);
    }
    if let Some(x) = xbus {
        op = op.usage(x, result_cycle);
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::mdl;

    #[test]
    fn deterministic_by_seed() {
        let cfg = GenConfig::medium();
        let a = generate(42, &cfg);
        let b = generate(42, &cfg);
        assert_eq!(a, b);
        assert_eq!(mdl::print(&a), mdl::print(&b));
        assert_ne!(mdl::print(&a), mdl::print(&generate(43, &cfg)));
    }

    #[test]
    fn every_seed_renders_and_reparses() {
        let cfg = GenConfig::small();
        for seed in 0..200 {
            let m = generate(seed, &cfg);
            assert!(m.num_operations() >= 1, "seed {seed}");
            // Degenerate machines own exactly one resource; everything
            // else has at least an issue slot and a writeback bus.
            assert!(m.num_resources() >= 1, "seed {seed}");
            let src = mdl::print(&m);
            let (parsed, _) = mdl::parse_machine(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: rendering does not reparse: {e}"));
            assert_eq!(m, parsed, "seed {seed}: round trip changed the machine");
        }
    }

    #[test]
    fn structural_features_all_appear() {
        // Across a modest seed sweep the generator must actually emit
        // each advertised structure at least once.
        let cfg = GenConfig::medium();
        let (mut alts, mut spans, mut multi_cluster, mut xbus) = (false, false, false, false);
        let (mut shared_dec, mut degenerate) = (false, false);
        for seed in 0..100 {
            let m = generate(seed, &cfg);
            let src = mdl::print(&m);
            alts |= src.contains(" alt {");
            spans |= src.contains("..");
            multi_cluster |= src.contains("c1_issue");
            xbus |= src.contains("xbus");
            shared_dec |= src.contains("_dec");
            degenerate |= m.num_resources() == 1 && src.contains("the_port");
        }
        assert!(alts, "no seed produced an alt block");
        assert!(spans, "no seed produced a multi-cycle span");
        assert!(multi_cluster, "no seed produced a second cluster");
        assert!(xbus, "no seed produced an inter-cluster bus usage");
        assert!(shared_dec, "no seed produced a shared-usage alt group");
        assert!(degenerate, "no seed produced a single-resource machine");
    }

    #[test]
    fn shared_decode_usage_appears_in_every_alternative_of_its_group() {
        // Whenever a group owns an opN_dec port, every alternative of
        // that group must reserve it — a partial share would mean the
        // generator produced the structure it advertises only halfway.
        let cfg = GenConfig::medium();
        let mut checked_groups = 0;
        for seed in 0..100 {
            let m = generate(seed, &cfg);
            let src = mdl::print(&m);
            for o in 0..m.num_operations() {
                let dec = format!("op{o}_dec");
                if !src.contains(&dec) {
                    continue;
                }
                checked_groups += 1;
                let base = format!("op{o}");
                let alt_count = m
                    .operations()
                    .iter()
                    .filter(|op| op.base() == Some(base.as_str()))
                    .count();
                assert!(
                    alt_count >= 2,
                    "seed {seed}: {dec} exists but {base} is not a multi-alternative group"
                );
                // Every alternative reserves the port exactly once, so
                // the rendering mentions it alt_count times plus the
                // single resource declaration.
                let dec_mentions = src.matches(&dec).count();
                assert_eq!(
                    dec_mentions,
                    alt_count + 1,
                    "seed {seed}: {dec} reserved by {} of {alt_count} alternatives",
                    dec_mentions.saturating_sub(1),
                );
            }
        }
        assert!(checked_groups > 0, "sweep never produced a shared-usage group");
    }

    #[test]
    fn presets_scale_and_resolve() {
        assert!(GenConfig::preset("nope").is_none());
        for name in ["small", "medium", "large"] {
            let cfg = GenConfig::preset(name).unwrap();
            let m = generate(7, &cfg);
            assert!(m.num_operations() <= (cfg.max_ops * cfg.max_alts) as usize);
        }
    }
}

