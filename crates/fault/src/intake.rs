//! Counterexample intake: independent confirmation of `rmd certify`
//! disproofs.
//!
//! The static prover and the differential trace oracle are built on
//! different foundations — conflict-vector reachability versus concrete
//! query-module execution — which is exactly what makes one a useful
//! witness for the other. When certification fails, its
//! [`Counterexample`] converts to a [`QueryTrace`](rmd_query::QueryTrace)
//! and lands here: the trace is *recorded* against query modules over
//! the original description and *replayed* over the suspect's modules
//! with [`replay_diff`]. A counterexample is
//! **confirmed** only when the runtime modules reproduce the divergence
//! the prover predicted; a static false positive replays clean and is
//! rejected.

use crate::oracle::replay_diff;
use rmd_certify::{CexKind, Counterexample};
use rmd_machine::MachineDescription;
use rmd_query::{
    Answer, BitvecModule, DiscreteModule, ModuloBitvecModule, ModuloDiscreteModule, Response,
    WordLayout,
};

/// Replay a certify counterexample through the runtime query modules of
/// both descriptions and report the first divergence.
///
/// Returns `Some(description)` when the suspect's modules answer the
/// trace differently from the original's — the counterexample is
/// independently confirmed — or `None` when the replay finds no
/// divergence (or the original's own modules fail to reproduce the
/// answer the prover claimed, i.e. the counterexample is bogus).
pub fn confirm_counterexample(
    original: &MachineDescription,
    suspect: &MachineDescription,
    cex: &Counterexample,
) -> Option<String> {
    let trace = cex.to_trace(original.name());
    let packed = original.num_resources() <= 64 && suspect.num_resources() <= 64;
    match cex.kind {
        CexKind::Linear => {
            let expected = trace.replay(&mut DiscreteModule::new(original));
            check_claim(&expected, cex)?;
            if let Some(d) = replay_diff(&trace, &expected, &mut DiscreteModule::new(suspect)) {
                return Some(format!("discrete: {d}"));
            }
            if packed {
                let layout = WordLayout::widest(64, suspect.num_resources());
                let mut q = BitvecModule::new(suspect, layout);
                if let Some(d) = replay_diff(&trace, &expected, &mut q) {
                    return Some(format!("bitvec: {d}"));
                }
            }
            None
        }
        CexKind::Modulo { ii } => {
            let expected = trace.replay(&mut ModuloDiscreteModule::new(original, ii));
            check_claim(&expected, cex)?;
            let mut q = ModuloDiscreteModule::new(suspect, ii);
            if let Some(d) = replay_diff(&trace, &expected, &mut q) {
                return Some(format!("modulo-discrete (ii {ii}): {d}"));
            }
            if packed {
                let layout = WordLayout::widest(64, suspect.num_resources());
                let mut q = ModuloBitvecModule::new(suspect, ii, layout);
                if let Some(d) = replay_diff(&trace, &expected, &mut q) {
                    return Some(format!("modulo-bitvec (ii {ii}): {d}"));
                }
            }
            None
        }
    }
}

/// The original's own modules must answer the final probe exactly as
/// the prover claimed (`left_admits`); otherwise the counterexample
/// does not even describe the original machine and cannot be confirmed.
fn check_claim(expected: &[Answer], cex: &Counterexample) -> Option<()> {
    let last = expected.last()?;
    (last.response == Response::Admitted(cex.left_admits)).then_some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::{mutate, MutantPayload, ALL_OPERATORS};
    use rmd_certify::{certify_pair, CertifyFailure, CertifyOptions};
    use rmd_machine::models::example_machine;
    use rmd_machine::OpId;

    /// The certify → intake loop, pinned kill-score style: on fig1,
    /// every semantic description-level mutant must (a) fail
    /// certification with a counterexample (not an error, not a pass)
    /// and (b) have that counterexample confirmed by the runtime
    /// modules; every neutral mutant must certify clean.
    #[test]
    fn every_semantic_mutant_yields_a_confirmed_counterexample() {
        let m = example_machine();
        let options = CertifyOptions::default();
        let mut semantic = 0;
        let mut neutral = 0;
        for op in ALL_OPERATORS {
            for seed in 0..8u64 {
                let Some(mu) = mutate(&m, op, seed) else {
                    continue;
                };
                let suspect = match &mu.payload {
                    MutantPayload::Machine(s) | MutantPayload::ReducedMachine(s) => s.clone(),
                    // Query-word corruption never changes the machine.
                    MutantPayload::QueryWord { .. } => continue,
                };
                if mu.is_semantic(&m) {
                    semantic += 1;
                    let cex = match certify_pair(&m, &suspect, &options) {
                        Err(CertifyFailure::Mismatch(cex)) => cex,
                        other => panic!("{op} seed {seed} ({}): {other:?}", mu.what),
                    };
                    assert!(
                        confirm_counterexample(&m, &suspect, &cex).is_some(),
                        "{op} seed {seed} ({}): prover counterexample not \
                         confirmed by the runtime modules:\n{}",
                        mu.what,
                        cex.render(&m)
                    );
                } else {
                    neutral += 1;
                    assert!(
                        certify_pair(&m, &suspect, &options).is_ok(),
                        "{op} seed {seed} ({}): neutral mutant failed to certify",
                        mu.what
                    );
                }
            }
        }
        assert!(semantic >= 10, "only {semantic} semantic mutants exercised");
        assert!(neutral >= 1, "only {neutral} neutral mutants exercised");
    }

    #[test]
    fn bogus_counterexamples_are_rejected() {
        // A counterexample whose claimed original-side answer is wrong
        // must not be confirmed, whatever the suspect does.
        let m = example_machine();
        let cex = rmd_certify::Counterexample {
            kind: rmd_certify::CexKind::Linear,
            places: vec![],
            probe: (OpId(0), 0),
            left_admits: false, // an empty pipeline admits everything
            right_admits: true,
        };
        assert_eq!(confirm_counterexample(&m, &m, &cex), None);
    }
}
