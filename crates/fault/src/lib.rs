//! Fault-injection and mutation-verification harness.
//!
//! The reduction pipeline's entire value proposition rests on one
//! correctness gate: a reduced description must forbid **exactly** the
//! latencies the original forbids (paper §5, Theorem 1). This crate
//! adversarially tests the gate itself. Seeded [mutation
//! operators](mutate::MutationOp) corrupt machine descriptions, reduced
//! covers, and packed query-module state; two independent
//! [oracles](oracle) — the exact-equivalence verifier and a
//! differential query-trace replayer — must notice every corruption
//! that changes scheduling behavior.
//!
//! The harness also closes the loop with the static prover: when
//! `rmd certify` disproves an equivalence, its counterexample trace is
//! handed to [intake](intake::confirm_counterexample) for independent
//! confirmation by the runtime query modules.
//!
//! The [audit](audit::audit_model) reports a **mutation-kill score**;
//! the workspace's tier-1 tests pin it at 100% on the paper's models,
//! and `cargo run -p rmd-fault --bin mutation-audit` reproduces the
//! table from the command line.
//!
//! Determinism is part of the contract: the harness carries its own
//! [splitmix64](rng::SplitMix64) generator, so a seed printed in a
//! failing report replays the identical mutant anywhere.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod fuzz;
pub mod generate;
pub mod intake;
pub mod mutate;
pub mod oracle;
pub mod rng;

pub use audit::{audit_model, AuditReport, OperatorStats};
pub use fuzz::{
    check_machine, fuzz, parse_corpus_entry, render_corpus_entry, replay_corpus,
    replay_corpus_entry, CaseFlags, CaseOutcome, CorpusEntry, FailedCase, FuzzConfig, FuzzReport,
};
pub use generate::{generate, GenConfig};
pub use intake::confirm_counterexample;
pub use mutate::{mutate, Mutant, MutantPayload, MutationOp, ALL_OPERATORS};
pub use oracle::{
    matrix_oracle, record_linear_trace, record_modulo_trace, replay_diff, trace_oracle,
};
pub use rng::SplitMix64;
