//! Seeded mutation operators over machine descriptions and reduced
//! outputs.
//!
//! Each operator produces a *mutant*: a small, deliberate corruption of
//! a machine description, of a reduction's selected cover, or of a query
//! module's packed bitvector state. The harness then asks whether the
//! workspace's correctness gates — the exact-equivalence verifier and
//! the differential query-trace oracle — actually notice.
//!
//! A mutant is **semantic** when it changes the forbidden-latency
//! matrix (the paper's Theorem 1 invariant) and **neutral** when it
//! only reshuffles structure while forbidding exactly the same
//! latencies. Only semantic mutants must be killed; killing a neutral
//! mutant would be an oracle false positive, which the audit also
//! reports.

use crate::rng::SplitMix64;
use rmd_core::{try_reduce, verify_equivalence, Objective, ReduceOptions};
use rmd_machine::{MachineBuilder, MachineDescription, ResourceId};

/// The eight mutation operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationOp {
    /// Remove one usage from one operation's reservation table.
    DropUsage,
    /// Move one usage of one operation one cycle earlier or later.
    ShiftUsage,
    /// Redirect every usage of one resource onto another resource.
    MergeResources,
    /// Reduce the machine, then remove one usage from the selected
    /// cover — dropping the forbidden latencies only that usage pair
    /// generated.
    DropCoverLatency,
    /// Flip a bit in the packed reserved-table word of a
    /// [`BitvecModule`](rmd_query::BitvecModule), planting a phantom
    /// reservation the discrete representation does not see.
    CorruptWord,
    /// Delete the last cycle of one operation's reservation table.
    TruncateTable,
    /// Swap the reservation tables of two operations (preferring two
    /// alternatives expanded from the same base operation).
    SwapAlternative,
    /// Add a spurious usage to one operation, perturbing its operation
    /// class.
    PerturbClass,
}

/// All operators, in a fixed audit order.
pub const ALL_OPERATORS: [MutationOp; 8] = [
    MutationOp::DropUsage,
    MutationOp::ShiftUsage,
    MutationOp::MergeResources,
    MutationOp::DropCoverLatency,
    MutationOp::CorruptWord,
    MutationOp::TruncateTable,
    MutationOp::SwapAlternative,
    MutationOp::PerturbClass,
];

impl MutationOp {
    /// A stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MutationOp::DropUsage => "drop-usage",
            MutationOp::ShiftUsage => "shift-usage",
            MutationOp::MergeResources => "merge-resources",
            MutationOp::DropCoverLatency => "drop-cover-latency",
            MutationOp::CorruptWord => "corrupt-word",
            MutationOp::TruncateTable => "truncate-table",
            MutationOp::SwapAlternative => "swap-alternative",
            MutationOp::PerturbClass => "perturb-class",
        }
    }
}

impl core::fmt::Display for MutationOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a mutant actually corrupts.
#[derive(Clone, Debug)]
pub enum MutantPayload {
    /// A corrupted machine description, to be compared against the
    /// original it was derived from.
    Machine(MachineDescription),
    /// A corrupted *reduction output*: the reduced machine with one
    /// selected cover usage removed. Compared against the original
    /// machine, exactly as `reduce_with_fallback` would verify it.
    ReducedMachine(MachineDescription),
    /// A flipped bit in the packed reserved table of a bitvector query
    /// module over the (unmodified) original machine.
    QueryWord {
        /// Global schedule cycle of the phantom reservation.
        cycle: u32,
        /// Resource index of the phantom reservation.
        resource: u32,
    },
}

/// One generated mutant.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// The operator that produced it.
    pub op: MutationOp,
    /// The seed it was produced from.
    pub seed: u64,
    /// Human-readable description of the exact corruption.
    pub what: String,
    /// The corrupted artifact.
    pub payload: MutantPayload,
}

impl Mutant {
    /// Whether the mutant changes observable scheduling constraints.
    ///
    /// For description-level mutants this is the paper's criterion: the
    /// forbidden-latency matrix differs from the original's. Bitvector
    /// word corruption is semantic by construction — the operator only
    /// plants phantom reservations on cycles a real operation usage can
    /// probe.
    pub fn is_semantic(&self, original: &MachineDescription) -> bool {
        match &self.payload {
            MutantPayload::Machine(m) | MutantPayload::ReducedMachine(m) => {
                verify_equivalence(original, m).is_err()
            }
            MutantPayload::QueryWord { .. } => true,
        }
    }
}

/// A mutable, builder-friendly copy of a machine description.
struct Parts {
    name: String,
    resources: Vec<String>,
    ops: Vec<OpParts>,
}

struct OpParts {
    name: String,
    usages: Vec<(u32, u32)>, // (resource index, cycle)
    base: Option<String>,
    weight: f64,
}

impl Parts {
    fn of(m: &MachineDescription) -> Parts {
        Parts {
            name: m.name().to_owned(),
            resources: m.resources().iter().map(|r| r.name().to_owned()).collect(),
            ops: m
                .operations()
                .iter()
                .map(|op| OpParts {
                    name: op.name().to_owned(),
                    usages: op
                        .table()
                        .usages()
                        .iter()
                        .map(|u| (u.resource.0, u.cycle))
                        .collect(),
                    base: op.base().map(str::to_owned),
                    weight: op.weight(),
                })
                .collect(),
        }
    }

    /// Rebuilds a description; `None` if the mutation produced a machine
    /// the validating builder refuses (empty operation, dangling id).
    fn build(self, suffix: &str) -> Option<MachineDescription> {
        let mut b = MachineBuilder::new(format!("{}-{suffix}", self.name));
        for r in &self.resources {
            b.resource(r.clone());
        }
        for op in self.ops {
            let mut ob = b.operation(op.name).weight(op.weight);
            if let Some(base) = op.base {
                ob = ob.base(base);
            }
            for (r, c) in op.usages {
                ob = ob.usage(ResourceId(r), c);
            }
            ob.finish();
        }
        b.build().ok()
    }
}

/// Applies `op` to `machine` under `seed`.
///
/// Returns `None` when the operator does not apply (e.g. dropping a
/// usage from a machine whose every operation has exactly one, which
/// the validating builder would reject rather than mis-schedule).
pub fn mutate(machine: &MachineDescription, op: MutationOp, seed: u64) -> Option<Mutant> {
    let mut rng = SplitMix64::new(seed);
    let (what, payload) = match op {
        MutationOp::DropUsage => drop_usage(machine, &mut rng)?,
        MutationOp::ShiftUsage => shift_usage(machine, &mut rng)?,
        MutationOp::MergeResources => merge_resources(machine, &mut rng)?,
        MutationOp::DropCoverLatency => drop_cover_latency(machine, &mut rng)?,
        MutationOp::CorruptWord => corrupt_word(machine, &mut rng)?,
        MutationOp::TruncateTable => truncate_table(machine, &mut rng)?,
        MutationOp::SwapAlternative => swap_alternative(machine, &mut rng)?,
        MutationOp::PerturbClass => perturb_class(machine, &mut rng)?,
    };
    Some(Mutant {
        op,
        seed,
        what,
        payload,
    })
}

fn drop_usage(
    m: &MachineDescription,
    rng: &mut SplitMix64,
) -> Option<(String, MutantPayload)> {
    let mut parts = Parts::of(m);
    let candidates: Vec<usize> = (0..parts.ops.len())
        .filter(|&i| parts.ops[i].usages.len() >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let oi = candidates[rng.index(candidates.len())];
    let ui = rng.index(parts.ops[oi].usages.len());
    let (r, c) = parts.ops[oi].usages.remove(ui);
    let what = format!(
        "dropped usage {}@{c} from `{}`",
        parts.resources[r as usize], parts.ops[oi].name
    );
    Some((what, MutantPayload::Machine(parts.build("mut")?)))
}

fn shift_usage(
    m: &MachineDescription,
    rng: &mut SplitMix64,
) -> Option<(String, MutantPayload)> {
    let mut parts = Parts::of(m);
    let oi = rng.index(parts.ops.len());
    let op = &mut parts.ops[oi];
    let ui = rng.index(op.usages.len());
    let (r, c) = op.usages[ui];
    let c2 = if c > 0 && rng.flip() { c - 1 } else { c + 1 };
    op.usages[ui] = (r, c2);
    let what = format!(
        "shifted usage {}@{c} of `{}` to cycle {c2}",
        parts.resources[r as usize], parts.ops[oi].name
    );
    Some((what, MutantPayload::Machine(parts.build("mut")?)))
}

fn merge_resources(
    m: &MachineDescription,
    rng: &mut SplitMix64,
) -> Option<(String, MutantPayload)> {
    if m.num_resources() < 2 {
        return None;
    }
    let mut parts = Parts::of(m);
    let a = rng.index(parts.resources.len()) as u32;
    let mut b = rng.index(parts.resources.len()) as u32;
    if a == b {
        b = (b + 1) % parts.resources.len() as u32;
    }
    for op in &mut parts.ops {
        for u in &mut op.usages {
            if u.0 == b {
                u.0 = a;
            }
        }
    }
    let what = format!(
        "merged resource `{}` into `{}`",
        parts.resources[b as usize], parts.resources[a as usize]
    );
    Some((what, MutantPayload::Machine(parts.build("mut")?)))
}

fn drop_cover_latency(
    m: &MachineDescription,
    rng: &mut SplitMix64,
) -> Option<(String, MutantPayload)> {
    // Reduce for real, then knock one usage out of the selected cover —
    // the precise failure `reduce_with_fallback`'s mandatory
    // verification exists to contain.
    let objective = if rng.flip() {
        Objective::ResUses
    } else {
        Objective::KCycleWord { k: 4 }
    };
    let red = try_reduce(m, objective, &ReduceOptions::default()).ok()?;
    let mut parts = Parts::of(&red.reduced);
    let candidates: Vec<usize> = (0..parts.ops.len())
        .filter(|&i| parts.ops[i].usages.len() >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let oi = candidates[rng.index(candidates.len())];
    let ui = rng.index(parts.ops[oi].usages.len());
    let (r, c) = parts.ops[oi].usages.remove(ui);
    let what = format!(
        "dropped selected cover usage {}@{c} from `{}` ({objective:?})",
        parts.resources[r as usize], parts.ops[oi].name
    );
    Some((what, MutantPayload::ReducedMachine(parts.build("cover-mut")?)))
}

fn corrupt_word(
    m: &MachineDescription,
    rng: &mut SplitMix64,
) -> Option<(String, MutantPayload)> {
    // A packed word holds num_resources bits per cycle; the layout only
    // exists when a cycle's bits fit in one u64.
    if m.num_resources() > 64 {
        return None;
    }
    // Plant the phantom reservation on a (resource, cycle) some real
    // operation usage can land on: pick an operation and one of its
    // usages (resource r in table cycle c), then corrupt cycle
    // `c + offset` for a small offset — any `check(op, offset)` probes
    // exactly that cell, so the corruption is observable by
    // construction.
    let oi = rng.index(m.num_operations());
    let op = &m.operations()[oi];
    let u = op.table().usages()[rng.index(op.table().num_usages())];
    let offset = rng.below(8) as u32;
    let cycle = u.cycle + offset;
    let what = format!(
        "flipped reserved-table bit ({}, cycle {cycle}) in the packed bitvector",
        m.resource(u.resource).name()
    );
    Some((
        what,
        MutantPayload::QueryWord {
            cycle,
            resource: u.resource.0,
        },
    ))
}

fn truncate_table(
    m: &MachineDescription,
    rng: &mut SplitMix64,
) -> Option<(String, MutantPayload)> {
    let mut parts = Parts::of(m);
    // Truncatable: dropping the final cycle leaves the table nonempty.
    let candidates: Vec<usize> = (0..parts.ops.len())
        .filter(|&i| {
            let us = &parts.ops[i].usages;
            let last = us.iter().map(|&(_, c)| c).max().unwrap_or(0);
            us.iter().any(|&(_, c)| c < last)
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let oi = candidates[rng.index(candidates.len())];
    let op = &mut parts.ops[oi];
    let last = op.usages.iter().map(|&(_, c)| c).max().expect("nonempty");
    op.usages.retain(|&(_, c)| c < last);
    let what = format!(
        "truncated `{}` at cycle {last} (dropped its final-cycle usages)",
        parts.ops[oi].name
    );
    Some((what, MutantPayload::Machine(parts.build("mut")?)))
}

fn swap_alternative(
    m: &MachineDescription,
    rng: &mut SplitMix64,
) -> Option<(String, MutantPayload)> {
    if m.num_operations() < 2 {
        return None;
    }
    let mut parts = Parts::of(m);
    // Prefer swapping two alternatives expanded from one base operation;
    // fall back to any two operations.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..parts.ops.len() {
        for j in i + 1..parts.ops.len() {
            if let (Some(a), Some(b)) = (&parts.ops[i].base, &parts.ops[j].base) {
                if a == b {
                    pairs.push((i, j));
                }
            }
        }
    }
    let (i, j) = if pairs.is_empty() {
        let i = rng.index(parts.ops.len());
        let mut j = rng.index(parts.ops.len());
        if i == j {
            j = (j + 1) % parts.ops.len();
        }
        (i.min(j), i.max(j))
    } else {
        pairs[rng.index(pairs.len())]
    };
    let (left, right) = parts.ops.split_at_mut(j);
    core::mem::swap(&mut left[i].usages, &mut right[0].usages);
    let what = format!(
        "swapped reservation tables of `{}` and `{}`",
        parts.ops[i].name, parts.ops[j].name
    );
    Some((what, MutantPayload::Machine(parts.build("mut")?)))
}

fn perturb_class(
    m: &MachineDescription,
    rng: &mut SplitMix64,
) -> Option<(String, MutantPayload)> {
    let mut parts = Parts::of(m);
    let oi = rng.index(parts.ops.len());
    let r = rng.index(parts.resources.len()) as u32;
    let len = parts.ops[oi]
        .usages
        .iter()
        .map(|&(_, c)| c)
        .max()
        .unwrap_or(0);
    // Find a free (resource, cycle) slot in or just past the table.
    let mut cycle = rng.below(u64::from(len) + 2) as u32;
    for _ in 0..=len + 2 {
        if !parts.ops[oi].usages.contains(&(r, cycle)) {
            break;
        }
        cycle += 1;
    }
    if parts.ops[oi].usages.contains(&(r, cycle)) {
        return None;
    }
    parts.ops[oi].usages.push((r, cycle));
    let what = format!(
        "added spurious usage {}@{cycle} to `{}`",
        parts.resources[r as usize], parts.ops[oi].name
    );
    Some((what, MutantPayload::Machine(parts.build("mut")?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;

    #[test]
    fn every_operator_applies_to_the_example_machine() {
        let m = example_machine();
        for op in ALL_OPERATORS {
            let mut produced = false;
            for seed in 0..8 {
                if mutate(&m, op, seed).is_some() {
                    produced = true;
                    break;
                }
            }
            assert!(produced, "{op} never applied");
        }
    }

    #[test]
    fn mutants_are_reproducible() {
        let m = example_machine();
        for op in ALL_OPERATORS {
            let a = mutate(&m, op, 3).map(|mu| mu.what);
            let b = mutate(&m, op, 3).map(|mu| mu.what);
            assert_eq!(a, b, "{op}");
        }
    }

    #[test]
    fn machine_mutants_differ_structurally_from_the_original() {
        let m = example_machine();
        for op in ALL_OPERATORS {
            for seed in 0..8 {
                if let Some(mu) = mutate(&m, op, seed) {
                    if let MutantPayload::Machine(m2) = &mu.payload {
                        assert_ne!(
                            m2.operations()
                                .iter()
                                .map(|o| o.table().clone())
                                .collect::<Vec<_>>(),
                            m.operations()
                                .iter()
                                .map(|o| o.table().clone())
                                .collect::<Vec<_>>(),
                            "{op} seed {seed} produced an identical machine: {}",
                            mu.what
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn drop_cover_latency_mutates_the_reduction_output() {
        let m = example_machine();
        let mut found = false;
        for seed in 0..16 {
            if let Some(mu) = mutate(&m, MutationOp::DropCoverLatency, seed) {
                found = true;
                assert!(matches!(mu.payload, MutantPayload::ReducedMachine(_)));
            }
        }
        assert!(found);
    }
}
