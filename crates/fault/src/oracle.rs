//! The two mutation-kill oracles.
//!
//! * [`matrix_oracle`] — the exact-equivalence verifier of
//!   `rmd_core::verify_equivalence`: a mutant is killed when its
//!   forbidden-latency matrix differs from the original's. This is the
//!   check `reduce_with_fallback` runs on every reduction.
//! * [`trace_oracle`] — a differential query-trace replayer built on
//!   [`QueryTrace`]: a deterministic `check`/`assign`/`assign_free`/
//!   `free` sequence is **recorded** once against modules over the
//!   original machine ([`record_linear_trace`], [`record_modulo_trace`])
//!   and **replayed** ([`replay_diff`]) over every query-module
//!   representation of the mutant — discrete, bitvector, and both modulo
//!   forms. Any divergent [`Answer`] — a `check` verdict, an
//!   evicted-instance set, a scheduled count — kills the mutant.
//!
//! The trace oracle is *sound*: every answer it compares is a function
//! of the forbidden-latency matrix alone, so a neutral mutant can never
//! diverge. Its pairwise probe phase also makes it *complete* for
//! description-level mutants: assigning each operation in isolation and
//! sweeping `check` across every latency offset reads the full matrix
//! back out through the query interface.
//!
//! Because recording gates every `assign` on an admitting `check` and
//! replay stops at the first divergent answer, replayed traces are
//! protocol-clean on both sides — the debug-build
//! [`ProtocolChecker`](rmd_query::ProtocolChecker) embedded in the
//! modules never fires, and the same traces can be fed to
//! `rmd-analyze`'s static protocol checks.

use crate::mutate::{Mutant, MutantPayload};
use crate::rng::SplitMix64;
use rmd_core::verify_equivalence;
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{
    Answer, BitvecModule, ContentionQuery, DiscreteModule, ModuloBitvecModule,
    ModuloDiscreteModule, OpInstance, QueryEvent, QueryTrace, Response, WordLayout,
};

/// Kills description-level mutants whose matrix differs (oracle a).
///
/// Not applicable to query-state corruption, which leaves the machine
/// description untouched.
pub fn matrix_oracle(original: &MachineDescription, mutant: &Mutant) -> bool {
    match &mutant.payload {
        MutantPayload::Machine(m) | MutantPayload::ReducedMachine(m) => {
            verify_equivalence(original, m).is_err()
        }
        MutantPayload::QueryWord { .. } => false,
    }
}

/// Kills mutants whose query modules answer differently from the
/// original's under an identical request trace (oracle b).
///
/// Returns `Some(description)` of the first divergence, or `None` if
/// the mutant survives the full trace.
pub fn trace_oracle(
    original: &MachineDescription,
    mutant: &Mutant,
    trace_seed: u64,
) -> Option<String> {
    match &mutant.payload {
        MutantPayload::Machine(m) | MutantPayload::ReducedMachine(m) => {
            differential_machines(original, m, trace_seed)
        }
        MutantPayload::QueryWord { cycle, resource } => {
            corrupt_word_divergence(original, *cycle, *resource)
        }
    }
}

/// Records the oracle's standard probe-sweep + random-walk trace against
/// a fresh [`DiscreteModule`] over `machine`.
///
/// Returns the trace and the per-event [`Answer`]s — the "expected" side
/// of a differential [`replay_diff`]. `probe_span` sets how far the
/// sweep probes (usually [`MachineDescription::max_table_length`]); the
/// differential oracle passes the maximum over original and mutant so
/// probes also cover a mutant's longer tables.
pub fn record_linear_trace(
    machine: &MachineDescription,
    probe_span: u32,
    trace_seed: u64,
) -> (QueryTrace, Vec<Answer>) {
    let mut q = DiscreteModule::new(machine);
    let mut trace = QueryTrace::new(machine.name());
    let mut answers = Vec::new();
    record_into(
        &mut q,
        &mut trace,
        &mut answers,
        machine.num_operations(),
        probe_span,
        trace_seed,
    );
    (trace, answers)
}

/// Records the same probe-sweep + random-walk trace against a fresh
/// [`ModuloDiscreteModule`] at initiation interval `ii`.
///
/// Modulo wraparound changes which probes are admitted, so modulo
/// replays need their own recording; the returned trace carries
/// `ii = Some(ii)`.
pub fn record_modulo_trace(
    machine: &MachineDescription,
    ii: u32,
    probe_span: u32,
    trace_seed: u64,
) -> (QueryTrace, Vec<Answer>) {
    let mut q = ModuloDiscreteModule::new(machine, ii);
    let mut trace = QueryTrace::modulo(machine.name(), ii);
    let mut answers = Vec::new();
    record_into(
        &mut q,
        &mut trace,
        &mut answers,
        machine.num_operations(),
        probe_span,
        trace_seed,
    );
    (trace, answers)
}

/// Replays a recorded trace over `q` (built from a mutant machine),
/// comparing each [`Answer`] against the recorded one.
///
/// Returns `Some(description)` of the first divergent event — and stops
/// there, so state downstream of a disagreement never contaminates the
/// report — or `None` if every answer matches.
pub fn replay_diff<Q: ContentionQuery>(
    trace: &QueryTrace,
    expected: &[Answer],
    q: &mut Q,
) -> Option<String> {
    for (i, (event, want)) in trace.events.iter().zip(expected).enumerate() {
        let got = event.apply(q);
        if got != *want {
            return Some(format!("event {i}: {event}: {got} vs expected {want}"));
        }
    }
    None
}

/// Applies one event to the recording module and captures it in the
/// trace alongside its answer.
fn emit<Q: ContentionQuery>(
    q: &mut Q,
    trace: &mut QueryTrace,
    answers: &mut Vec<Answer>,
    event: QueryEvent,
) -> Answer {
    let answer = event.apply(q);
    trace.push(event);
    answers.push(answer.clone());
    answer
}

/// Drives the probe sweep plus the random walk, recording every call.
///
/// All adaptive decisions (assign only after an admitting check, the
/// live-instance set fed by eviction answers) come from the recording
/// module's own answers, which is exactly what the lockstep oracle used
/// to consult — so a replay that stops at the first divergence compares
/// the same call sequence the old pairwise driver issued.
fn record_into<Q: ContentionQuery>(
    q: &mut Q,
    trace: &mut QueryTrace,
    answers: &mut Vec<Answer>,
    num_ops: usize,
    span: u32,
    trace_seed: u64,
) {
    // ---- Phase 1: pairwise probe sweep. Assign each operation alone at
    // cycle `span`, then read every latency offset back out via `check`.
    for x in 0..num_ops {
        let x = OpId(x as u32);
        let ca = emit(q, trace, answers, QueryEvent::Check { op: x, cycle: span });
        if ca.response != Response::Admitted(true) {
            continue; // does not fit (modulo); replay still compares the verdict.
        }
        emit(
            q,
            trace,
            answers,
            QueryEvent::Assign { inst: OpInstance(0), op: x, cycle: span },
        );
        for y in 0..num_ops {
            let y = OpId(y as u32);
            for t in 0..=2 * span {
                emit(q, trace, answers, QueryEvent::Check { op: y, cycle: t });
            }
        }
        emit(
            q,
            trace,
            answers,
            QueryEvent::Free { inst: OpInstance(0), op: x, cycle: span },
        );
    }

    // ---- Phase 2: random walk exercising assign_free/free paths (the
    // optimistic→update transition, owner rebuilds, evictions).
    let mut rng = SplitMix64::new(trace_seed);
    let mut live: Vec<(OpInstance, OpId, u32)> = Vec::new();
    let mut next_inst = 1u32;
    for _ in 0..400 {
        let op = OpId(rng.index(num_ops) as u32);
        let cycle = rng.below(u64::from(3 * span)) as u32;
        match rng.below(4) {
            0 => {
                emit(q, trace, answers, QueryEvent::Check { op, cycle });
            }
            1 => {
                let a = emit(q, trace, answers, QueryEvent::Check { op, cycle });
                if a.response == Response::Admitted(true) {
                    let inst = OpInstance(next_inst);
                    next_inst += 1;
                    emit(q, trace, answers, QueryEvent::Assign { inst, op, cycle });
                    live.push((inst, op, cycle));
                }
            }
            2 => {
                let inst = OpInstance(next_inst);
                next_inst += 1;
                let a = emit(q, trace, answers, QueryEvent::AssignFree { inst, op, cycle });
                if let Response::Evicted(evicted) = &a.response {
                    live.retain(|(i, _, _)| !evicted.contains(i));
                }
                live.push((inst, op, cycle));
            }
            _ => {
                if !live.is_empty() {
                    let (inst, op, cycle) = live.swap_remove(rng.index(live.len()));
                    emit(q, trace, answers, QueryEvent::Free { inst, op, cycle });
                }
            }
        }
    }
}

/// Records against the original `a` and replays over every query-module
/// representation of the mutant `b`.
fn differential_machines(
    a: &MachineDescription,
    b: &MachineDescription,
    trace_seed: u64,
) -> Option<String> {
    if a.num_operations() != b.num_operations() {
        return Some(format!(
            "operation count diverged: {} vs {}",
            a.num_operations(),
            b.num_operations()
        ));
    }
    let span = a.max_table_length().max(b.max_table_length()).max(1);
    let ii = span + 1;
    let packed = a.num_resources() <= 64 && b.num_resources() <= 64;

    // One linear recording serves both linear representations: the two
    // are verified interchangeable, so a mutant bitvector diverging from
    // the original's discrete answers is just as dead.
    let (trace, expected) = record_linear_trace(a, span, trace_seed);
    if let Some(d) = replay_diff(&trace, &expected, &mut DiscreteModule::new(b)) {
        return Some(format!("discrete: {d}"));
    }
    if packed {
        let lb = WordLayout::widest(64, b.num_resources());
        if let Some(d) = replay_diff(&trace, &expected, &mut BitvecModule::new(b, lb)) {
            return Some(format!("bitvec: {d}"));
        }
    }

    let (mtrace, mexpected) = record_modulo_trace(a, ii, span, trace_seed);
    if let Some(d) = replay_diff(&mtrace, &mexpected, &mut ModuloDiscreteModule::new(b, ii)) {
        return Some(format!("modulo-discrete (ii {ii}): {d}"));
    }
    if packed {
        let lb = WordLayout::widest(64, b.num_resources());
        if let Some(d) = replay_diff(&mtrace, &mexpected, &mut ModuloBitvecModule::new(b, ii, lb))
        {
            return Some(format!("modulo-bitvec (ii {ii}): {d}"));
        }
    }
    None
}

/// Detects a corrupted bitvector word by differencing the corrupted
/// [`BitvecModule`] against a clean [`DiscreteModule`] over the same
/// machine — the two representations must answer identically, so a
/// phantom reservation in the packed words is a divergent `check`.
fn corrupt_word_divergence(
    m: &MachineDescription,
    cycle: u32,
    resource: u32,
) -> Option<String> {
    if m.num_resources() > 64 {
        return None;
    }
    let layout = WordLayout::widest(64, m.num_resources());
    let mut corrupted = BitvecModule::new(m, layout);
    let nr = m.num_resources() as u32;
    let word = (cycle / layout.k) as usize;
    let mask = 1u64 << ((cycle % layout.k) * nr + resource);
    corrupted.corrupt_word(word, mask);
    let mut clean = DiscreteModule::new(m);

    // `assign`/`free` on a corrupted table would violate the module's
    // internal invariants, so the replay is a pure `check` sweep — the
    // operation the corruption was derived from probes the flipped cell
    // directly, guaranteeing a hit if the bitvector math is right.
    let horizon = cycle + m.max_table_length() + 1;
    for (id, _) in m.ops() {
        for t in 0..=horizon {
            let (rc, rd) = (corrupted.check(id, t), clean.check(id, t));
            if rc != rd {
                return Some(format!(
                    "check({id}, {t}) sees the corrupted word: {rc} vs clean {rd}"
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::{mutate, MutationOp};
    use rmd_machine::models::example_machine;

    #[test]
    fn identical_machines_never_diverge() {
        let m = example_machine();
        assert_eq!(differential_machines(&m, &m, 17), None);
    }

    #[test]
    fn recorded_trace_replays_clean_across_representations() {
        // The recording (discrete) and the replay targets (bitvec,
        // modulo forms over the same machine) must agree answer for
        // answer — soundness of using one recording for all of them.
        let m = example_machine();
        let span = m.max_table_length().max(1);
        let (trace, expected) = record_linear_trace(&m, span, 99);
        assert!(!trace.is_empty());
        assert_eq!(trace.ii, None);
        let layout = WordLayout::widest(64, m.num_resources());
        assert_eq!(
            replay_diff(&trace, &expected, &mut BitvecModule::new(&m, layout)),
            None
        );
        let ii = span + 1;
        let (mtrace, mexpected) = record_modulo_trace(&m, ii, span, 99);
        assert_eq!(mtrace.ii, Some(ii));
        assert_eq!(
            replay_diff(&mtrace, &mexpected, &mut ModuloBitvecModule::new(&m, ii, layout)),
            None
        );
    }

    #[test]
    fn recorded_traces_are_protocol_clean() {
        // The static protocol checker accepts the oracle's traces: the
        // recording gates assigns on admitting checks and frees only
        // live instances, so rmd-analyze can consume them unfiltered.
        let m = example_machine();
        let span = m.max_table_length().max(1);
        let (trace, _) = record_linear_trace(&m, span, 7);
        assert_eq!(trace.check_protocol(&m), Vec::new());
        let (mtrace, _) = record_modulo_trace(&m, span + 1, span, 7);
        assert_eq!(mtrace.check_protocol(&m), Vec::new());
    }

    #[test]
    fn corrupt_word_is_always_caught() {
        let m = example_machine();
        for seed in 0..16 {
            let mu = mutate(&m, MutationOp::CorruptWord, seed).expect("applies");
            assert!(
                trace_oracle(&m, &mu, seed).is_some(),
                "seed {seed}: {} survived",
                mu.what
            );
        }
    }

    #[test]
    fn dropped_usage_diverges_under_the_trace() {
        let m = example_machine();
        let mut killed = 0;
        let mut semantic = 0;
        for seed in 0..16 {
            if let Some(mu) = mutate(&m, MutationOp::DropUsage, seed) {
                if mu.is_semantic(&m) {
                    semantic += 1;
                    if trace_oracle(&m, &mu, seed).is_some() {
                        killed += 1;
                    }
                }
            }
        }
        assert!(semantic > 0);
        assert_eq!(killed, semantic);
    }
}
