//! The two mutation-kill oracles.
//!
//! * [`matrix_oracle`] — the exact-equivalence verifier of
//!   `rmd_core::verify_equivalence`: a mutant is killed when its
//!   forbidden-latency matrix differs from the original's. This is the
//!   check `reduce_with_fallback` runs on every reduction.
//! * [`trace_oracle`] — a differential query-trace replayer: identical
//!   deterministic `check`/`assign`/`assign_free`/`free` sequences are
//!   driven through original-vs-mutant pairs of every query module
//!   (discrete, bitvector, and both modulo forms) and any divergent
//!   answer — a `check` verdict, an evicted-instance set, a scheduled
//!   count — kills the mutant.
//!
//! The trace oracle is *sound*: every answer it compares (conflict
//! verdicts, eviction sets, fit checks) is a function of the
//! forbidden-latency matrix alone, so a neutral mutant can never
//! diverge. Its pairwise probe phase also makes it *complete* for
//! description-level mutants: assigning each operation in isolation and
//! sweeping `check` across every latency offset reads the full matrix
//! back out through the query interface.

use crate::mutate::{Mutant, MutantPayload};
use crate::rng::SplitMix64;
use rmd_core::verify_equivalence;
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{
    BitvecModule, ContentionQuery, DiscreteModule, ModuloBitvecModule, ModuloDiscreteModule,
    OpInstance, WordLayout,
};

/// Kills description-level mutants whose matrix differs (oracle a).
///
/// Not applicable to query-state corruption, which leaves the machine
/// description untouched.
pub fn matrix_oracle(original: &MachineDescription, mutant: &Mutant) -> bool {
    match &mutant.payload {
        MutantPayload::Machine(m) | MutantPayload::ReducedMachine(m) => {
            verify_equivalence(original, m).is_err()
        }
        MutantPayload::QueryWord { .. } => false,
    }
}

/// Kills mutants whose query modules answer differently from the
/// original's under an identical request trace (oracle b).
///
/// Returns `Some(description)` of the first divergence, or `None` if
/// the mutant survives the full trace.
pub fn trace_oracle(
    original: &MachineDescription,
    mutant: &Mutant,
    trace_seed: u64,
) -> Option<String> {
    match &mutant.payload {
        MutantPayload::Machine(m) | MutantPayload::ReducedMachine(m) => {
            differential_machines(original, m, trace_seed)
        }
        MutantPayload::QueryWord { cycle, resource } => {
            corrupt_word_divergence(original, *cycle, *resource)
        }
    }
}

/// Drives every module pair over `a` (original) and `b` (mutant).
fn differential_machines(
    a: &MachineDescription,
    b: &MachineDescription,
    trace_seed: u64,
) -> Option<String> {
    if a.num_operations() != b.num_operations() {
        return Some(format!(
            "operation count diverged: {} vs {}",
            a.num_operations(),
            b.num_operations()
        ));
    }
    let span = a.max_table_length().max(b.max_table_length()).max(1);
    let ii = span + 1;

    if let Some(d) = differential_pair(
        &mut DiscreteModule::new(a),
        &mut DiscreteModule::new(b),
        a.num_operations(),
        span,
        trace_seed,
    ) {
        return Some(format!("discrete: {d}"));
    }
    if a.num_resources() <= 64 && b.num_resources() <= 64 {
        let la = WordLayout::widest(64, a.num_resources());
        let lb = WordLayout::widest(64, b.num_resources());
        if let Some(d) = differential_pair(
            &mut BitvecModule::new(a, la),
            &mut BitvecModule::new(b, lb),
            a.num_operations(),
            span,
            trace_seed,
        ) {
            return Some(format!("bitvec: {d}"));
        }
        if let Some(d) = differential_pair(
            &mut ModuloBitvecModule::new(a, ii, la),
            &mut ModuloBitvecModule::new(b, ii, lb),
            a.num_operations(),
            span,
            trace_seed,
        ) {
            return Some(format!("modulo-bitvec (ii {ii}): {d}"));
        }
    }
    if let Some(d) = differential_pair(
        &mut ModuloDiscreteModule::new(a, ii),
        &mut ModuloDiscreteModule::new(b, ii),
        a.num_operations(),
        span,
        trace_seed,
    ) {
        return Some(format!("modulo-discrete (ii {ii}): {d}"));
    }
    None
}

/// Replays one probe sweep plus one random walk through a pair of
/// modules, reporting the first divergent answer.
fn differential_pair<QA, QB>(
    a: &mut QA,
    b: &mut QB,
    num_ops: usize,
    span: u32,
    trace_seed: u64,
) -> Option<String>
where
    QA: ContentionQuery,
    QB: ContentionQuery,
{
    // ---- Phase 1: pairwise probe sweep. Assign each operation alone at
    // cycle `span`, then read every latency offset back out via `check`.
    for x in 0..num_ops {
        let x = OpId(x as u32);
        let (ca, cb) = (a.check(x, span), b.check(x, span));
        if ca != cb {
            return Some(format!("check({x}, {span}) on empty table: {ca} vs {cb}"));
        }
        if !ca {
            continue; // does not fit (modulo); agreed by both.
        }
        a.assign(OpInstance(0), x, span);
        b.assign(OpInstance(0), x, span);
        for y in 0..num_ops {
            let y = OpId(y as u32);
            for t in 0..=2 * span {
                let (ra, rb) = (a.check(y, t), b.check(y, t));
                if ra != rb {
                    a.free(OpInstance(0), x, span);
                    b.free(OpInstance(0), x, span);
                    return Some(format!("check({y}, {t}) against {x}@{span}: {ra} vs {rb}"));
                }
            }
        }
        a.free(OpInstance(0), x, span);
        b.free(OpInstance(0), x, span);
    }

    // ---- Phase 2: random walk exercising assign_free/free paths (the
    // optimistic→update transition, owner rebuilds, evictions).
    let mut rng = SplitMix64::new(trace_seed);
    let mut live: Vec<(OpInstance, OpId, u32)> = Vec::new();
    let mut next_inst = 1u32;
    for step in 0..400 {
        let op = OpId(rng.index(num_ops) as u32);
        let cycle = rng.below(u64::from(3 * span)) as u32;
        match rng.below(4) {
            0 => {
                let (ra, rb) = (a.check(op, cycle), b.check(op, cycle));
                if ra != rb {
                    return Some(format!("step {step}: check({op}, {cycle}): {ra} vs {rb}"));
                }
            }
            1 => {
                let (ra, rb) = (a.check(op, cycle), b.check(op, cycle));
                if ra != rb {
                    return Some(format!("step {step}: check({op}, {cycle}): {ra} vs {rb}"));
                }
                if ra {
                    let inst = OpInstance(next_inst);
                    next_inst += 1;
                    a.assign(inst, op, cycle);
                    b.assign(inst, op, cycle);
                    live.push((inst, op, cycle));
                }
            }
            2 => {
                // Modulo modules refuse ops that do not fit; only
                // assign_free where both sides agree placement is
                // possible on an empty table (fit is matrix-determined).
                let inst = OpInstance(next_inst);
                next_inst += 1;
                let mut ea = a.assign_free(inst, op, cycle);
                let mut eb = b.assign_free(inst, op, cycle);
                ea.sort_unstable();
                eb.sort_unstable();
                if ea != eb {
                    return Some(format!(
                        "step {step}: assign_free({op}, {cycle}) evicted {ea:?} vs {eb:?}"
                    ));
                }
                live.retain(|(i, _, _)| !ea.contains(i));
                live.push((inst, op, cycle));
            }
            _ => {
                if !live.is_empty() {
                    let (inst, lop, lcycle) = live.swap_remove(rng.index(live.len()));
                    a.free(inst, lop, lcycle);
                    b.free(inst, lop, lcycle);
                }
            }
        }
        if a.num_scheduled() != b.num_scheduled() {
            return Some(format!(
                "step {step}: scheduled counts diverged: {} vs {}",
                a.num_scheduled(),
                b.num_scheduled()
            ));
        }
    }
    None
}

/// Detects a corrupted bitvector word by differencing the corrupted
/// [`BitvecModule`] against a clean [`DiscreteModule`] over the same
/// machine — the two representations must answer identically, so a
/// phantom reservation in the packed words is a divergent `check`.
fn corrupt_word_divergence(
    m: &MachineDescription,
    cycle: u32,
    resource: u32,
) -> Option<String> {
    if m.num_resources() > 64 {
        return None;
    }
    let layout = WordLayout::widest(64, m.num_resources());
    let mut corrupted = BitvecModule::new(m, layout);
    let nr = m.num_resources() as u32;
    let word = (cycle / layout.k) as usize;
    let mask = 1u64 << ((cycle % layout.k) * nr + resource);
    corrupted.corrupt_word(word, mask);
    let mut clean = DiscreteModule::new(m);

    // `assign`/`free` on a corrupted table would violate the module's
    // internal invariants, so the replay is a pure `check` sweep — the
    // operation the corruption was derived from probes the flipped cell
    // directly, guaranteeing a hit if the bitvector math is right.
    let horizon = cycle + m.max_table_length() + 1;
    for (id, _) in m.ops() {
        for t in 0..=horizon {
            let (rc, rd) = (corrupted.check(id, t), clean.check(id, t));
            if rc != rd {
                return Some(format!(
                    "check({id}, {t}) sees the corrupted word: {rc} vs clean {rd}"
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::{mutate, MutationOp};
    use rmd_machine::models::example_machine;

    #[test]
    fn identical_machines_never_diverge() {
        let m = example_machine();
        assert_eq!(differential_machines(&m, &m, 17), None);
    }

    #[test]
    fn corrupt_word_is_always_caught() {
        let m = example_machine();
        for seed in 0..16 {
            let mu = mutate(&m, MutationOp::CorruptWord, seed).expect("applies");
            assert!(
                trace_oracle(&m, &mu, seed).is_some(),
                "seed {seed}: {} survived",
                mu.what
            );
        }
    }

    #[test]
    fn dropped_usage_diverges_under_the_trace() {
        let m = example_machine();
        let mut killed = 0;
        let mut semantic = 0;
        for seed in 0..16 {
            if let Some(mu) = mutate(&m, MutationOp::DropUsage, seed) {
                if mu.is_semantic(&m) {
                    semantic += 1;
                    if trace_oracle(&m, &mu, seed).is_some() {
                        killed += 1;
                    }
                }
            }
        }
        assert!(semantic > 0);
        assert_eq!(killed, semantic);
    }
}
