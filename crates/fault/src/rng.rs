//! A tiny deterministic PRNG for the harness.
//!
//! The harness must be seed-reproducible across platforms and build in
//! an air-gapped environment, so it carries its own splitmix64 instead
//! of depending on the `rand` crate. Splitmix64 is the standard seeding
//! generator of the xoshiro family: a 64-bit counter with an invertible
//! finalizer, full period, and no state beyond one word.

/// Splitmix64: one `u64` of state, full 2^64 period.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n`. Returns 0 for `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift range reduction; bias is < 2^-32 for the
            // small ranges the harness draws from.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }

    /// A uniform index into a slice of `len` elements (`len > 0`).
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Mixes an operator tag and a per-mutant counter into a base seed so
/// each (operator, index) pair gets an independent stream.
pub fn mix_seed(base: u64, tag: u64, index: u64) -> u64 {
    let mut r = SplitMix64::new(base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    r.next_u64() ^ SplitMix64::new(index.wrapping_add(0xA076_1D64_78BD_642F)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn mix_seed_separates_operators_and_indices() {
        assert_ne!(mix_seed(0, 1, 0), mix_seed(0, 2, 0));
        assert_ne!(mix_seed(0, 1, 0), mix_seed(0, 1, 1));
        assert_eq!(mix_seed(3, 1, 2), mix_seed(3, 1, 2));
    }
}
