//! Tier-1 acceptance tests for the fault-injection harness: the
//! mutation-kill score must be 100% (no surviving semantic mutants, no
//! wrongly-killed neutral mutants) on the paper's example machine, the
//! Cydra 5 subset, and the MIPS R3000 model — and `reduce_with_fallback`
//! must never hand back an unverified reduction.

use rmd_core::{reduce_with_fallback, verify_equivalence, Objective, ReduceOptions};
use rmd_fault::{audit_model, AuditReport};
use rmd_machine::models::{cydra5_subset, example_machine, mips_r3000};
use rmd_machine::MachineDescription;

const SEEDS_PER_OPERATOR: u64 = 16;
const BASE_SEED: u64 = 0xE1C4_B0A7;

fn assert_perfect(machine: &MachineDescription) -> AuditReport {
    let report = audit_model(machine, SEEDS_PER_OPERATOR, BASE_SEED);
    assert!(
        report.total_semantic() > 0,
        "{}: no semantic mutants generated — audit exercised nothing",
        report.model
    );
    assert!(
        report.is_perfect(),
        "{}: kill score {:.1}% — report:\n{}",
        report.model,
        report.kill_score() * 100.0,
        report.render()
    );
    report
}

#[test]
fn example_machine_kill_score_is_100_percent() {
    let report = assert_perfect(&example_machine());
    assert_eq!(report.kill_score(), 1.0);
}

#[test]
fn cydra5_subset_kill_score_is_100_percent() {
    let report = assert_perfect(&cydra5_subset());
    assert_eq!(report.kill_score(), 1.0);
}

#[test]
fn mips_r3000_kill_score_is_100_percent() {
    let report = assert_perfect(&mips_r3000());
    assert_eq!(report.kill_score(), 1.0);
}

#[test]
fn fallback_reduction_is_always_verified() {
    for machine in [example_machine(), cydra5_subset(), mips_r3000()] {
        for objective in [
            Objective::ResUses,
            Objective::KCycleWord { k: 4 },
            Objective::KCycleWord { k: 8 },
        ] {
            let fb = reduce_with_fallback(&machine, objective, &ReduceOptions::default());
            // Whatever path the reduction took — success or fallback to
            // the original tables — the result must pass the exact
            // equivalence check.
            verify_equivalence(&machine, &fb.machine).expect("fallback result must be equivalent");
        }
    }
}
