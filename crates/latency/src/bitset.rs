//! A growable bitset over `usize` indices, backed by `u64` blocks.

use core::fmt;

/// A dynamically sized bitset.
///
/// Used pervasively for latency sets, coverage tracking during resource
/// selection, and automaton state encodings.
///
/// # Example
///
/// ```
/// use rmd_latency::BitSet;
///
/// let mut s = BitSet::new();
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
}

// Equality, ordering and hashing ignore trailing zero blocks, so two sets
// with the same elements are equal regardless of how they were built.
impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.blocks.len().max(other.blocks.len());
        (0..n).all(|i| {
            self.blocks.get(i).copied().unwrap_or(0) == other.blocks.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for BitSet {}

impl core::hash::Hash for BitSet {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        let last = self
            .blocks
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        self.blocks[..last].hash(state);
    }
}

impl BitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bitset with room for indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let block = i / 64;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << (i % 64);
        let newly = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        newly
    }

    /// Removes `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let block = i / 64;
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << (i % 64);
        let was = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        was
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        self.blocks
            .get(i / 64)
            .is_some_and(|b| b & (1u64 << (i % 64)) != 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, a) in self.blocks.iter_mut().enumerate() {
            *a &= other.blocks.get(i).copied().unwrap_or(0);
        }
    }

    /// `self −= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .enumerate()
            .all(|(i, &b)| b & !other.blocks.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(&a, &b)| a & b == 0)
    }

    /// Iterates over elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the elements of a [`BitSet`], ascending.
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * 64 + tz);
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_blocks() {
        let mut s = BitSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(1000);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 1000]);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [2, 3, 4].into_iter().collect();

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn subset_and_disjoint_handle_length_mismatch() {
        let small: BitSet = [1].into_iter().collect();
        let big: BitSet = [1, 100].into_iter().collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        let far: BitSet = [200].into_iter().collect();
        assert!(big.is_disjoint(&far));
        assert!(!big.is_disjoint(&small));
    }

    #[test]
    fn intersect_with_shorter_other_clears_tail() {
        let mut big: BitSet = [1, 100].into_iter().collect();
        let small: BitSet = [1].into_iter().collect();
        big.intersect_with(&small);
        assert_eq!(big.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn debug_formats_as_set() {
        let s: BitSet = [1, 9].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 9}");
    }

    #[test]
    fn equality_ignores_trailing_zero_blocks() {
        let mut a = BitSet::with_capacity(1000);
        a.insert(3);
        let b: BitSet = [3].into_iter().collect();
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        a.hash(&mut ha);
        let mut hb = DefaultHasher::new();
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }
}
