//! Operation classes: grouping operations with identical scheduling
//! constraints.

use crate::matrix::ForbiddenMatrix;
use core::fmt;
use rmd_machine::{MachineDescription, MachineError, OpId};
use std::collections::HashMap;

/// Identifies an operation class within a [`ClassPartition`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Returns the id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A partition of a machine's operations into *operation classes*
/// (paper §3, after Proebsting & Fraser): `X` and `Y` share a class iff
/// `F[X][Z] = F[Y][Z]` and `F[Z][X] = F[Z][Y]` for every operation `Z`.
///
/// Classes are what the reduction actually operates on — the paper's
/// tables all report per-class figures (e.g. 52 classes for the Cydra 5's
/// 152 usage patterns).
///
/// # Example
///
/// ```
/// use rmd_machine::models::cydra5;
/// use rmd_latency::{ClassPartition, ForbiddenMatrix};
///
/// let m = cydra5();
/// let f = ForbiddenMatrix::compute(&m);
/// let classes = ClassPartition::compute(&m, &f);
/// assert!(classes.num_classes() <= m.num_operations());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassPartition {
    class_of: Vec<ClassId>,
    members: Vec<Vec<OpId>>,
}

impl ClassPartition {
    /// Computes the class partition of `machine` from its forbidden
    /// matrix.
    ///
    /// Classes are numbered in order of first appearance, so the
    /// representative of class `c` is its lowest-numbered member.
    pub fn compute(machine: &MachineDescription, f: &ForbiddenMatrix) -> Self {
        let n = machine.num_operations();
        assert_eq!(n, f.num_ops(), "matrix must match machine");
        // Signature of X: its entire row and column of F.
        let mut sig_to_class: HashMap<Vec<crate::LatencySet>, ClassId> = HashMap::new();
        let mut class_of = Vec::with_capacity(n);
        let mut members: Vec<Vec<OpId>> = Vec::new();
        for x in 0..n {
            let mut sig = Vec::with_capacity(2 * n);
            for z in 0..n {
                sig.push(f.get_idx(x, z).clone());
            }
            for z in 0..n {
                sig.push(f.get_idx(z, x).clone());
            }
            let next = ClassId(members.len() as u32);
            let id = *sig_to_class.entry(sig).or_insert(next);
            if id == next {
                members.push(Vec::new());
            }
            members[id.index()].push(OpId(x as u32));
            class_of.push(id);
        }
        ClassPartition { class_of, members }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.members.len()
    }

    /// The class of operation `op`.
    #[inline]
    pub fn class_of(&self, op: OpId) -> ClassId {
        self.class_of[op.index()]
    }

    /// The operations belonging to `class`, in id order.
    pub fn members(&self, class: ClassId) -> &[OpId] {
        &self.members[class.index()]
    }

    /// The representative (lowest-id member) of `class`.
    pub fn representative(&self, class: ClassId) -> OpId {
        self.members[class.index()][0]
    }

    /// Iterates over `(ClassId, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &[OpId])> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| (ClassId(i as u32), m.as_slice()))
    }

    /// Builds the *class machine*: one operation per class, carrying the
    /// representative's reservation table and the summed weight of the
    /// class members. Its forbidden matrix equals the class-level view of
    /// the original machine's, so all reduction work can run on it.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from machine assembly (which cannot
    /// occur for a partition computed from a valid machine).
    pub fn class_machine(
        &self,
        machine: &MachineDescription,
    ) -> Result<MachineDescription, MachineError> {
        let mut b = rmd_machine::MachineBuilder::new(format!("{}-classes", machine.name()));
        for r in machine.resources() {
            b.resource(r.name().to_owned());
        }
        for (c, members) in self.iter() {
            let rep = machine.operation(self.representative(c));
            let weight: f64 = members
                .iter()
                .map(|&m| machine.operation(m).weight())
                .sum();
            let mut ob = b.operation(rep.name().to_owned()).weight(weight);
            for u in rep.table().usages() {
                ob = ob.usage(u.resource, u.cycle);
            }
            ob.finish();
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::{all_machines, cydra5};
    use rmd_machine::MachineBuilder;

    #[test]
    fn identical_patterns_share_a_class() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        let s = b.resource("s");
        b.operation("x1").usage(r, 0).finish();
        b.operation("x2").usage(r, 0).finish();
        b.operation("y").usage(s, 0).finish();
        let m = b.build().unwrap();
        let f = ForbiddenMatrix::compute(&m);
        let p = ClassPartition::compute(&m, &f);
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.class_of(OpId(0)), p.class_of(OpId(1)));
        assert_ne!(p.class_of(OpId(0)), p.class_of(OpId(2)));
        assert_eq!(p.members(p.class_of(OpId(0))), &[OpId(0), OpId(1)]);
    }

    #[test]
    fn different_latency_behaviour_splits_classes() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("short").usage(r, 0).finish();
        b.operation("long").usage(r, 0).usage(r, 1).finish();
        let m = b.build().unwrap();
        let f = ForbiddenMatrix::compute(&m);
        let p = ClassPartition::compute(&m, &f);
        assert_eq!(p.num_classes(), 2);
    }

    #[test]
    fn cydra_collapses_equal_patterns() {
        // iadd/isub/iand/ior share a usage pattern; fadd/fsub/fmax too.
        let m = cydra5();
        let f = ForbiddenMatrix::compute(&m);
        let p = ClassPartition::compute(&m, &f);
        assert!(p.num_classes() < m.num_operations());
        let iadd = p.class_of(m.op_by_name("iadd").unwrap());
        let ior = p.class_of(m.op_by_name("ior").unwrap());
        assert_eq!(iadd, ior);
        let fadd = p.class_of(m.op_by_name("fadd").unwrap());
        assert_ne!(iadd, fadd);
    }

    #[test]
    fn class_machine_preserves_class_matrix() {
        for m in all_machines() {
            let f = ForbiddenMatrix::compute(&m);
            let p = ClassPartition::compute(&m, &f);
            let cm = p.class_machine(&m).unwrap();
            let cf = ForbiddenMatrix::compute(&cm);
            // Each class-machine cell must equal the original cell of the
            // corresponding representatives.
            for (ci, _) in p.iter() {
                for (cj, _) in p.iter() {
                    let ri = p.representative(ci);
                    let rj = p.representative(cj);
                    assert_eq!(
                        cf.get_idx(ci.index(), cj.index()),
                        f.get(ri, rj),
                        "{}: class cell ({ci}, {cj})",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn class_weights_sum_members() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("x1").weight(2.0).usage(r, 0).finish();
        b.operation("x2").weight(3.0).usage(r, 0).finish();
        let m = b.build().unwrap();
        let f = ForbiddenMatrix::compute(&m);
        let p = ClassPartition::compute(&m, &f);
        let cm = p.class_machine(&m).unwrap();
        assert_eq!(cm.num_operations(), 1);
        assert!((cm.operations()[0].weight() - 5.0).abs() < 1e-12);
    }
}
