//! Sets of (possibly negative) latencies.

use crate::bitset::BitSet;
use core::fmt;

/// A set of signed latencies, such as one cell `F[X][Y]` of the forbidden
/// latency matrix.
///
/// Backed by two bitsets (negative and nonnegative halves), so membership
/// tests during compatibility checking — the hot loop of Algorithm 1 — are
/// O(1).
///
/// # Example
///
/// ```
/// use rmd_latency::LatencySet;
///
/// let mut s = LatencySet::new();
/// s.insert(-2);
/// s.insert(0);
/// s.insert(3);
/// assert!(s.contains(-2));
/// assert!(!s.contains(2));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![-2, 0, 3]);
/// assert_eq!(s.mirrored().iter().collect::<Vec<_>>(), vec![-3, 0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LatencySet {
    /// Bit `i` set ⇔ latency `-(i+1)` present.
    neg: BitSet,
    /// Bit `i` set ⇔ latency `i` present.
    nonneg: BitSet,
}

impl LatencySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `f`; returns `true` if newly inserted.
    pub fn insert(&mut self, f: i32) -> bool {
        if f < 0 {
            self.neg.insert((-(i64::from(f)) - 1) as usize)
        } else {
            self.nonneg.insert(f as usize)
        }
    }

    /// Tests membership of `f`.
    #[inline]
    pub fn contains(&self, f: i32) -> bool {
        if f < 0 {
            self.neg.contains((-(i64::from(f)) - 1) as usize)
        } else {
            self.nonneg.contains(f as usize)
        }
    }

    /// Number of latencies in the set.
    pub fn len(&self) -> usize {
        self.neg.len() + self.nonneg.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.neg.is_empty() && self.nonneg.is_empty()
    }

    /// Number of *nonnegative* latencies — the count the paper reports
    /// (negative latencies are redundant mirrors).
    pub fn len_nonneg(&self) -> usize {
        self.nonneg.len()
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &LatencySet) {
        self.neg.union_with(&other.neg);
        self.nonneg.union_with(&other.nonneg);
    }

    /// Whether every latency in `self` is in `other`.
    pub fn is_subset(&self, other: &LatencySet) -> bool {
        self.neg.is_subset(&other.neg) && self.nonneg.is_subset(&other.nonneg)
    }

    /// The mirror image `{ -f | f ∈ self }` — by the paper's symmetry
    /// property, `F[Y][X]` is the mirror of `F[X][Y]`.
    pub fn mirrored(&self) -> LatencySet {
        let mut m = LatencySet::new();
        for f in self.iter() {
            m.insert(-f);
        }
        m
    }

    /// Iterates over latencies in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = i32> + '_ {
        // Negative half descends as bit index ascends, so collect/reverse.
        let mut negs: Vec<i32> = self.neg.iter().map(|i| -(i as i32) - 1).collect();
        negs.reverse();
        negs.into_iter().chain(self.nonneg.iter().map(|i| i as i32))
    }

    /// Iterates over the nonnegative latencies in ascending order.
    pub fn iter_nonneg(&self) -> impl Iterator<Item = i32> + '_ {
        self.nonneg.iter().map(|i| i as i32)
    }

    /// The largest latency, if any.
    pub fn max(&self) -> Option<i32> {
        self.iter().last()
    }
}

impl FromIterator<i32> for LatencySet {
    fn from_iter<I: IntoIterator<Item = i32>>(iter: I) -> Self {
        let mut s = LatencySet::new();
        for f in iter {
            s.insert(f);
        }
        s
    }
}

impl fmt::Debug for LatencySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for LatencySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, x) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_both_signs() {
        let mut s = LatencySet::new();
        assert!(s.insert(0));
        assert!(s.insert(-1));
        assert!(!s.insert(-1));
        assert!(s.contains(0));
        assert!(s.contains(-1));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_is_ascending() {
        let s: LatencySet = [3, -5, 0, -1, 7].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![-5, -1, 0, 3, 7]);
        assert_eq!(s.iter_nonneg().collect::<Vec<_>>(), vec![0, 3, 7]);
        assert_eq!(s.max(), Some(7));
    }

    #[test]
    fn mirrored_negates() {
        let s: LatencySet = [-2, 0, 5].into_iter().collect();
        let m = s.mirrored();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![-5, 0, 2]);
        assert_eq!(m.mirrored(), s);
    }

    #[test]
    fn subset_and_union() {
        let a: LatencySet = [-1, 2].into_iter().collect();
        let b: LatencySet = [-1, 0, 2, 3].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, b);
    }

    #[test]
    fn len_nonneg_excludes_mirrors() {
        let s: LatencySet = [-3, -1, 0, 1, 3].into_iter().collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.len_nonneg(), 3);
    }

    #[test]
    fn display_is_compact() {
        let s: LatencySet = [-1, 0, 2].into_iter().collect();
        assert_eq!(s.to_string(), "{-1,0,2}");
        assert_eq!(LatencySet::new().to_string(), "{}");
    }
}
