//! Forbidden-latency machinery (paper §3, step 1).
//!
//! Given a machine description, two operations `X` and `Y` scheduled at
//! times `t_X` and `t_Y` conflict iff some shared resource is used
//! simultaneously. The *forbidden latency set*
//! `F[X][Y] = { y − x | resource i, x ∈ X_i, y ∈ Y_i }` collects every
//! initiation interval `j` such that X may not issue `j` cycles after Y.
//! This crate computes the full [`ForbiddenMatrix`] of those sets,
//! partitions operations into classes with identical constraint behaviour
//! ([`ClassPartition`]), and provides the supporting [`BitSet`] and
//! [`LatencySet`] containers used throughout the reduction pipeline.
//!
//! # Example
//!
//! ```
//! use rmd_machine::models::example_machine;
//! use rmd_latency::ForbiddenMatrix;
//!
//! let m = example_machine();
//! let f = ForbiddenMatrix::compute(&m);
//! let a = m.op_by_name("A").unwrap();
//! let b = m.op_by_name("B").unwrap();
//! // B may not issue 1 cycle after A:
//! assert!(f.get(b, a).contains(1));
//! // ... and symmetrically A may not issue -1 cycles after B:
//! assert!(f.get(a, b).contains(-1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitset;
mod classes;
mod latency_set;
mod matrix;

pub use bitset::BitSet;
pub use classes::{ClassId, ClassPartition};
pub use latency_set::LatencySet;
pub use matrix::ForbiddenMatrix;
