//! The forbidden-latency matrix.

use crate::latency_set::LatencySet;
use core::fmt;
use rmd_machine::{MachineDescription, OpId};

/// The matrix of forbidden latency sets for all operation pairs
/// (paper §3, Equation 1).
///
/// `get(x, y)` is `F[X][Y] = { j | X may not issue j cycles after Y }`.
/// Two invariants hold by construction and are enforced in tests:
///
/// * `0 ∈ F[X][X]` for every operation that uses any resource;
/// * `f ∈ F[X][Y] ⇔ −f ∈ F[Y][X]`.
///
/// The reduction's formal goal (paper §3) is to synthesize a machine whose
/// forbidden-latency matrix is **identical** to the original's; matrix
/// equality (`PartialEq`) is therefore the acceptance test for the entire
/// pipeline.
#[derive(Clone, PartialEq, Eq)]
pub struct ForbiddenMatrix {
    n: usize,
    /// Row-major: `sets[x * n + y] = F[X][Y]`.
    sets: Vec<LatencySet>,
}

impl ForbiddenMatrix {
    /// Computes the forbidden-latency matrix of `machine`.
    ///
    /// For each resource shared by a pair of operations the latency
    /// `y − x` is forbidden for every usage pair `(x, y)`; this runs in
    /// time linear in the number of colliding usage pairs.
    pub fn compute(machine: &MachineDescription) -> Self {
        let n = machine.num_operations();
        let mut sets = vec![LatencySet::new(); n * n];
        // Group usage cycles by resource for each op once.
        let nr = machine.num_resources();
        let mut by_resource: Vec<Vec<(usize, Vec<i64>)>> = vec![Vec::new(); nr];
        for (id, op) in machine.ops() {
            for r in op.table().resources() {
                let cycles = op
                    .table()
                    .usage_set(r)
                    .into_iter()
                    .map(i64::from)
                    .collect();
                by_resource[r.index()].push((id.index(), cycles));
            }
        }
        for users in &by_resource {
            for (xi, xcycles) in users {
                for (yi, ycycles) in users {
                    let set = &mut sets[xi * n + yi];
                    for &x in xcycles {
                        for &y in ycycles {
                            let d = y - x;
                            set.insert(d as i32);
                        }
                    }
                }
            }
        }
        ForbiddenMatrix { n, sets }
    }

    /// Builds a matrix directly from per-pair latency sets, row-major:
    /// `sets[x * n + y] = F[X][Y]`.
    ///
    /// Unlike [`compute`](Self::compute), nothing guarantees the mirror
    /// or self-contention invariants here — this exists precisely so
    /// diagnostics ([`check_symmetry`](Self::check_symmetry)) can be
    /// exercised against matrices that violate them.
    ///
    /// # Panics
    ///
    /// Panics unless `sets.len() == n * n`.
    pub fn from_sets(n: usize, sets: Vec<LatencySet>) -> Self {
        assert_eq!(sets.len(), n * n, "need one latency set per op pair");
        ForbiddenMatrix { n, sets }
    }

    /// Number of operations the matrix covers.
    pub fn num_ops(&self) -> usize {
        self.n
    }

    /// The forbidden latency set `F[X][Y]`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn get(&self, x: OpId, y: OpId) -> &LatencySet {
        &self.sets[x.index() * self.n + y.index()]
    }

    /// Like [`get`](Self::get) but with raw indices, for inner loops.
    #[inline]
    pub fn get_idx(&self, x: usize, y: usize) -> &LatencySet {
        &self.sets[x * self.n + y]
    }

    /// Whether `X` may not issue `f` cycles after `Y`.
    #[inline]
    pub fn forbids(&self, x: OpId, f: i32, y: OpId) -> bool {
        self.get(x, y).contains(f)
    }

    /// Total number of nonnegative forbidden latencies over all pairs —
    /// the count the paper reports (e.g. 10223 for the Cydra 5).
    pub fn total_nonneg(&self) -> usize {
        self.sets.iter().map(LatencySet::len_nonneg).sum()
    }

    /// The largest forbidden latency anywhere in the matrix.
    pub fn max_latency(&self) -> i32 {
        self.sets.iter().filter_map(LatencySet::max).max().unwrap_or(0)
    }

    /// Verifies the mirror invariant `f ∈ F[X][Y] ⇔ −f ∈ F[Y][X]`;
    /// returns the first violating triple if any.
    pub fn check_symmetry(&self) -> Result<(), (usize, usize, i32)> {
        for x in 0..self.n {
            for y in 0..self.n {
                for f in self.get_idx(x, y).iter() {
                    if !self.get_idx(y, x).contains(-f) {
                        return Err((x, y, f));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for ForbiddenMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ForbiddenMatrix ({} ops):", self.n)?;
        for x in 0..self.n {
            for y in 0..self.n {
                let s = self.get_idx(x, y);
                if !s.is_empty() {
                    writeln!(f, "  F[{x}][{y}] = {s}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::{all_machines, example_machine};

    #[test]
    fn example_machine_matches_figure_1b() {
        let m = example_machine();
        let f = ForbiddenMatrix::compute(&m);
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        assert_eq!(f.get(a, a).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(f.get(b, a).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(f.get(a, b).iter().collect::<Vec<_>>(), vec![-1]);
        assert_eq!(
            f.get(b, b).iter().collect::<Vec<_>>(),
            vec![-3, -2, -1, 0, 1, 2, 3]
        );
        // 0∈F[A][A], 1∈F[B][A], 0..3∈F[B][B]: six nonnegative latencies.
        assert_eq!(f.total_nonneg(), 6);
        assert_eq!(f.max_latency(), 3);
    }

    #[test]
    fn matrix_agrees_with_direct_collision_test() {
        for m in all_machines() {
            let f = ForbiddenMatrix::compute(&m);
            let bound = i64::from(m.max_table_length()) + 2;
            for (x, xop) in m.ops() {
                for (y, yop) in m.ops() {
                    for j in -bound..=bound {
                        let collide = yop.table().collides_at(xop.table(), j);
                        assert_eq!(
                            f.forbids(x, j as i32, y),
                            collide,
                            "{}: F[{}][{}] at {}",
                            m.name(),
                            xop.name(),
                            yop.name(),
                            j
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn symmetry_holds_for_all_models() {
        for m in all_machines() {
            let f = ForbiddenMatrix::compute(&m);
            assert_eq!(f.check_symmetry(), Ok(()), "{}", m.name());
        }
    }

    #[test]
    fn self_contention_zero_always_present() {
        for m in all_machines() {
            let f = ForbiddenMatrix::compute(&m);
            for (x, _) in m.ops() {
                assert!(f.forbids(x, 0, x), "{}: 0∈F[X][X]", m.name());
            }
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use rmd_machine::MachineBuilder;

    #[test]
    fn debug_lists_nonempty_cells_only() {
        let mut b = MachineBuilder::new("m");
        let r0 = b.resource("a");
        let r1 = b.resource("b");
        b.operation("x").usage(r0, 0).finish();
        b.operation("y").usage(r1, 0).finish();
        let f = ForbiddenMatrix::compute(&b.build().unwrap());
        let s = format!("{f:?}");
        assert!(s.contains("F[0][0]"));
        assert!(!s.contains("F[0][1]"), "{s}");
    }

    #[test]
    fn total_nonneg_counts_only_one_orientation() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish();
        b.operation("y").usage(r, 2).finish();
        let f = ForbiddenMatrix::compute(&b.build().unwrap());
        // Latencies: 0∈F[x][x], 0∈F[y][y], 2∈F[x][y], −2∈F[y][x].
        assert_eq!(f.total_nonneg(), 3);
        assert_eq!(f.max_latency(), 2);
    }

    #[test]
    fn get_idx_matches_get() {
        let m = rmd_machine::models::example_machine();
        let f = ForbiddenMatrix::compute(&m);
        for x in 0..f.num_ops() {
            for y in 0..f.num_ops() {
                assert_eq!(
                    f.get_idx(x, y),
                    f.get(rmd_machine::OpId(x as u32), rmd_machine::OpId(y as u32))
                );
            }
        }
    }
}
