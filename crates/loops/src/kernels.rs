//! Livermore-style kernel dependence-graph templates.
//!
//! Each template builds the dependence graph of one classic numeric
//! inner loop, parameterized by an unroll factor so the suite covers the
//! paper's size range. Memory ports and address units alternate between
//! unrolled copies the way a VLIW compiler would balance them.

use crate::opset::OpSet;
use rmd_sched::{DepGraph, DepKind, NodeId};

/// Adds the loop-control branch (every Cydra modulo loop has one
/// `brtop`).
fn add_brtop(g: &mut DepGraph, ops: &OpSet) -> NodeId {
    let b = g.add_node(ops.brtop);
    // brtop recurs with itself: one branch per iteration.
    g.add_edge(b, b, 1, 1, DepKind::Output);
    b
}

/// An address-increment chain feeding a memory op: `a += stride` each
/// iteration (a distance-1 recurrence on the address unit).
fn add_addr(g: &mut DepGraph, ops: &OpSet, unit: usize) -> NodeId {
    let a = g.add_node(ops.aadd[unit % 2]);
    g.add_edge(a, a, ops.latency(ops.aadd[unit % 2]), 1, DepKind::Flow);
    a
}

fn flow(g: &mut DepGraph, ops: &OpSet, from: NodeId, to: NodeId) {
    let d = ops.latency(g.op(from));
    g.add_edge(from, to, d, 0, DepKind::Flow);
}

/// LFK 1 (hydro fragment): `x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])`.
pub fn hydro(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    for u in 0..unroll.max(1) {
        let ay = add_addr(&mut g, ops, u);
        let az = add_addr(&mut g, ops, u + 1);
        let ly = g.add_node(ops.load[u % 2]);
        let lz0 = g.add_node(ops.load[(u + 1) % 2]);
        let lz1 = g.add_node(ops.load[u % 2]);
        flow(&mut g, ops, ay, ly);
        flow(&mut g, ops, az, lz0);
        flow(&mut g, ops, az, lz1);
        let m0 = g.add_node(ops.fmul); // r*z[k+10]
        let m1 = g.add_node(ops.fmul); // t*z[k+11]
        flow(&mut g, ops, lz0, m0);
        flow(&mut g, ops, lz1, m1);
        let s0 = g.add_node(ops.fadd);
        flow(&mut g, ops, m0, s0);
        flow(&mut g, ops, m1, s0);
        let m2 = g.add_node(ops.fmul); // y[k]*(...)
        flow(&mut g, ops, ly, m2);
        flow(&mut g, ops, s0, m2);
        let s1 = g.add_node(ops.fadd); // q + ...
        flow(&mut g, ops, m2, s1);
        let st = g.add_node(ops.store[u % 2]);
        flow(&mut g, ops, s1, st);
        flow(&mut g, ops, ay, st);
    }
    g
}

/// LFK 3 (inner product): `q += z[k] * x[k]` — a reduction recurrence.
/// Unrolled copies use independent partial-sum accumulators (the modulo
/// scheduling idiom), so the recurrence stays one fadd deep.
pub fn inner_product(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let lx = g.add_node(ops.load[u % 2]);
        let lz = g.add_node(ops.load[(u + 1) % 2]);
        flow(&mut g, ops, a, lx);
        flow(&mut g, ops, a, lz);
        let m = g.add_node(ops.fmul);
        flow(&mut g, ops, lx, m);
        flow(&mut g, ops, lz, m);
        let s = g.add_node(ops.fadd);
        flow(&mut g, ops, m, s);
        // Each partial sum carries across iterations independently.
        g.add_edge(s, s, ops.latency(ops.fadd), 1, DepKind::Flow);
    }
    g
}

/// LFK 5 (tri-diagonal elimination): `x[i] = z[i] * (y[i] - x[i-1])` — a
/// tight first-order recurrence through an add and a multiply.
pub fn tridiag(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    let mut carried: Option<NodeId> = None;
    let mut first_sub: Option<NodeId> = None;
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let ly = g.add_node(ops.load[u % 2]);
        let lz = g.add_node(ops.load[(u + 1) % 2]);
        flow(&mut g, ops, a, ly);
        flow(&mut g, ops, a, lz);
        let sub = g.add_node(ops.fadd); // y[i] - x[i-1]
        flow(&mut g, ops, ly, sub);
        if let Some(prev) = carried {
            flow(&mut g, ops, prev, sub);
        }
        let mul = g.add_node(ops.fmul);
        flow(&mut g, ops, lz, mul);
        flow(&mut g, ops, sub, mul);
        let st = g.add_node(ops.store[u % 2]);
        flow(&mut g, ops, mul, st);
        if first_sub.is_none() {
            first_sub = Some(sub);
        }
        carried = Some(mul);
    }
    // x[i-1] crosses the iteration boundary.
    g.add_edge(
        carried.expect("set"),
        first_sub.expect("set"),
        ops.latency(ops.fmul),
        1,
        DepKind::Flow,
    );
    g
}

/// LFK 7 (equation of state): a wide expression tree, no recurrence —
/// high ILP, resource-bound.
pub fn state_eq(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let mut terms = Vec::new();
        for i in 0..4 {
            let l = g.add_node(ops.load[(u + i) % 2]);
            flow(&mut g, ops, a, l);
            let m = g.add_node(ops.fmul);
            flow(&mut g, ops, l, m);
            terms.push(m);
        }
        // Balanced reduction tree of fadds.
        while terms.len() > 1 {
            let mut next = Vec::new();
            for pair in terms.chunks(2) {
                if pair.len() == 2 {
                    let s = g.add_node(ops.fadd);
                    flow(&mut g, ops, pair[0], s);
                    flow(&mut g, ops, pair[1], s);
                    next.push(s);
                } else {
                    next.push(pair[0]);
                }
            }
            terms = next;
        }
        let st = g.add_node(ops.store[u % 2]);
        flow(&mut g, ops, terms[0], st);
    }
    g
}

/// LFK 11 (first sum): `x[k] = x[k-1] + y[k]` — the tightest possible
/// recurrence.
pub fn first_sum(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    let mut carried: Option<NodeId> = None;
    let mut first: Option<NodeId> = None;
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let ly = g.add_node(ops.load[u % 2]);
        flow(&mut g, ops, a, ly);
        let s = g.add_node(ops.fadd);
        flow(&mut g, ops, ly, s);
        if let Some(prev) = carried {
            flow(&mut g, ops, prev, s);
        }
        let st = g.add_node(ops.store[(u + 1) % 2]);
        flow(&mut g, ops, s, st);
        if first.is_none() {
            first = Some(s);
        }
        carried = Some(s);
    }
    g.add_edge(
        carried.expect("set"),
        first.expect("set"),
        ops.latency(ops.fadd),
        1,
        DepKind::Flow,
    );
    g
}

/// LFK 12 (first difference): `x[k] = y[k+1] - y[k]` — no recurrence,
/// loads dominate.
pub fn first_diff(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let l0 = g.add_node(ops.load[u % 2]);
        let l1 = g.add_node(ops.load[(u + 1) % 2]);
        flow(&mut g, ops, a, l0);
        flow(&mut g, ops, a, l1);
        let s = g.add_node(ops.fadd);
        flow(&mut g, ops, l0, s);
        flow(&mut g, ops, l1, s);
        let st = g.add_node(ops.store[u % 2]);
        flow(&mut g, ops, s, st);
    }
    g
}

/// A divide-heavy kernel (`w[i] = u[i] / v[i]` via reciprocal Newton
/// iteration, the Cydra's idiom).
pub fn divide_kernel(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let lu = g.add_node(ops.load[u % 2]);
        let lv = g.add_node(ops.load[(u + 1) % 2]);
        flow(&mut g, ops, a, lu);
        flow(&mut g, ops, a, lv);
        let r0 = g.add_node(ops.recip); // seed
        flow(&mut g, ops, lv, r0);
        // One Newton step: r1 = r0 * (2 - v * r0)
        let m0 = g.add_node(ops.fmul);
        flow(&mut g, ops, lv, m0);
        flow(&mut g, ops, r0, m0);
        let s0 = g.add_node(ops.fadd);
        flow(&mut g, ops, m0, s0);
        let m1 = g.add_node(ops.fmul);
        flow(&mut g, ops, r0, m1);
        flow(&mut g, ops, s0, m1);
        // w = u * r1
        let m2 = g.add_node(ops.fmul);
        flow(&mut g, ops, lu, m2);
        flow(&mut g, ops, m1, m2);
        let st = g.add_node(ops.store[u % 2]);
        flow(&mut g, ops, m2, st);
    }
    g
}

/// Double-precision matrix-multiply inner loop fragment:
/// `c += a[i] * b[i]` in double precision, with independent partial-sum
/// accumulators per unrolled copy.
pub fn dmatmul(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let la = g.add_node(ops.load[u % 2]);
        let lb = g.add_node(ops.load[(u + 1) % 2]);
        flow(&mut g, ops, a, la);
        flow(&mut g, ops, a, lb);
        let m = g.add_node(ops.fmuld);
        flow(&mut g, ops, la, m);
        flow(&mut g, ops, lb, m);
        let s = g.add_node(ops.fadd);
        flow(&mut g, ops, m, s);
        g.add_edge(s, s, ops.latency(ops.fadd), 1, DepKind::Flow);
    }
    g
}

/// A copy loop with integer bookkeeping: `b[i] = a[i]; n += 1` — the
/// smallest realistic bodies (2–5 ops at unroll 1).
pub fn copy_loop(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    let mut prev_store: Option<NodeId> = None;
    for u in 0..unroll.max(1) {
        let l = g.add_node(ops.load[u % 2]);
        let st = g.add_node(ops.store[(u + 1) % 2]);
        flow(&mut g, ops, l, st);
        if let Some(p) = prev_store {
            // Keep stores ordered (same array).
            g.add_edge(p, st, 1, 0, DepKind::Memory);
        }
        prev_store = Some(st);
    }
    g
}


/// LFK 2 (ICCG, incomplete Cholesky conjugate gradient): a log-depth
/// gather-and-combine — deep dependence chains, no recurrence.
pub fn iccg(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        // Gather 4 pairs, combine pairwise, then once more.
        let mut level: Vec<NodeId> = Vec::new();
        for i in 0..4 {
            let lx = g.add_node(ops.load[(u + i) % 2]);
            let lv = g.add_node(ops.load[(u + i + 1) % 2]);
            flow(&mut g, ops, a, lx);
            flow(&mut g, ops, a, lv);
            let m = g.add_node(ops.fmul);
            flow(&mut g, ops, lx, m);
            flow(&mut g, ops, lv, m);
            level.push(m);
        }
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                let s = g.add_node(ops.fadd);
                flow(&mut g, ops, pair[0], s);
                if pair.len() == 2 {
                    flow(&mut g, ops, pair[1], s);
                }
                next.push(s);
            }
            level = next;
        }
        let st = g.add_node(ops.store[u % 2]);
        flow(&mut g, ops, level[0], st);
    }
    g
}

/// LFK 19 (general linear recurrence equations): a *two-deep* carried
/// recurrence — stiffer than first_sum, II is recurrence-bound.
pub fn linear_recurrence(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    let mut carried: Option<NodeId> = None;
    let mut first_mul: Option<NodeId> = None;
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let lb = g.add_node(ops.load[u % 2]);
        let lc = g.add_node(ops.load[(u + 1) % 2]);
        flow(&mut g, ops, a, lb);
        flow(&mut g, ops, a, lc);
        // stb = sb[k] - stb_prev * sa[k]: multiply then subtract, both on
        // the carried value.
        let m = g.add_node(ops.fmul);
        flow(&mut g, ops, lb, m);
        if let Some(prev) = carried {
            flow(&mut g, ops, prev, m);
        }
        let s = g.add_node(ops.fadd);
        flow(&mut g, ops, lc, s);
        flow(&mut g, ops, m, s);
        let st = g.add_node(ops.store[u % 2]);
        flow(&mut g, ops, s, st);
        if first_mul.is_none() {
            first_mul = Some(m);
        }
        carried = Some(s);
    }
    // The carried value crosses the iteration into the first multiply:
    // RecMII = fmul + fadd latency.
    g.add_edge(
        carried.expect("set"),
        first_mul.expect("set"),
        ops.latency(ops.fadd),
        1,
        DepKind::Flow,
    );
    g
}

/// LFK 23 (2-D implicit hydrodynamics fragment): a wide body with a
/// carried recurrence through several arithmetic stages.
pub fn hydro2d(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    let mut carried: Option<NodeId> = None;
    let mut first: Option<NodeId> = None;
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let mut terms = Vec::new();
        for i in 0..3 {
            let l = g.add_node(ops.load[(u + i) % 2]);
            flow(&mut g, ops, a, l);
            let m = g.add_node(ops.fmul);
            flow(&mut g, ops, l, m);
            terms.push(m);
        }
        let s0 = g.add_node(ops.fadd);
        flow(&mut g, ops, terms[0], s0);
        flow(&mut g, ops, terms[1], s0);
        let s1 = g.add_node(ops.fadd);
        flow(&mut g, ops, s0, s1);
        flow(&mut g, ops, terms[2], s1);
        // qa depends on the previous iteration's za through a multiply.
        let m2 = g.add_node(ops.fmul);
        flow(&mut g, ops, s1, m2);
        if let Some(prev) = carried {
            flow(&mut g, ops, prev, m2);
        }
        let st = g.add_node(ops.store[(u + 1) % 2]);
        flow(&mut g, ops, m2, st);
        if first.is_none() {
            first = Some(m2);
        }
        carried = Some(m2);
    }
    g.add_edge(
        carried.expect("set"),
        first.expect("set"),
        ops.latency(ops.fmul),
        1,
        DepKind::Flow,
    );
    g
}

/// A Newton-iteration square-root loop (`y += sqrt-step`): recip-bound,
/// exercising the iterative datapath class.
pub fn sqrt_newton(ops: &OpSet, unroll: usize) -> DepGraph {
    let mut g = DepGraph::new();
    add_brtop(&mut g, ops);
    for u in 0..unroll.max(1) {
        let a = add_addr(&mut g, ops, u);
        let l = g.add_node(ops.load[u % 2]);
        flow(&mut g, ops, a, l);
        let r0 = g.add_node(ops.recip);
        flow(&mut g, ops, l, r0);
        let m0 = g.add_node(ops.fmul);
        flow(&mut g, ops, l, m0);
        flow(&mut g, ops, r0, m0);
        let s = g.add_node(ops.fadd);
        flow(&mut g, ops, m0, s);
        let st = g.add_node(ops.store[(u + 1) % 2]);
        flow(&mut g, ops, s, st);
    }
    g
}

/// A kernel constructor: builds a dependence graph of roughly the given
/// size over the machine's operation set.
pub type KernelFn = fn(&OpSet, usize) -> DepGraph;

/// All kernel templates as `(name, constructor)` pairs.
pub fn all() -> Vec<(&'static str, KernelFn)> {
    vec![
        ("hydro", hydro as fn(&OpSet, usize) -> DepGraph),
        ("inner_product", inner_product),
        ("tridiag", tridiag),
        ("state_eq", state_eq),
        ("first_sum", first_sum),
        ("first_diff", first_diff),
        ("divide", divide_kernel),
        ("dmatmul", dmatmul),
        ("copy", copy_loop),
        ("iccg", iccg),
        ("linear_rec", linear_recurrence),
        ("hydro2d", hydro2d),
        ("sqrt_newton", sqrt_newton),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::cydra5_subset;

    #[test]
    fn all_kernels_build_valid_graphs() {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        for (name, f) in all() {
            for unroll in [1usize, 2, 4] {
                let g = f(&ops, unroll);
                assert!(g.num_nodes() >= 2, "{name}@{unroll}");
                assert!(
                    g.intra_iteration_acyclic(),
                    "{name}@{unroll} must be acyclic within an iteration"
                );
            }
        }
    }

    #[test]
    fn recurrences_where_expected() {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        assert!(inner_product(&ops, 1).has_recurrence());
        assert!(tridiag(&ops, 2).has_recurrence());
        assert!(first_sum(&ops, 1).has_recurrence());
        assert!(linear_recurrence(&ops, 2).has_recurrence());
        assert!(hydro2d(&ops, 1).has_recurrence());
        assert!(!copy_loop(&ops, 2).has_recurrence());
    }

    #[test]
    fn unrolling_scales_size() {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        let s1 = hydro(&ops, 1).num_nodes();
        let s4 = hydro(&ops, 4).num_nodes();
        assert!(s4 > 3 * s1, "unroll 4 ({s4}) vs 1 ({s1})");
    }
}
