//! A synthetic innermost-loop benchmark suite.
//!
//! The paper's evaluation runs over 1327 loops from the Perfect Club,
//! SPEC-89, and the Livermore Fortran Kernels, as compiled by the
//! proprietary Cydra 5 Fortran77 compiler. Those dependence graphs are
//! not available, so this crate generates a distribution-matched
//! replacement (see DESIGN.md §5): hand-written dependence-graph
//! templates for classic Livermore-style kernels ([`kernels`]) plus a
//! seeded random generator ([`random`]), combined by [`suite`] into a
//! deterministic 1327-loop suite whose size range (2–161 operations,
//! mean ≈ 17.5) and recurrence mix match the paper's Table 5.
//!
//! # Example
//!
//! ```
//! use rmd_machine::models::cydra5_subset;
//! use rmd_loops::{suite, OpSet};
//!
//! let m = cydra5_subset();
//! let ops = OpSet::for_cydra_subset(&m);
//! let loops = suite(&ops, 1327, 0xC5);
//! assert_eq!(loops.len(), 1327);
//! let sizes: Vec<usize> = loops.iter().map(|l| l.graph.num_nodes()).collect();
//! assert_eq!(*sizes.iter().min().unwrap(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernels;
mod opset;
pub mod random;
mod suite;

pub use opset::OpSet;
pub use suite::{suite, Loop};
