//! The operation vocabulary the generators draw from.

use rmd_machine::{MachineDescription, OpId};

/// The operations (and their producer latencies) that loop bodies are
/// built from — the Cydra 5 benchmark-subset vocabulary.
#[derive(Clone, Debug)]
pub struct OpSet {
    /// Word loads, one per memory port.
    pub load: [OpId; 2],
    /// Word stores, one per memory port.
    pub store: [OpId; 2],
    /// Address adds, one per address unit.
    pub aadd: [OpId; 2],
    /// FP add (also subtract).
    pub fadd: OpId,
    /// FP multiply, single precision.
    pub fmul: OpId,
    /// FP multiply, double precision.
    pub fmuld: OpId,
    /// Integer ALU op.
    pub iadd: OpId,
    /// Reciprocal Newton step (the Cydra's divide building block).
    pub recip: OpId,
    /// The loop-control branch.
    pub brtop: OpId,
    latency: Vec<i32>,
}

impl OpSet {
    /// Resolves the vocabulary against the Cydra 5 benchmark subset
    /// (`rmd_machine::models::cydra5_subset`).
    ///
    /// # Panics
    ///
    /// Panics if `m` lacks any of the subset operations.
    pub fn for_cydra_subset(m: &MachineDescription) -> Self {
        let get = |n: &str| m.op_by_name(n).unwrap_or_else(|| panic!("machine lacks op `{n}`"));
        let mut latency = vec![1i32; m.num_operations()];
        let mut set = |op: OpId, l: i32| latency[op.index()] = l;
        let load = [get("load.w.0"), get("load.w.1")];
        let store = [get("store.w.0"), get("store.w.1")];
        let aadd = [get("aadd.0"), get("aadd.1")];
        let fadd = get("fadd");
        let fmul = get("fmul");
        let fmuld = get("fmul.d");
        let iadd = get("iadd");
        let recip = get("recip");
        let brtop = get("brtop");
        // Producer latencies: one past the write-back cycle.
        set(load[0], 21);
        set(load[1], 21);
        set(aadd[0], 3);
        set(aadd[1], 3);
        set(fadd, 7);
        set(fmul, 6);
        set(fmuld, 8);
        set(iadd, 3);
        set(recip, 11);
        set(brtop, 1);
        OpSet {
            load,
            store,
            aadd,
            fadd,
            fmul,
            fmuld,
            iadd,
            recip,
            brtop,
            latency,
        }
    }

    /// Result latency of `op` (cycles until a consumer may issue).
    pub fn latency(&self, op: OpId) -> i32 {
        self.latency[op.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::cydra5_subset;

    #[test]
    fn resolves_against_subset_machine() {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        assert_eq!(ops.latency(ops.load[0]), 21);
        assert_eq!(ops.latency(ops.fadd), 7);
        assert_ne!(ops.load[0], ops.load[1]);
    }

    #[test]
    #[should_panic(expected = "machine lacks op")]
    fn panics_on_wrong_machine() {
        let m = rmd_machine::models::mips_r3000();
        let _ = OpSet::for_cydra_subset(&m);
    }
}
