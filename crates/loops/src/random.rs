//! Seeded random loop-body generation.

use crate::opset::OpSet;
use rand::rngs::StdRng;
use rand::Rng;
use rmd_sched::{DepGraph, DepKind, NodeId};
use rmd_machine::OpId;

/// Parameters of the random generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomLoopParams {
    /// Number of operations (excluding the implicit `brtop`).
    pub size: usize,
    /// Probability that the loop carries a data recurrence.
    pub recurrence_prob: f64,
    /// Probability that a value op takes a second operand edge.
    pub second_operand_prob: f64,
}

impl Default for RandomLoopParams {
    fn default() -> Self {
        RandomLoopParams {
            size: 16,
            recurrence_prob: 0.35,
            second_operand_prob: 0.6,
        }
    }
}

/// Generates a random, schedulable loop body: a layered DAG of loads,
/// FP arithmetic, integer bookkeeping, and stores, with optional
/// loop-carried recurrences, plus the loop-control branch.
///
/// The distribution imitates numeric Fortran bodies: roughly 30% loads,
/// 15% stores, 35% FP arithmetic, 15% address/integer ops, 5% divide
/// steps. The intra-iteration graph is acyclic by construction (edges
/// point from earlier to later nodes).
pub fn random_loop(ops: &OpSet, rng: &mut StdRng, params: RandomLoopParams) -> DepGraph {
    let n = params.size.max(1);
    let mut g = DepGraph::new();

    // brtop with its trivial self-recurrence.
    let b = g.add_node(ops.brtop);
    g.add_edge(b, b, 1, 1, DepKind::Output);

    // Choose op kinds: nodes are created in order, so "producers" for
    // data edges are simply earlier value-producing nodes.
    let mut producers: Vec<NodeId> = Vec::new();
    let mut value_nodes: Vec<NodeId> = Vec::new();
    let mut last_store: Option<NodeId> = None;

    for i in 0..n {
        let roll: f64 = rng.gen();
        let op: OpId = if i < 2 || roll < 0.30 {
            ops.load[rng.gen_range(0..2)]
        } else if roll < 0.45 && !producers.is_empty() {
            ops.store[rng.gen_range(0..2)]
        } else if roll < 0.67 {
            ops.fadd
        } else if roll < 0.77 {
            ops.fmul
        } else if roll < 0.80 {
            ops.fmuld
        } else if roll < 0.92 {
            ops.iadd
        } else if roll < 0.98 {
            ops.aadd[rng.gen_range(0..2)]
        } else {
            ops.recip
        };
        let v = g.add_node(op);

        let is_store = op == ops.store[0] || op == ops.store[1];
        let is_load = op == ops.load[0] || op == ops.load[1];
        let is_addr = op == ops.aadd[0] || op == ops.aadd[1];

        if is_addr {
            // Address increments recur with themselves.
            g.add_edge(v, v, ops.latency(op), 1, DepKind::Flow);
        }
        if !is_load && !is_addr {
            // Consume one or two earlier values.
            if let Some(&p) = pick(rng, &producers) {
                g.add_edge(p, v, ops.latency(g.op(p)), 0, DepKind::Flow);
                if rng.gen_bool(params.second_operand_prob) {
                    if let Some(&p2) = pick(rng, &producers) {
                        if p2 != p {
                            g.add_edge(p2, v, ops.latency(g.op(p2)), 0, DepKind::Flow);
                        }
                    }
                }
            }
        }
        if is_store {
            // Keep stores to the same region ordered.
            if let Some(p) = last_store {
                if rng.gen_bool(0.5) {
                    g.add_edge(p, v, 1, 0, DepKind::Memory);
                }
            }
            last_store = Some(v);
        } else {
            producers.push(v);
            if !is_addr {
                value_nodes.push(v);
            }
        }
    }

    // Optional loop-carried recurrence: scalar recurrences in numeric
    // code stay in registers, so close the cycle through arithmetic
    // nodes only (never loads) and keep it short — from a node back to a
    // *nearby* earlier node with distance 1..=2. The backward direction
    // keeps the intra-iteration graph acyclic.
    let arith: Vec<NodeId> = value_nodes
        .iter()
        .copied()
        .filter(|&v| {
            let op = g.op(v);
            op == ops.fadd || op == ops.fmul || op == ops.fmuld || op == ops.iadd
        })
        .collect();
    if rng.gen_bool(params.recurrence_prob) && arith.len() >= 2 {
        let i = rng.gen_range(1..arith.len());
        let j = i.saturating_sub(rng.gen_range(1..=2)).min(i - 1);
        let (from, to) = (arith[i], arith[j]);
        let distance = rng.gen_range(1..=2);
        g.add_edge(from, to, ops.latency(g.op(from)), distance, DepKind::Flow);
    }

    debug_assert!(g.intra_iteration_acyclic());
    g
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rmd_machine::models::cydra5_subset;

    #[test]
    fn generated_loops_are_structurally_valid() {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        let mut rng = StdRng::seed_from_u64(7);
        for size in [1usize, 4, 16, 64, 160] {
            let g = random_loop(
                &ops,
                &mut rng,
                RandomLoopParams {
                    size,
                    ..Default::default()
                },
            );
            assert_eq!(g.num_nodes(), size + 1); // + brtop
            assert!(g.intra_iteration_acyclic());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        let g1 = random_loop(&ops, &mut StdRng::seed_from_u64(42), Default::default());
        let g2 = random_loop(&ops, &mut StdRng::seed_from_u64(42), Default::default());
        assert_eq!(g1, g2);
        let g3 = random_loop(&ops, &mut StdRng::seed_from_u64(43), Default::default());
        assert_ne!(g1, g3);
    }

    #[test]
    fn recurrence_probability_zero_yields_recurrence_only_from_bookkeeping() {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_loop(
            &ops,
            &mut rng,
            RandomLoopParams {
                size: 20,
                recurrence_prob: 0.0,
                ..Default::default()
            },
        );
        // Only brtop/address self-edges carry distance > 0.
        for e in g.edges() {
            if e.distance > 0 {
                assert_eq!(e.from, e.to, "unexpected data recurrence");
            }
        }
    }
}
