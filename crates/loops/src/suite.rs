//! The deterministic 1327-loop benchmark suite.

use crate::kernels;
use crate::opset::OpSet;
use crate::random::{random_loop, RandomLoopParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmd_sched::DepGraph;

/// One benchmark loop: a named dependence graph.
#[derive(Clone, Debug)]
pub struct Loop {
    /// A human-readable identifier (template name + parameters, or the
    /// random seed index).
    pub name: String,
    /// The dependence graph (ops of the Cydra 5 benchmark subset).
    pub graph: DepGraph,
}

/// Builds a deterministic suite of `count` loops (the paper uses 1327)
/// from kernel templates at varying unroll factors plus random bodies.
///
/// The size distribution is tuned to the paper's Table 5: smallest loop
/// 2 operations, mean ≈ 17.5, largest capped at 161.
pub fn suite(ops: &OpSet, count: usize, seed: u64) -> Vec<Loop> {
    let mut rng = StdRng::seed_from_u64(seed);
    let templates = kernels::all();
    let mut loops = Vec::with_capacity(count);

    // Pin the extremes so every suite spans the paper's range:
    // a 2-op copy loop and one near-161-op unrolled kernel.
    loops.push(Loop {
        name: "copy@1".into(),
        graph: minimal_copy(ops),
    });
    loops.push(Loop {
        name: "state_eq@12".into(),
        graph: kernels::state_eq(ops, 12), // 157 ops, near the 161 cap
    });

    while loops.len() < count {
        let i = loops.len();
        if rng.gen_bool(0.45) {
            // Kernel template at a size-targeted unroll factor.
            let (name, f) = templates[rng.gen_range(0..templates.len())];
            let target = sample_size(&mut rng);
            // Probe the template's base size once to pick the unroll.
            let base = f(ops, 1).num_nodes().max(2);
            let unroll = (target / base).clamp(1, 24);
            let g = f(ops, unroll);
            if g.num_nodes() <= 161 {
                loops.push(Loop {
                    name: format!("{name}@{unroll}"),
                    graph: g,
                });
            }
        } else {
            let size = sample_size(&mut rng).clamp(1, 160);
            let g = random_loop(
                ops,
                &mut rng,
                RandomLoopParams {
                    size,
                    ..Default::default()
                },
            );
            loops.push(Loop {
                name: format!("rand#{i}"),
                graph: g,
            });
        }
    }
    loops
}

/// A 2-operation loop body (the paper's Table 5 minimum).
fn minimal_copy(ops: &OpSet) -> DepGraph {
    use rmd_sched::DepKind;
    let mut g = DepGraph::new();
    let l = g.add_node(ops.load[0]);
    let s = g.add_node(ops.store[1]);
    g.add_edge(l, s, ops.latency(ops.load[0]), 0, DepKind::Flow);
    g
}

/// Log-normal-ish size sample matching Table 5 (mean ≈ 17.5, long tail).
fn sample_size(rng: &mut StdRng) -> usize {
    // Box-Muller normal from two uniforms.
    let u1: f64 = rng.gen_range(1e-9..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let x = (2.35 + 0.75 * z).exp(); // median ≈ 10.5, mean ≈ 14
    (x.round() as usize).clamp(2, 161)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::cydra5_subset;

    fn the_suite() -> Vec<Loop> {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        suite(&ops, 1327, 0xC5)
    }

    #[test]
    fn suite_matches_table_5_shape() {
        let loops = the_suite();
        assert_eq!(loops.len(), 1327);
        let sizes: Vec<usize> = loops.iter().map(|l| l.graph.num_nodes()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert_eq!(min, 2, "paper: smallest loop has 2 ops");
        assert!(max <= 161, "paper: largest loop has 161 ops");
        assert!(max > 100, "suite should include large loops, max={max}");
        assert!(
            (10.0..=25.0).contains(&avg),
            "paper mean is 17.54, got {avg:.2}"
        );
    }

    #[test]
    fn suite_is_deterministic() {
        let m = cydra5_subset();
        let ops = OpSet::for_cydra_subset(&m);
        let a = suite(&ops, 50, 1);
        let b = suite(&ops, 50, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.graph, y.graph);
        }
    }

    #[test]
    fn all_loops_are_schedulable_structures() {
        for l in the_suite().iter().take(200) {
            assert!(l.graph.intra_iteration_acyclic(), "{}", l.name);
            assert!(l.graph.num_nodes() >= 2);
        }
    }

    #[test]
    fn suite_mixes_kernels_and_random() {
        let loops = the_suite();
        let kernels = loops.iter().filter(|l| !l.name.starts_with("rand#")).count();
        let random = loops.len() - kernels;
        assert!(kernels > 200, "kernels: {kernels}");
        assert!(random > 200, "random: {random}");
    }
}
