//! Alternative resource usages and their expansion into alternative
//! operations.
//!
//! The reduction machinery of the paper requires every operation to have a
//! *fixed* reservation table. Real machines often let an operation choose
//! among interchangeable resources (e.g. either of two memory ports). The
//! paper's §3 preprocessing replaces such an operation `X` with *alternative
//! operations* `X#0`, `X#1`, ... — one per concrete choice — and the query
//! module's `check_with_alt` later picks whichever alternative fits a given
//! cycle.
//!
//! This module provides [`AltDescription`], a machine description whose
//! operations may carry several candidate reservation tables, and
//! [`AltDescription::expand`], which performs the paper's expansion and
//! returns the flat [`MachineDescription`] together with the
//! [`AltGroups`] mapping needed by `check_with_alt`.
//!
//! # Example
//!
//! ```
//! use rmd_machine::alternatives::AltDescription;
//! use rmd_machine::{ReservationTable, ResourceId};
//!
//! let mut d = AltDescription::new("dual-port");
//! let p0 = d.resource("port0");
//! let p1 = d.resource("port1");
//! d.operation("load")
//!     .alternative(ReservationTable::from_usages([(p0, 0)]))
//!     .alternative(ReservationTable::from_usages([(p1, 0)]))
//!     .finish();
//! let (machine, groups) = d.expand().unwrap();
//! assert_eq!(machine.num_operations(), 2);
//! assert_eq!(groups.group_of_base("load").unwrap().len(), 2);
//! ```

use crate::ids::{OpId, ResourceId};
use crate::machine::{MachineDescription, MachineError};
use crate::table::ReservationTable;
use crate::MachineBuilder;
use std::collections::HashMap;

/// An operation that may execute using any one of several reservation
/// tables.
#[derive(Clone, PartialEq, Debug)]
pub struct AltOperation {
    name: String,
    alternatives: Vec<ReservationTable>,
    weight: f64,
}

impl AltOperation {
    /// The operation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The candidate reservation tables.
    pub fn alternatives(&self) -> &[ReservationTable] {
        &self.alternatives
    }

    /// Relative issue frequency (defaults to 1.0).
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

/// A machine description in which operations may have alternative resource
/// usages; expand it with [`expand`](Self::expand) before reduction.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct AltDescription {
    name: String,
    resources: Vec<String>,
    ops: Vec<AltOperation>,
}

impl AltDescription {
    /// Starts an empty description named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AltDescription {
            name: name.into(),
            resources: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Declares a resource and returns its id.
    pub fn resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(name.into());
        ResourceId((self.resources.len() - 1) as u32)
    }

    /// Starts declaring an operation with alternatives.
    pub fn operation(&mut self, name: impl Into<String>) -> AltOpBuilder<'_> {
        AltOpBuilder {
            desc: self,
            op: AltOperation {
                name: name.into(),
                alternatives: Vec::new(),
                weight: 1.0,
            },
        }
    }

    /// The declared operations.
    pub fn operations(&self) -> &[AltOperation] {
        &self.ops
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared resource names, in id order.
    pub fn resource_names(&self) -> &[String] {
        &self.resources
    }

    /// Expands every multi-alternative operation into alternative
    /// operations (paper §3) and returns the flat machine description plus
    /// the grouping information.
    ///
    /// Single-alternative operations keep their name; an operation `X` with
    /// `n > 1` alternatives becomes `X#0 .. X#{n-1}`, each carrying
    /// `weight / n` so that weighted averages are preserved.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] if the expanded description fails
    /// validation (duplicate names, empty tables, ...).
    pub fn expand(&self) -> Result<(MachineDescription, AltGroups), MachineError> {
        let mut b = MachineBuilder::new(self.name.clone());
        for r in &self.resources {
            b.resource(r.clone());
        }
        let mut groups = Vec::new();
        let mut next_id = 0u32;
        for op in &self.ops {
            let n = op.alternatives.len();
            let mut group = Vec::with_capacity(n.max(1));
            if n == 1 {
                let mut ob = b.operation(op.name.clone()).weight(op.weight);
                for u in op.alternatives[0].usages() {
                    ob = ob.usage(u.resource, u.cycle);
                }
                ob.finish();
                group.push(OpId(next_id));
                next_id += 1;
            } else {
                for (i, alt) in op.alternatives.iter().enumerate() {
                    let mut ob = b
                        .operation(format!("{}#{i}", op.name))
                        .base(op.name.clone())
                        .weight(op.weight / n as f64);
                    for u in alt.usages() {
                        ob = ob.usage(u.resource, u.cycle);
                    }
                    ob.finish();
                    group.push(OpId(next_id));
                    next_id += 1;
                }
            }
            groups.push((op.name.clone(), group));
        }
        let machine = b.build()?;
        let groups = AltGroups::new(groups, machine.num_operations());
        Ok((machine, groups))
    }
}

/// Builds one operation of an [`AltDescription`].
#[derive(Debug)]
pub struct AltOpBuilder<'d> {
    desc: &'d mut AltDescription,
    op: AltOperation,
}

impl AltOpBuilder<'_> {
    /// Adds one candidate reservation table.
    pub fn alternative(mut self, table: ReservationTable) -> Self {
        self.op.alternatives.push(table);
        self
    }

    /// Adds the cross product of `base` with one choice from each list in
    /// `choices` — convenient for "use either port" stages.
    pub fn alternatives_cross(
        mut self,
        base: &ReservationTable,
        choices: &[Vec<(ResourceId, u32)>],
    ) -> Self {
        let mut tables = vec![base.clone()];
        for choice in choices {
            let mut next = Vec::with_capacity(tables.len() * choice.len());
            for t in &tables {
                for &(r, c) in choice {
                    let mut t2 = t.clone();
                    t2.reserve(r, c);
                    next.push(t2);
                }
            }
            tables = next;
        }
        self.op.alternatives.extend(tables);
        self
    }

    /// Sets the relative issue frequency.
    pub fn weight(mut self, weight: f64) -> Self {
        self.op.weight = weight;
        self
    }

    /// Commits the operation.
    pub fn finish(self) {
        self.desc.ops.push(self.op);
    }
}

/// Maps expanded alternative operations back to their source operations.
///
/// Produced by [`AltDescription::expand`]; consumed by the query module's
/// `check_with_alt`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AltGroups {
    /// One entry per source operation: `(base name, member ops)`.
    groups: Vec<(String, Vec<OpId>)>,
    /// For each expanded op id: index into `groups`.
    group_of: Vec<usize>,
    by_name: HashMap<String, usize>,
}

impl AltGroups {
    fn new(groups: Vec<(String, Vec<OpId>)>, num_ops: usize) -> Self {
        let mut group_of = vec![0usize; num_ops];
        let mut by_name = HashMap::new();
        for (gi, (name, members)) in groups.iter().enumerate() {
            by_name.insert(name.clone(), gi);
            for &m in members {
                group_of[m.index()] = gi;
            }
        }
        AltGroups {
            groups,
            group_of,
            by_name,
        }
    }

    /// Builds the trivial grouping in which every operation of `m` is its
    /// own single-member group.
    pub fn identity(m: &MachineDescription) -> Self {
        let groups = m
            .ops()
            .map(|(id, op)| (op.name().to_owned(), vec![id]))
            .collect();
        Self::new(groups, m.num_operations())
    }

    /// Builds a grouping from explicit `(base name, members)` lists over
    /// the operations of `m` — for machines whose alternatives were
    /// written as distinct operations rather than expanded from an
    /// [`AltDescription`] (e.g. the per-port load/store classes of the
    /// Cydra 5 model). Operations not mentioned become single-member
    /// groups.
    ///
    /// # Panics
    ///
    /// Panics if a member id is out of range or listed twice.
    pub fn from_groups(m: &MachineDescription, groups: Vec<(String, Vec<OpId>)>) -> Self {
        let mut seen = vec![false; m.num_operations()];
        let mut all = Vec::new();
        for (name, members) in groups {
            for &mem in &members {
                assert!(
                    !seen[mem.index()],
                    "operation {mem} appears in two groups"
                );
                seen[mem.index()] = true;
            }
            all.push((name, members));
        }
        for (id, op) in m.ops() {
            if !seen[id.index()] {
                all.push((op.name().to_owned(), vec![id]));
            }
        }
        Self::new(all, m.num_operations())
    }

    /// Number of source (pre-expansion) operations.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The alternative operations expanded from the same source as `op`
    /// (always includes `op` itself).
    pub fn alternatives_of(&self, op: OpId) -> &[OpId] {
        &self.groups[self.group_of[op.index()]].1
    }

    /// The members of the group for the source operation named `base`.
    pub fn group_of_base(&self, base: &str) -> Option<&[OpId]> {
        self.by_name.get(base).map(|&gi| self.groups[gi].1.as_slice())
    }

    /// Iterates over `(base name, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[OpId])> {
        self.groups.iter().map(|(n, g)| (n.as_str(), g.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_alternative_keeps_name() {
        let mut d = AltDescription::new("m");
        let r = d.resource("r");
        d.operation("add")
            .alternative(ReservationTable::from_usages([(r, 0)]))
            .finish();
        let (m, g) = d.expand().unwrap();
        assert_eq!(m.operations()[0].name(), "add");
        assert_eq!(m.operations()[0].base(), None);
        assert_eq!(g.alternatives_of(OpId(0)), &[OpId(0)]);
    }

    #[test]
    fn multi_alternative_expands_with_hash_names() {
        let mut d = AltDescription::new("m");
        let p0 = d.resource("p0");
        let p1 = d.resource("p1");
        d.operation("load")
            .alternative(ReservationTable::from_usages([(p0, 0)]))
            .alternative(ReservationTable::from_usages([(p1, 0)]))
            .finish();
        let (m, g) = d.expand().unwrap();
        assert_eq!(m.num_operations(), 2);
        assert_eq!(m.operations()[0].name(), "load#0");
        assert_eq!(m.operations()[1].name(), "load#1");
        assert_eq!(m.operations()[0].base(), Some("load"));
        assert_eq!(g.alternatives_of(OpId(1)), &[OpId(0), OpId(1)]);
        assert_eq!(g.group_of_base("load").unwrap().len(), 2);
    }

    #[test]
    fn weights_split_across_alternatives() {
        let mut d = AltDescription::new("m");
        let p0 = d.resource("p0");
        let p1 = d.resource("p1");
        d.operation("ld")
            .weight(2.0)
            .alternative(ReservationTable::from_usages([(p0, 0)]))
            .alternative(ReservationTable::from_usages([(p1, 0)]))
            .finish();
        let (m, _) = d.expand().unwrap();
        assert!((m.operations()[0].weight() - 1.0).abs() < 1e-12);
        assert!((m.operations()[1].weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_product_generates_all_combinations() {
        let mut d = AltDescription::new("m");
        let a0 = d.resource("a0");
        let a1 = d.resource("a1");
        let b0 = d.resource("b0");
        let b1 = d.resource("b1");
        let base = ReservationTable::new();
        d.operation("x")
            .alternatives_cross(&base, &[vec![(a0, 0), (a1, 0)], vec![(b0, 1), (b1, 1)]])
            .finish();
        let (m, g) = d.expand().unwrap();
        assert_eq!(m.num_operations(), 4);
        assert_eq!(g.group_of_base("x").unwrap().len(), 4);
    }

    #[test]
    fn identity_groups_every_op_alone() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish();
        b.operation("y").usage(r, 1).finish();
        let m = b.build().unwrap();
        let g = AltGroups::identity(&m);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.alternatives_of(OpId(1)), &[OpId(1)]);
        assert_eq!(g.group_of_base("x").unwrap(), &[OpId(0)]);
    }
}
