//! Fluent construction of machine descriptions.

use crate::ids::ResourceId;
use crate::machine::{MachineDescription, MachineError, Operation, Resource};
use crate::table::ReservationTable;
use std::collections::HashSet;

/// Builds a [`MachineDescription`] incrementally.
///
/// # Example
///
/// ```
/// use rmd_machine::MachineBuilder;
///
/// let mut b = MachineBuilder::new("mini");
/// let issue = b.resource("issue");
/// let fpa = b.resource("fp-add-stage");
/// b.operation("iadd").usage(issue, 0).finish();
/// b.operation("fadd")
///     .usage(issue, 0)
///     .usage(fpa, 1)
///     .usage(fpa, 2)
///     .finish();
/// let m = b.build().unwrap();
/// assert_eq!(m.num_operations(), 2);
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    name: String,
    resources: Vec<Resource>,
    resource_names: HashSet<String>,
    operations: Vec<Operation>,
    op_names: HashSet<String>,
    error: Option<MachineError>,
}

impl MachineBuilder {
    /// Starts a new builder for a machine called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        MachineBuilder {
            name: name.into(),
            resources: Vec::new(),
            resource_names: HashSet::new(),
            operations: Vec::new(),
            op_names: HashSet::new(),
            error: None,
        }
    }

    /// Declares a resource and returns its id.
    ///
    /// Duplicate names are recorded as an error that surfaces from
    /// [`build`](Self::build).
    pub fn resource(&mut self, name: impl Into<String>) -> ResourceId {
        let name = name.into();
        if !self.resource_names.insert(name.clone()) && self.error.is_none() {
            self.error = Some(MachineError::DuplicateResource(name.clone()));
        }
        self.resources.push(Resource::new(name));
        ResourceId((self.resources.len() - 1) as u32)
    }

    /// Declares `n` resources named `prefix0..prefix{n-1}` and returns
    /// their ids. Convenient for banks of identical stages.
    pub fn resource_bank(&mut self, prefix: &str, n: usize) -> Vec<ResourceId> {
        (0..n).map(|i| self.resource(format!("{prefix}{i}"))).collect()
    }

    /// Starts declaring an operation; finish it with
    /// [`OperationBuilder::finish`].
    pub fn operation(&mut self, name: impl Into<String>) -> OperationBuilder<'_> {
        OperationBuilder {
            machine: self,
            name: name.into(),
            table: ReservationTable::new(),
            base: None,
            weight: 1.0,
        }
    }

    /// Adds a fully-formed operation.
    pub fn add_operation(
        &mut self,
        name: impl Into<String>,
        table: ReservationTable,
    ) -> &mut Self {
        let name = name.into();
        self.push_op(Operation::new(name, table, None, 1.0));
        self
    }

    fn push_op(&mut self, op: Operation) {
        if !self.op_names.insert(op.name().to_owned()) && self.error.is_none() {
            self.error = Some(MachineError::DuplicateOperation(op.name().to_owned()));
        }
        self.operations.push(op);
    }

    /// Finishes the build, validating the description.
    ///
    /// # Errors
    ///
    /// Returns the first [`MachineError`] recorded during building, or any
    /// validation error (empty operations, no operations, out-of-range
    /// resource ids).
    pub fn build(self) -> Result<MachineDescription, MachineError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        MachineDescription::assemble(self.name, self.resources, self.operations)
    }
}

/// Builds one operation within a [`MachineBuilder`].
///
/// Returned by [`MachineBuilder::operation`]; call [`finish`](Self::finish)
/// to commit the operation.
#[derive(Debug)]
pub struct OperationBuilder<'m> {
    machine: &'m mut MachineBuilder,
    name: String,
    table: ReservationTable,
    base: Option<String>,
    weight: f64,
}

impl OperationBuilder<'_> {
    /// Reserves `resource` in `cycle` (relative to issue).
    pub fn usage(mut self, resource: ResourceId, cycle: u32) -> Self {
        self.table.reserve(resource, cycle);
        self
    }

    /// Reserves `resource` in every cycle of `cycles`.
    pub fn usages<I: IntoIterator<Item = u32>>(mut self, resource: ResourceId, cycles: I) -> Self {
        for c in cycles {
            self.table.reserve(resource, c);
        }
        self
    }

    /// Reserves `resource` for the half-open cycle range `from..to`.
    pub fn span(mut self, resource: ResourceId, from: u32, to: u32) -> Self {
        for c in from..to {
            self.table.reserve(resource, c);
        }
        self
    }

    /// Marks this operation as an alternative expanded from `base`
    /// (see [`alternatives`](crate::alternatives)).
    pub fn base(mut self, base: impl Into<String>) -> Self {
        self.base = Some(base.into());
        self
    }

    /// Sets the relative issue frequency used in weighted averages.
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Commits the operation to the machine builder.
    pub fn finish(self) {
        let op = Operation::new(self.name, self.table, self.base, self.weight);
        self.machine.push_op(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineError;

    #[test]
    fn duplicate_resource_is_an_error() {
        let mut b = MachineBuilder::new("m");
        b.resource("x");
        let r = b.resource("x");
        b.operation("op").usage(r, 0).finish();
        assert!(matches!(
            b.build(),
            Err(MachineError::DuplicateResource(n)) if n == "x"
        ));
    }

    #[test]
    fn duplicate_operation_is_an_error() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("op").usage(r, 0).finish();
        b.operation("op").usage(r, 1).finish();
        assert!(matches!(
            b.build(),
            Err(MachineError::DuplicateOperation(n)) if n == "op"
        ));
    }

    #[test]
    fn resource_bank_names_sequentially() {
        let mut b = MachineBuilder::new("m");
        let bank = b.resource_bank("stage", 3);
        b.operation("op").usage(bank[2], 0).finish();
        let m = b.build().unwrap();
        assert_eq!(m.resource(bank[0]).name(), "stage0");
        assert_eq!(m.resource(bank[2]).name(), "stage2");
    }

    #[test]
    fn span_reserves_half_open_range() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("op").span(r, 2, 5).finish();
        let m = b.build().unwrap();
        let op = m.operation(m.op_by_name("op").unwrap());
        assert_eq!(op.table().usage_set(r), vec![2, 3, 4]);
    }

    #[test]
    fn weight_and_base_are_recorded() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("mv0").base("mv").weight(0.25).usage(r, 0).finish();
        let m = b.build().unwrap();
        let op = m.operation(m.op_by_name("mv0").unwrap());
        assert_eq!(op.base(), Some("mv"));
        assert!((op.weight() - 0.25).abs() < 1e-12);
    }
}
