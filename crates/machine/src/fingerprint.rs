//! Content fingerprints: the stable identity of a machine description.
//!
//! A content fingerprint is an FNV-1a 64-bit hash of the *canonical MDL
//! rendering* of a machine, rendered as `rmd-` plus 16 lowercase hex
//! digits. Two submissions of the same machine — whether by built-in
//! model name or by equivalent `.mdl` source — therefore share one
//! fingerprint, and a client can precompute the key offline from the
//! `rmd render` output.
//!
//! The fingerprint is the key shared by three tools: `rmd serve` uses it
//! to cache reduced descriptions, `rmd certify` binds certificates to it,
//! and `rmd lint --format json` reports it so findings can be joined
//! against the other two.

use crate::fnv::fnv1a64;
use crate::{mdl, MachineDescription};

/// The content fingerprint of `machine`: `rmd-` + 16 lowercase hex
/// digits of the FNV-1a 64-bit hash of its canonical MDL rendering.
///
/// ```
/// use rmd_machine::{content_fingerprint, models};
/// let fp = content_fingerprint(&models::example_machine());
/// assert!(fp.starts_with("rmd-"));
/// assert_eq!(fp.len(), 20);
/// ```
pub fn content_fingerprint(machine: &MachineDescription) -> String {
    format!("rmd-{:016x}", fnv1a64(mdl::print(machine).as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn deterministic_and_model_sensitive() {
        let a = content_fingerprint(&models::example_machine());
        let b = content_fingerprint(&models::example_machine());
        assert_eq!(a, b);
        assert_eq!(a.len(), 4 + 16);
        assert!(a.starts_with("rmd-"));
        assert_ne!(a, content_fingerprint(&models::cydra5_subset()));
    }

    #[test]
    fn roundtrips_through_mdl_source() {
        // Parsing the canonical rendering back yields the same key.
        let m = models::cydra5_subset();
        let src = mdl::print(&m);
        let (parsed, _) = mdl::parse_machine(&src).expect("test setup");
        assert_eq!(content_fingerprint(&m), content_fingerprint(&parsed));
    }
}
