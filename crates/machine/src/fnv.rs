//! The workspace's one FNV-1a 64 definition.
//!
//! Every stable identity in the toolchain — content fingerprints,
//! forbidden-matrix fingerprints, serve suite digests — is an FNV-1a
//! 64-bit hash. The offset basis and prime live here, once, so the
//! golden certificates under `certs/` and the cache keys in `rmd serve`
//! can never drift apart through a copy-paste edit.
//!
//! Two mixing granularities are part of the contract and are *not*
//! interchangeable:
//!
//! * [`Fnv64::write`] folds in individual bytes — the classic FNV-1a
//!   step, used for text (content fingerprints) and little-endian
//!   integer streams (serve suite digests).
//! * [`Fnv64::mix_u64`] folds a whole `u64` in a single step — used by
//!   the forbidden-matrix fingerprint, whose golden values predate any
//!   byte serialization of its `(x, y, latency)` triples.

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    h: u64,
}

/// The FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub const fn new() -> Self {
        Self { h: OFFSET_BASIS }
    }

    /// Folds in `bytes` one byte at a time (xor, then multiply).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix_u64(u64::from(b));
        }
    }

    /// Folds in one whole 64-bit value in a single xor-multiply step.
    ///
    /// Note this is **not** the same hash as `write(&v.to_le_bytes())`;
    /// callers pick a granularity and keep it forever, because golden
    /// artifacts pin the resulting values.
    pub fn mix_u64(&mut self, v: u64) {
        self.h ^= v;
        self.h = self.h.wrapping_mul(PRIME);
    }

    /// The current hash value.
    pub const fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn granularities_differ() {
        let mut bytes = Fnv64::new();
        bytes.write(&7u64.to_le_bytes());
        let mut whole = Fnv64::new();
        whole.mix_u64(7);
        assert_ne!(bytes.finish(), whole.finish());
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
