//! Typed indices for resources and operations.

use core::fmt;

/// Identifies a physical (or synthesized) resource within a machine
/// description.
///
/// Resource ids are dense indices assigned in declaration order by
/// [`MachineBuilder`](crate::MachineBuilder).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

/// Identifies an operation within a machine description.
///
/// Operation ids are dense indices assigned in declaration order by
/// [`MachineBuilder`](crate::MachineBuilder).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl ResourceId {
    /// Returns the id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl OpId {
    /// Returns the id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl From<ResourceId> for usize {
    fn from(id: ResourceId) -> usize {
        id.index()
    }
}

impl From<OpId> for usize {
    fn from(id: OpId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", ResourceId(3)), "r3");
        assert_eq!(format!("{:?}", OpId(7)), "op7");
        assert_eq!(format!("{}", OpId(0)), "op0");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ResourceId(1) < ResourceId(2));
        assert!(OpId(0) < OpId(10));
    }

    #[test]
    fn ids_convert_to_usize() {
        let r: usize = ResourceId(5).into();
        assert_eq!(r, 5);
        assert_eq!(OpId(9).index(), 9);
    }
}
