//! Dependency-free JSON serialization for machine descriptions.
//!
//! Replaces the former `serde`/`serde_json` dependency with a small
//! hand-rolled encoder and recursive-descent parser, keeping the exact
//! wire shape the serde derives produced:
//!
//! ```json
//! {
//!   "name": "m",
//!   "resources": [{"name": "r0"}],
//!   "operations": [
//!     {"name": "op0",
//!      "table": {"usages": [{"resource": 0, "cycle": 1}]},
//!      "base": null,
//!      "weight": 1.0}
//!   ]
//! }
//! ```
//!
//! Deserialization re-validates through the same checked assembly path
//! as every other constructor, so structurally well-formed JSON
//! that describes an invalid machine (dangling resource ids, empty
//! operations) is rejected just like any other construction path.

use crate::ids::ResourceId;
use crate::machine::{MachineDescription, Operation, Resource};
use crate::table::ReservationTable;
use core::fmt;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Why a JSON document could not be turned into a machine description.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum JsonError {
    /// The text is not syntactically valid JSON.
    Syntax {
        /// Byte offset of the offending character.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON is valid but not shaped like a machine description.
    Shape(String),
    /// The described machine failed semantic validation.
    Invalid(crate::MachineError),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::Shape(msg) => write!(f, "unexpected JSON shape: {msg}"),
            JsonError::Invalid(e) => write!(f, "invalid machine: {e}"),
        }
    }
}

impl std::error::Error for JsonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::MachineError> for JsonError {
    fn from(e: crate::MachineError) -> Self {
        JsonError::Invalid(e)
    }
}

/// Serialize a machine description to compact JSON.
pub fn to_json(m: &MachineDescription) -> String {
    let mut out = String::new();
    out.push_str("{\"name\":");
    write_string(&mut out, m.name());
    out.push_str(",\"resources\":[");
    for (i, r) in m.resources().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_string(&mut out, r.name());
        out.push('}');
    }
    out.push_str("],\"operations\":[");
    for (i, (_, op)) in m.ops().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_string(&mut out, op.name());
        out.push_str(",\"table\":{\"usages\":[");
        for (j, u) in op.table().usages().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"resource\":{},\"cycle\":{}}}", u.resource.0, u.cycle);
        }
        out.push_str("]},\"base\":");
        match op.base() {
            Some(b) => write_string(&mut out, b),
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"weight\":{}", fmt_f64(op.weight()));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parse a machine description from JSON produced by [`to_json`] (or any
/// JSON of the same shape), re-validating all machine invariants.
pub fn from_json(text: &str) -> Result<MachineDescription, JsonError> {
    let value = Parser::new(text).parse_document()?;
    let obj = value.as_object("machine description")?;
    let name = obj.required("name")?.as_string("name")?.to_owned();

    let mut resources = Vec::new();
    for (i, rv) in obj.required("resources")?.as_array("resources")?.iter().enumerate() {
        let robj = rv.as_object(&format!("resources[{i}]"))?;
        let rname = robj.required("name")?.as_string("resource name")?;
        resources.push(Resource::new(rname));
    }

    let mut operations = Vec::new();
    for (i, ov) in obj.required("operations")?.as_array("operations")?.iter().enumerate() {
        let oobj = ov.as_object(&format!("operations[{i}]"))?;
        let oname = oobj.required("name")?.as_string("operation name")?;
        let table_obj = oobj.required("table")?.as_object("table")?;
        let mut table = ReservationTable::new();
        for (j, uv) in table_obj.required("usages")?.as_array("usages")?.iter().enumerate() {
            let uobj = uv.as_object(&format!("usages[{j}]"))?;
            let resource = uobj.required("resource")?.as_u32("resource")?;
            let cycle = uobj.required("cycle")?.as_u32("cycle")?;
            table.reserve(ResourceId(resource), cycle);
        }
        let base = match oobj.get("base") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_string("base")?.to_owned()),
        };
        let weight = match oobj.get("weight") {
            None => 1.0,
            Some(v) => v.as_f64("weight")?,
        };
        operations.push(Operation::new(oname, table, base, weight));
    }

    Ok(MachineDescription::assemble(name, resources, operations)?)
}

/// Render a float so it parses back exactly; integral values keep a
/// trailing `.0` to stay visibly floating-point, as serde_json did.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>, JsonError> {
        match self {
            Value::Object(m) => Ok(m),
            other => Err(JsonError::Shape(format!(
                "expected {what} to be an object, found {}",
                other.kind()
            ))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(v) => Ok(v),
            other => Err(JsonError::Shape(format!(
                "expected {what} to be an array, found {}",
                other.kind()
            ))),
        }
    }

    fn as_string(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(JsonError::Shape(format!(
                "expected {what} to be a string, found {}",
                other.kind()
            ))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(JsonError::Shape(format!(
                "expected {what} to be a number, found {}",
                other.kind()
            ))),
        }
    }

    fn as_u32(&self, what: &str) -> Result<u32, JsonError> {
        let n = self.as_f64(what)?;
        if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
            Ok(n as u32)
        } else {
            Err(JsonError::Shape(format!(
                "expected {what} to be a u32, found {n}"
            )))
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a bool",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

trait ObjectExt {
    fn required(&self, key: &str) -> Result<&Value, JsonError>;
}

impl ObjectExt for BTreeMap<String, Value> {
    fn required(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::Shape(format!("missing key `{key}`")))
    }
}

/// Minimal recursive-descent JSON parser with a depth limit.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, JsonError> {
        let v = self.parse_value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: decode `\uD8xx\uDCxx`.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; the source is a &str so the
                    // bytes are valid UTF-8.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineBuilder;

    fn sample() -> MachineDescription {
        let mut b = MachineBuilder::new("m");
        let r0 = b.resource("alu");
        let r1 = b.resource("mem \"port\"");
        b.operation("add").usage(r0, 0).usage(r1, 2).finish();
        b.operation("ld")
            .usage(r1, 0)
            .base("load")
            .weight(2.5)
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let m = sample();
        let text = to_json(&m);
        let back = from_json(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn weights_and_bases_survive() {
        let m = sample();
        let back = from_json(&to_json(&m)).unwrap();
        let (_, op) = back.ops().nth(1).unwrap();
        assert_eq!(op.base(), Some("load"));
        assert_eq!(op.weight(), 2.5);
    }

    #[test]
    fn dangling_resource_id_is_rejected() {
        let text = r#"{"name":"m","resources":[{"name":"r0"}],
            "operations":[{"name":"op0",
                "table":{"usages":[{"resource":7,"cycle":0}]},
                "base":null,"weight":1.0}]}"#;
        match from_json(text) {
            Err(JsonError::Invalid(crate::MachineError::UnknownResource { .. })) => {}
            other => panic!("expected UnknownResource, got {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        match from_json("{\"name\": }") {
            Err(JsonError::Syntax { offset, .. }) => assert!(offset > 0),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn shape_errors_name_the_missing_key() {
        let e = from_json("{\"name\":\"m\"}").unwrap_err();
        assert!(e.to_string().contains("resources"), "{e}");
    }
}
