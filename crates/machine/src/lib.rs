//! Machine-description model for multipipeline processors.
//!
//! This crate provides the foundation for the reduced-machine-description
//! pipeline of Eichenberger & Davidson (PLDI 1996): a *machine description*
//! is a set of [`ReservationTable`]s, one per operation, written in terms
//! close to the actual hardware structure of a target machine. The rows of a
//! reservation table correspond to distinct [`Resource`]s and its columns to
//! cycles relative to the issue time of the operation; an entry at
//! `(resource, cycle)` means the resource is reserved for exclusive use in
//! that cycle.
//!
//! # Contents
//!
//! * [`MachineDescription`] — the top-level description, built with
//!   [`MachineBuilder`].
//! * [`ReservationTable`] and [`Usage`] — per-operation resource usage.
//! * [`alternatives`] — preprocessing that expands operations with
//!   alternative resource usages into *alternative operations* (paper §3).
//! * [`mdl`] — a small textual machine description language with a lexer,
//!   recursive-descent parser, and pretty-printer.
//! * [`models`] — the paper's running example machine plus descriptions of
//!   the DEC Alpha 21064, MIPS R3000/R3010, and Cydra 5 reconstructed from
//!   public architecture documentation.
//! * [`render`] — ASCII rendering of reservation tables (paper Figures 1
//!   and 4).
//!
//! # Example
//!
//! ```
//! use rmd_machine::{MachineBuilder, MachineDescription};
//!
//! let mut b = MachineBuilder::new("toy");
//! let alu = b.resource("alu");
//! let wb = b.resource("writeback-bus");
//! b.operation("add").usage(alu, 0).usage(wb, 1).finish();
//! b.operation("mul").usage(alu, 0).usage(alu, 1).usage(wb, 3).finish();
//! let machine: MachineDescription = b.build().unwrap();
//! assert_eq!(machine.num_resources(), 2);
//! assert_eq!(machine.num_operations(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alternatives;
mod builder;
mod fingerprint;
pub mod fnv;
mod ids;
#[cfg(feature = "json")]
pub mod json;
mod machine;
pub mod mdl;
pub mod models;
pub mod render;
mod table;

pub use builder::{MachineBuilder, OperationBuilder};
pub use fingerprint::content_fingerprint;
pub use ids::{OpId, ResourceId};
pub use machine::{MachineDescription, MachineError, Operation, Resource};
pub use table::{ReservationTable, Usage};
