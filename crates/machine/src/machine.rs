//! The top-level machine description.

use crate::ids::{OpId, ResourceId};
use crate::table::ReservationTable;
use core::fmt;
use std::collections::HashMap;

/// A named hardware resource (pipeline stage, bus, register port, ...).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Resource {
    name: String,
}

impl Resource {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Resource { name: name.into() }
    }

    /// The resource's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A named operation together with its resource requirements.
#[derive(Clone, PartialEq, Debug)]
pub struct Operation {
    name: String,
    table: ReservationTable,
    /// For operations produced by alternatives expansion: the name of the
    /// original operation they were expanded from.
    base: Option<String>,
    /// Relative issue frequency used when averaging per-operation metrics.
    weight: f64,
}

impl Operation {
    pub(crate) fn new(
        name: impl Into<String>,
        table: ReservationTable,
        base: Option<String>,
        weight: f64,
    ) -> Self {
        Operation {
            name: name.into(),
            table,
            base,
            weight,
        }
    }

    /// The operation's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation's reservation table.
    pub fn table(&self) -> &ReservationTable {
        &self.table
    }

    /// For alternative operations (paper §3), the original operation this
    /// one was expanded from; `None` for ordinary operations.
    pub fn base(&self) -> Option<&str> {
        self.base.as_deref()
    }

    /// Relative issue frequency (defaults to 1.0).
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

/// Errors arising while building or validating a machine description.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum MachineError {
    /// Two resources were declared with the same name.
    DuplicateResource(String),
    /// Two operations were declared with the same name.
    DuplicateOperation(String),
    /// An operation reserves no resources; such an operation can never
    /// conflict and the reduction algorithms require every operation to
    /// have at least the 0 self-contention latency.
    EmptyOperation(String),
    /// The description declares no operations.
    NoOperations,
    /// A usage refers to a resource id that was never declared.
    UnknownResource {
        /// The operation whose table holds the dangling reference.
        operation: String,
        /// The undeclared resource id.
        resource: ResourceId,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::DuplicateResource(n) => {
                write!(f, "duplicate resource name `{n}`")
            }
            MachineError::DuplicateOperation(n) => {
                write!(f, "duplicate operation name `{n}`")
            }
            MachineError::EmptyOperation(n) => {
                write!(f, "operation `{n}` reserves no resources")
            }
            MachineError::NoOperations => write!(f, "machine declares no operations"),
            MachineError::UnknownResource { operation, resource } => {
                write!(f, "operation `{operation}` uses undeclared resource {resource}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A complete machine description: a resource set plus one reservation
/// table per operation (paper §3).
///
/// Construct one with [`MachineBuilder`](crate::MachineBuilder), parse one
/// from text with [`mdl::parse`](crate::mdl::parse), or use a prebuilt
/// model from [`models`](crate::models).
#[derive(Clone, PartialEq, Debug)]
pub struct MachineDescription {
    name: String,
    resources: Vec<Resource>,
    operations: Vec<Operation>,
    op_index: HashMap<String, OpId>,
}

impl MachineDescription {
    pub(crate) fn assemble(
        name: String,
        resources: Vec<Resource>,
        operations: Vec<Operation>,
    ) -> Result<Self, MachineError> {
        if operations.is_empty() {
            return Err(MachineError::NoOperations);
        }
        for op in &operations {
            if op.table().is_empty() {
                return Err(MachineError::EmptyOperation(op.name().to_owned()));
            }
            for u in op.table().usages() {
                if u.resource.index() >= resources.len() {
                    return Err(MachineError::UnknownResource {
                        operation: op.name().to_owned(),
                        resource: u.resource,
                    });
                }
            }
        }
        let op_index = operations
            .iter()
            .enumerate()
            .map(|(i, op)| (op.name().to_owned(), OpId(i as u32)))
            .collect();
        Ok(MachineDescription {
            name,
            resources,
            operations,
            op_index,
        })
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of declared resources.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of declared operations.
    pub fn num_operations(&self) -> usize {
        self.operations.len()
    }

    /// All resources, indexable by [`ResourceId`].
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// All operations, indexable by [`OpId`].
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// The resource with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this machine.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this machine.
    pub fn operation(&self, id: OpId) -> &Operation {
        &self.operations[id.index()]
    }

    /// Looks up an operation by name.
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        self.op_index.get(name).copied()
    }

    /// Iterates over `(OpId, &Operation)` pairs.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &Operation)> {
        self.operations
            .iter()
            .enumerate()
            .map(|(i, op)| (OpId(i as u32), op))
    }

    /// Total number of resource usages across all reservation tables.
    pub fn total_usages(&self) -> usize {
        self.operations.iter().map(|o| o.table().num_usages()).sum()
    }

    /// Average number of resource usages per operation (uniform weights,
    /// as assumed in the paper's §6 tables).
    pub fn avg_usages_per_op(&self) -> f64 {
        self.total_usages() as f64 / self.num_operations() as f64
    }

    /// The longest reservation table, in cycles.
    pub fn max_table_length(&self) -> u32 {
        self.operations
            .iter()
            .map(|o| o.table().length())
            .max()
            .unwrap_or(0)
    }

    /// Returns a new description containing only the named operations, with
    /// resources no remaining operation uses removed (ids are renumbered).
    ///
    /// This mirrors the paper's Table 2 / Figure 4 "subset of the Cydra 5
    /// actually used in the 1327 loop benchmark".
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoOperations`] if `names` matches nothing;
    /// unknown names are ignored.
    pub fn restrict(&self, names: &[&str]) -> Result<MachineDescription, MachineError> {
        let keep: Vec<&Operation> = names
            .iter()
            .filter_map(|n| self.op_by_name(n))
            .map(|id| self.operation(id))
            .collect();
        // Which resources survive?
        let mut used = vec![false; self.resources.len()];
        for op in &keep {
            for u in op.table().usages() {
                used[u.resource.index()] = true;
            }
        }
        let mut remap: Vec<Option<ResourceId>> = vec![None; self.resources.len()];
        let mut resources = Vec::new();
        for (i, r) in self.resources.iter().enumerate() {
            if used[i] {
                remap[i] = Some(ResourceId(resources.len() as u32));
                resources.push(r.clone());
            }
        }
        let operations = keep
            .into_iter()
            .map(|op| {
                let table = op
                    .table()
                    .usages()
                    .iter()
                    .map(|u| (remap[u.resource.index()].expect("used resource"), u.cycle))
                    .collect();
                Operation::new(
                    op.name().to_owned(),
                    table,
                    op.base().map(str::to_owned),
                    op.weight(),
                )
            })
            .collect();
        MachineDescription::assemble(format!("{}-subset", self.name), resources, operations)
    }
}

impl fmt::Display for MachineDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine `{}`: {} resources, {} operations, {} usages",
            self.name,
            self.num_resources(),
            self.num_operations(),
            self.total_usages()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{MachineBuilder, MachineError};

    #[test]
    fn assemble_rejects_empty_operation() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("ok").usage(r, 0).finish();
        b.operation("bad").finish();
        assert!(matches!(
            b.build(),
            Err(MachineError::EmptyOperation(n)) if n == "bad"
        ));
    }

    #[test]
    fn assemble_rejects_no_operations() {
        let mut b = MachineBuilder::new("m");
        b.resource("r");
        assert!(matches!(b.build(), Err(MachineError::NoOperations)));
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let mut b = MachineBuilder::new("m");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish();
        b.operation("y").usage(r, 1).finish();
        let m = b.build().unwrap();
        let y = m.op_by_name("y").unwrap();
        assert_eq!(m.operation(y).name(), "y");
        assert_eq!(m.op_by_name("z"), None);
    }

    #[test]
    fn display_summarizes() {
        let mut b = MachineBuilder::new("toy");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish();
        let m = b.build().unwrap();
        assert_eq!(
            m.to_string(),
            "machine `toy`: 1 resources, 1 operations, 1 usages"
        );
    }

    #[test]
    fn stats_count_usages() {
        let mut b = MachineBuilder::new("m");
        let r0 = b.resource("a");
        let r1 = b.resource("b");
        b.operation("x").usage(r0, 0).usage(r1, 1).finish();
        b.operation("y").usage(r1, 5).finish();
        let m = b.build().unwrap();
        assert_eq!(m.total_usages(), 3);
        assert!((m.avg_usages_per_op() - 1.5).abs() < 1e-12);
        assert_eq!(m.max_table_length(), 6);
    }
}
