//! Diagnostics for the MDL parser.

use core::fmt;

/// A half-open byte range into the source text, with 1-based line/column of
/// its start for human-readable messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub column: u32,
}

impl Span {
    pub(crate) fn new(start: usize, end: usize, line: u32, column: u32) -> Self {
        Span {
            start,
            end,
            line,
            column,
        }
    }

    /// True when the span names no source location (zero-length byte range
    /// or a zeroed line number). Diagnostics produced by the parser always
    /// carry non-empty spans; the default span is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start || self.line == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// What went wrong while parsing MDL.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A character that can't start any token.
    UnexpectedChar(char),
    /// A string literal without a closing quote.
    UnterminatedString,
    /// A `/* ... */` comment without a closing `*/`.
    UnterminatedComment,
    /// A number too large to represent.
    NumberOverflow,
    /// The parser expected one thing and found another.
    Expected {
        /// Description of what was expected (e.g. "`;`", "identifier").
        expected: String,
        /// Description of what was found.
        found: String,
    },
    /// A `use` referenced an undeclared resource.
    UnknownResource(String),
    /// An empty cycle range such as `4..4`.
    EmptyRange,
    /// A constraint violated after parsing (duplicate names, empty ops...).
    Semantic(String),
}

/// An MDL parse error with its source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    kind: ParseErrorKind,
    span: Span,
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }

    pub(crate) fn semantic(msg: String, span: Span) -> Self {
        ParseError {
            kind: ParseErrorKind::Semantic(msg),
            span,
        }
    }

    /// The kind of error.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }

    /// Where in the source the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => {
                write!(f, "{}: unexpected character `{c}`", self.span)
            }
            ParseErrorKind::UnterminatedString => {
                write!(f, "{}: unterminated string literal", self.span)
            }
            ParseErrorKind::UnterminatedComment => {
                write!(f, "{}: unterminated block comment", self.span)
            }
            ParseErrorKind::NumberOverflow => {
                write!(f, "{}: number out of range", self.span)
            }
            ParseErrorKind::Expected { expected, found } => {
                write!(f, "{}: expected {expected}, found {found}", self.span)
            }
            ParseErrorKind::UnknownResource(name) => {
                write!(f, "{}: unknown resource `{name}`", self.span)
            }
            ParseErrorKind::EmptyRange => {
                write!(f, "{}: empty cycle range", self.span)
            }
            ParseErrorKind::Semantic(msg) if self.span.is_empty() => {
                write!(f, "invalid machine: {msg}")
            }
            ParseErrorKind::Semantic(msg) => {
                write!(f, "{}: invalid machine: {msg}", self.span)
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new(
            ParseErrorKind::UnexpectedChar('%'),
            Span::new(10, 11, 3, 7),
        );
        assert_eq!(e.to_string(), "3:7: unexpected character `%`");
    }

    #[test]
    fn expected_message_reads_naturally() {
        let e = ParseError::new(
            ParseErrorKind::Expected {
                expected: "`;`".into(),
                found: "`}`".into(),
            },
            Span::new(0, 1, 1, 1),
        );
        assert_eq!(e.to_string(), "1:1: expected `;`, found `}`");
    }
}
