//! Hand-written lexer for MDL.

use super::error::{ParseError, ParseErrorKind, Span};
use core::fmt;

/// One lexical token.
#[derive(Clone, PartialEq, Debug)]
pub(crate) enum Tok {
    Ident(String),
    Str(String),
    Int(u32),
    Float(f64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    At,
    DotDot,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::Float(x) => write!(f, "number `{x}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::At => write!(f, "`@`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its source span.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

/// Lexes the whole input eagerly; errors carry spans.
pub(crate) fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! span1 {
        ($start:expr, $len:expr, $l:expr, $c:expr) => {
            Span::new($start, $start + $len, $l, $c)
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tline, tcol, tstart) = (line, col, i);
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                col += 2;
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        closed = true;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                if !closed {
                    return Err(ParseError::new(
                        ParseErrorKind::UnterminatedComment,
                        span1!(tstart, 2, tline, tcol),
                    ));
                }
            }
            '{' | '}' | '[' | ']' | ';' | ',' | '@' => {
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    _ => Tok::At,
                };
                out.push(SpannedTok {
                    tok,
                    span: span1!(tstart, 1, tline, tcol),
                });
                i += 1;
                col += 1;
            }
            '.' if bytes.get(i + 1) == Some(&b'.') => {
                out.push(SpannedTok {
                    tok: Tok::DotDot,
                    span: span1!(tstart, 2, tline, tcol),
                });
                i += 2;
                col += 2;
            }
            '"' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b'"' {
                    return Err(ParseError::new(
                        ParseErrorKind::UnterminatedString,
                        span1!(tstart, 1, tline, tcol),
                    ));
                }
                let s = src[i + 1..j].to_owned();
                let len = j + 1 - i;
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    span: span1!(tstart, len, tline, tcol),
                });
                col += len as u32;
                i = j + 1;
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // A `.` followed by a digit makes it a float; `..` is a
                // range and must not be consumed.
                let is_float = bytes.get(j) == Some(&b'.')
                    && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit());
                if is_float {
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    let text = &src[i..j];
                    let x: f64 = text.parse().map_err(|_| {
                        ParseError::new(
                            ParseErrorKind::NumberOverflow,
                            span1!(tstart, j - i, tline, tcol),
                        )
                    })?;
                    out.push(SpannedTok {
                        tok: Tok::Float(x),
                        span: span1!(tstart, j - i, tline, tcol),
                    });
                } else {
                    let text = &src[i..j];
                    // Digit runs too large for a u32 still lex — as floats —
                    // so huge weights printed by the pretty-printer round-trip;
                    // contexts that require an integer (cycle numbers, bank
                    // sizes) then report a spanned "expected integer" instead.
                    match text.parse::<u32>() {
                        Ok(n) => out.push(SpannedTok {
                            tok: Tok::Int(n),
                            span: span1!(tstart, j - i, tline, tcol),
                        }),
                        Err(_) => {
                            let x: f64 = text.parse().map_err(|_| {
                                ParseError::new(
                                    ParseErrorKind::NumberOverflow,
                                    span1!(tstart, j - i, tline, tcol),
                                )
                            })?;
                            out.push(SpannedTok {
                                tok: Tok::Float(x),
                                span: span1!(tstart, j - i, tline, tcol),
                            });
                        }
                    }
                }
                col += (j - i) as u32;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'#'
                        || bytes[j] == b'-'
                        || bytes[j] == b'.' && bytes.get(j + 1) != Some(&b'.'))
                {
                    // Allow `.` inside identifiers (e.g. `mul.d`) but not
                    // when it starts a `..` range token.
                    if bytes[j] == b'.' && bytes.get(j + 1).map_or(true, |b| *b == b'.') {
                        break;
                    }
                    j += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(src[i..j].to_owned()),
                    span: span1!(tstart, j - i, tline, tcol),
                });
                col += (j - i) as u32;
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedChar(other),
                    span1!(tstart, other.len_utf8(), tline, tcol),
                ));
            }
        }
    }
    // The end-of-input span covers one (virtual) byte past the source so
    // diagnostics at Eof still carry a non-empty span; clamp to the source
    // length before slicing with it.
    out.push(SpannedTok {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len() + 1, line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        assert_eq!(
            toks("op x { use r @ 0..4; }"),
            vec![
                Tok::Ident("op".into()),
                Tok::Ident("x".into()),
                Tok::LBrace,
                Tok::Ident("use".into()),
                Tok::Ident("r".into()),
                Tok::At,
                Tok::Int(0),
                Tok::DotDot,
                Tok::Int(4),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_floats_vs_ranges() {
        assert_eq!(toks("2.5"), vec![Tok::Float(2.5), Tok::Eof]);
        assert_eq!(
            toks("2..5"),
            vec![Tok::Int(2), Tok::DotDot, Tok::Int(5), Tok::Eof]
        );
    }

    #[test]
    fn lexes_dotted_identifiers() {
        assert_eq!(toks("mul.d"), vec![Tok::Ident("mul.d".into()), Tok::Eof]);
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("a // c\n b /* x\n y */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].span.line, 1);
        assert_eq!(ts[0].span.column, 1);
        assert_eq!(ts[1].span.line, 2);
        assert_eq!(ts[1].span.column, 3);
    }

    #[test]
    fn reports_unterminated_string() {
        let e = lex("\"abc").unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::UnterminatedString));
    }

    #[test]
    fn reports_unterminated_comment() {
        let e = lex("/* abc").unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::UnterminatedComment));
    }

    #[test]
    fn reports_unexpected_char() {
        let e = lex("op %").unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::UnexpectedChar('%')));
        assert_eq!(e.span().line, 1);
        assert_eq!(e.span().column, 4);
    }

    #[test]
    fn big_integers_lex_as_floats() {
        // 10^20 does not fit a u32; it must still lex (as a float) so
        // printed weights of any magnitude round-trip through the parser.
        assert_eq!(toks("100000000000000000000"), vec![Tok::Float(1e20), Tok::Eof]);
    }

    #[test]
    fn eof_span_is_nonempty() {
        let ts = lex("ab").unwrap();
        let eof = &ts[1];
        assert_eq!(eof.tok, Tok::Eof);
        assert!(eof.span.end > eof.span.start);
        assert_eq!(eof.span.line, 1);
    }
}
