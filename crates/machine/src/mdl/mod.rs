//! MDL — a small textual machine description language.
//!
//! MDL lets machine descriptions live in plain text files that are easy to
//! diff and review, mirroring how production compilers (GCC's `.md` files,
//! LLVM's TableGen itineraries) describe pipelines. The surface syntax:
//!
//! ```text
//! // line comment, /* block comment */
//! machine "cydra5-subset" {
//!     resources {
//!         mem_port0; mem_port1;
//!         fmul_stage[4];        // a bank: fmul_stage0 .. fmul_stage3
//!     }
//!
//!     op load weight 2.0 {
//!         use mem_port0 @ 0;
//!         use fmul_stage0 @ 2..6;   // half-open range: cycles 2,3,4,5
//!     }
//!
//!     op store alt {                // alternative resource usages
//!         { use mem_port0 @ 0; }
//!         { use mem_port1 @ 0; }
//!     }
//! }
//! ```
//!
//! [`parse`] yields an [`AltDescription`]; [`parse_machine`] additionally
//! runs the alternatives expansion of paper §3. [`print()`] renders a
//! description back to MDL text, and parsing its output yields an equal
//! description (round-trip property, tested).
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     machine "toy" {
//!         resources { alu; bus; }
//!         op add { use alu @ 0; use bus @ 1; }
//!     }
//! "#;
//! let (machine, _groups) = rmd_machine::mdl::parse_machine(src).unwrap();
//! assert_eq!(machine.name(), "toy");
//! assert_eq!(machine.num_resources(), 2);
//! ```

mod error;
mod lexer;
mod parser;
mod printer;

pub use error::{ParseError, ParseErrorKind, Span};
pub use parser::SourceMap;
pub use printer::{print, print_alt};

use crate::alternatives::{AltDescription, AltGroups};
use crate::machine::{MachineDescription, MachineError};

/// Parses MDL source into an [`AltDescription`] (alternatives not yet
/// expanded).
///
/// # Errors
///
/// Returns a [`ParseError`] with a source span on malformed input.
pub fn parse(src: &str) -> Result<AltDescription, ParseError> {
    Ok(parse_with_source_map(src)?.0)
}

/// Like [`parse`], but also returns the [`SourceMap`] recording where each
/// resource and operation was declared — the hook external tooling (the
/// `rmd-analyze` linter) uses to attach findings to `.mdl` source lines.
///
/// # Errors
///
/// Returns a [`ParseError`] with a source span on malformed input.
pub fn parse_with_source_map(src: &str) -> Result<(AltDescription, SourceMap), ParseError> {
    let mut p = parser::Parser::new(src)?;
    let desc = p.parse_file()?;
    Ok((desc, p.take_map()))
}

/// Parses MDL source and expands alternatives, yielding the flat
/// [`MachineDescription`] and its [`AltGroups`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or if the expanded machine
/// fails validation. Every error — including post-parse semantic ones —
/// carries a non-empty span into the source.
pub fn parse_machine(src: &str) -> Result<(MachineDescription, AltGroups), ParseError> {
    let (desc, map) = parse_with_source_map(src)?;
    desc.expand()
        .map_err(|e| ParseError::semantic(e.to_string(), semantic_span(&e, &desc, &map)))
}

/// Best-effort span for a post-parse validation failure: point at the
/// offending declaration when the error names one, else at the machine
/// name.
fn semantic_span(e: &MachineError, desc: &AltDescription, map: &SourceMap) -> Span {
    let span = match e {
        MachineError::DuplicateResource(name) => {
            map.resource_span(desc.resource_names(), name)
        }
        MachineError::DuplicateOperation(name) | MachineError::EmptyOperation(name) => {
            let names: Vec<&str> = desc.operations().iter().map(|o| o.name()).collect();
            map.op_span(&names, name)
        }
        _ => None,
    };
    span.unwrap_or(map.machine_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_print_round_trip() {
        let src = r#"
            machine "rt" {
                resources { a; b; stage[2]; }
                op x weight 2.5 { use a @ 0; use stage1 @ 1..4; }
                op y alt {
                    { use a @ 0; }
                    { use b @ 0; }
                }
            }
        "#;
        let d1 = parse(src).unwrap();
        let printed = print_alt(&d1);
        let d2 = parse(&printed).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn machine_round_trip_via_print() {
        let src = r#"
            machine "m" {
                resources { r0; r1; }
                op a { use r0 @ 0, 2; use r1 @ 1; }
            }
        "#;
        let (m1, _) = parse_machine(src).unwrap();
        let printed = print(&m1);
        let (m2, _) = parse_machine(&printed).unwrap();
        assert_eq!(m1, m2);
    }
}
