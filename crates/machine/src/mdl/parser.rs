//! Recursive-descent parser for MDL.

use super::error::{ParseError, ParseErrorKind, Span};
use super::lexer::{lex, SpannedTok, Tok};
use crate::alternatives::AltDescription;
use crate::ids::ResourceId;
use crate::table::ReservationTable;
use std::collections::HashMap;

/// Source locations for the declarations of a parsed description, parallel
/// to the [`AltDescription`] produced alongside it: `resources[i]` is the
/// declaration span of resource id `i` (bank members share the bank's
/// span), `ops[i]` covers the name of operation `i`, and
/// `alternatives[i]` holds the span of each candidate body's opening
/// brace. Lint tooling uses this to point findings at `.mdl` source lines.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SourceMap {
    /// Span of the machine-name string literal.
    pub machine_name: Span,
    /// Declaration span per resource id.
    pub resources: Vec<Span>,
    /// Name span per operation.
    pub ops: Vec<Span>,
    /// Opening-brace span per alternative body, per operation.
    pub alternatives: Vec<Vec<Span>>,
}

impl SourceMap {
    /// Span of the last declaration of resource `name`, if recorded.
    /// "Last" matters for duplicate-declaration diagnostics, which should
    /// point at the redeclaration rather than the original.
    pub fn resource_span(&self, names: &[String], name: &str) -> Option<Span> {
        names
            .iter()
            .zip(&self.resources)
            .rev()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, &s)| s)
    }

    /// Span of the last operation named `name`. Accepts expanded
    /// alternative names (`load#1` maps back to `load`).
    pub fn op_span(&self, names: &[&str], name: &str) -> Option<Span> {
        let base = name.split('#').next().unwrap_or(name);
        names
            .iter()
            .zip(&self.ops)
            .rev()
            .find(|(n, _)| **n == name || **n == base)
            .map(|(_, &s)| s)
    }
}

pub(crate) struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    map: SourceMap,
}

impl Parser {
    pub(crate) fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            map: SourceMap::default(),
        })
    }

    /// The source map recorded by a successful `parse_file`.
    pub(crate) fn take_map(&mut self) -> SourceMap {
        std::mem::take(&mut self.map)
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expected(&self, what: &str) -> ParseError {
        ParseError::new(
            ParseErrorKind::Expected {
                expected: what.to_owned(),
                found: self.peek().to_string(),
            },
            self.span(),
        )
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Tok::Ident(_) => match self.bump() {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.expected("identifier")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            _ => Err(self.expected(&format!("`{kw}`"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.expected(what))
        }
    }

    fn expect_int(&mut self) -> Result<u32, ParseError> {
        match self.peek() {
            Tok::Int(_) => match self.bump() {
                Tok::Int(n) => Ok(n),
                _ => unreachable!(),
            },
            _ => Err(self.expected("integer")),
        }
    }

    /// `file := "machine" STRING "{" resources op* "}"`
    pub(crate) fn parse_file(&mut self) -> Result<AltDescription, ParseError> {
        self.expect_keyword("machine")?;
        let name_span = self.span();
        let name = match self.peek() {
            Tok::Str(_) => match self.bump() {
                Tok::Str(s) => s,
                _ => unreachable!(),
            },
            _ => return Err(self.expected("machine name string")),
        };
        self.map.machine_name = name_span;
        self.expect_tok(Tok::LBrace, "`{`")?;
        let mut desc = AltDescription::new(name);
        let mut res_index: HashMap<String, ResourceId> = HashMap::new();
        self.parse_resources(&mut desc, &mut res_index)?;
        while !matches!(self.peek(), Tok::RBrace) {
            self.parse_op(&mut desc, &res_index)?;
        }
        self.expect_tok(Tok::RBrace, "`}`")?;
        match self.peek() {
            Tok::Eof => Ok(desc),
            _ => Err(self.expected("end of input")),
        }
    }

    /// `resources := "resources" "{" (resdecl ";")* "}"`,
    /// `resdecl := IDENT ("[" INT "]")?`
    fn parse_resources(
        &mut self,
        desc: &mut AltDescription,
        index: &mut HashMap<String, ResourceId>,
    ) -> Result<(), ParseError> {
        self.expect_keyword("resources")?;
        self.expect_tok(Tok::LBrace, "`{`")?;
        while !matches!(self.peek(), Tok::RBrace) {
            let decl_span = self.span();
            let name = self.expect_ident()?;
            if matches!(self.peek(), Tok::LBracket) {
                self.bump();
                let n = self.expect_int()?;
                self.expect_tok(Tok::RBracket, "`]`")?;
                for i in 0..n {
                    let full = format!("{name}{i}");
                    let id = desc.resource(full.clone());
                    index.insert(full, id);
                    self.map.resources.push(decl_span);
                }
            } else {
                let id = desc.resource(name.clone());
                index.insert(name, id);
                self.map.resources.push(decl_span);
            }
            self.expect_tok(Tok::Semi, "`;`")?;
        }
        self.expect_tok(Tok::RBrace, "`}`")?;
        Ok(())
    }

    /// `op := "op" IDENT ("weight" NUM)? (body | "alt" "{" body+ "}")`
    fn parse_op(
        &mut self,
        desc: &mut AltDescription,
        index: &HashMap<String, ResourceId>,
    ) -> Result<(), ParseError> {
        self.expect_keyword("op")?;
        let name_span = self.span();
        let name = self.expect_ident()?;
        let mut weight = 1.0f64;
        if self.eat_keyword("weight") {
            weight = match self.peek() {
                Tok::Float(_) => match self.bump() {
                    Tok::Float(x) => x,
                    _ => unreachable!(),
                },
                Tok::Int(_) => match self.bump() {
                    Tok::Int(n) => f64::from(n),
                    _ => unreachable!(),
                },
                _ => return Err(self.expected("number after `weight`")),
            };
        }
        let mut tables = Vec::new();
        let mut body_spans = Vec::new();
        if self.eat_keyword("alt") {
            self.expect_tok(Tok::LBrace, "`{`")?;
            while !matches!(self.peek(), Tok::RBrace) {
                body_spans.push(self.span());
                tables.push(self.parse_body(index)?);
            }
            self.expect_tok(Tok::RBrace, "`}`")?;
            if tables.is_empty() {
                return Err(self.expected("at least one alternative body"));
            }
        } else {
            body_spans.push(self.span());
            tables.push(self.parse_body(index)?);
        }
        self.map.ops.push(name_span);
        self.map.alternatives.push(body_spans);
        let mut ob = desc.operation(name).weight(weight);
        for t in tables {
            ob = ob.alternative(t);
        }
        ob.finish();
        Ok(())
    }

    /// `body := "{" (usedecl ";")* "}"`,
    /// `usedecl := "use" IDENT "@" cyclespec ("," cyclespec)*`,
    /// `cyclespec := INT | INT ".." INT`
    fn parse_body(
        &mut self,
        index: &HashMap<String, ResourceId>,
    ) -> Result<ReservationTable, ParseError> {
        self.expect_tok(Tok::LBrace, "`{`")?;
        let mut table = ReservationTable::new();
        while !matches!(self.peek(), Tok::RBrace) {
            self.expect_keyword("use")?;
            let rspan = self.span();
            let rname = self.expect_ident()?;
            let &rid = index.get(&rname).ok_or_else(|| {
                ParseError::new(ParseErrorKind::UnknownResource(rname.clone()), rspan)
            })?;
            self.expect_tok(Tok::At, "`@`")?;
            loop {
                let span = self.span();
                let from = self.expect_int()?;
                if matches!(self.peek(), Tok::DotDot) {
                    self.bump();
                    let to = self.expect_int()?;
                    if to <= from {
                        return Err(ParseError::new(ParseErrorKind::EmptyRange, span));
                    }
                    for c in from..to {
                        table.reserve(rid, c);
                    }
                } else {
                    table.reserve(rid, from);
                }
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_tok(Tok::Semi, "`;`")?;
        }
        self.expect_tok(Tok::RBrace, "`}`")?;
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdl::{parse, parse_machine, ParseErrorKind};

    #[test]
    fn parses_minimal_machine() {
        let (m, _) = parse_machine(
            r#"machine "m" { resources { r; } op x { use r @ 0; } }"#,
        )
        .unwrap();
        assert_eq!(m.name(), "m");
        assert_eq!(m.num_operations(), 1);
        assert_eq!(m.max_table_length(), 1);
    }

    #[test]
    fn parses_banks_ranges_and_lists() {
        let (m, _) = parse_machine(
            r#"machine "m" {
                resources { s[3]; }
                op x { use s0 @ 0, 2; use s2 @ 4..7; }
            }"#,
        )
        .unwrap();
        let op = m.operation(m.op_by_name("x").unwrap());
        assert_eq!(op.table().usage_set(ResourceId(0)), vec![0, 2]);
        assert_eq!(op.table().usage_set(ResourceId(2)), vec![4, 5, 6]);
    }

    #[test]
    fn parses_alternatives() {
        let d = parse(
            r#"machine "m" {
                resources { p0; p1; }
                op ld alt { { use p0 @ 0; } { use p1 @ 0; } }
            }"#,
        )
        .unwrap();
        assert_eq!(d.operations()[0].alternatives().len(), 2);
        let (m, g) = d.expand().unwrap();
        assert_eq!(m.num_operations(), 2);
        assert_eq!(g.group_of_base("ld").unwrap().len(), 2);
    }

    #[test]
    fn parses_integer_and_float_weights() {
        let d = parse(
            r#"machine "m" {
                resources { r; }
                op a weight 3 { use r @ 0; }
                op b weight 0.5 { use r @ 0; }
            }"#,
        )
        .unwrap();
        let (m, _) = d.expand().unwrap();
        assert!((m.operations()[0].weight() - 3.0).abs() < 1e-12);
        assert!((m.operations()[1].weight() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_resource_is_reported_with_name() {
        let e = parse(r#"machine "m" { resources { r; } op x { use q @ 0; } }"#).unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::UnknownResource(n) if n == "q"));
    }

    #[test]
    fn empty_range_is_rejected() {
        let e = parse(r#"machine "m" { resources { r; } op x { use r @ 4..4; } }"#).unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::EmptyRange));
    }

    #[test]
    fn missing_semicolon_is_reported() {
        let e = parse(r#"machine "m" { resources { r; } op x { use r @ 0 } }"#).unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::Expected { .. }));
        assert_eq!(e.to_string(), "1:49: expected `;`, found `}`");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let e = parse(r#"machine "m" { resources { r; } op x { use r @ 0; } } extra"#)
            .unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::Expected { .. }));
    }

    #[test]
    fn source_map_records_declaration_spans() {
        let src = "machine \"m\" {\n    resources { bank[2]; solo; }\n    op x { use solo @ 0; }\n    op y alt {\n        { use bank0 @ 0; }\n        { use bank1 @ 0; }\n    }\n}";
        let (d, map) = crate::mdl::parse_with_source_map(src).unwrap();
        assert_eq!(map.machine_name.line, 1);
        // Bank members share the bank's declaration span.
        assert_eq!(map.resources.len(), 3);
        assert_eq!(map.resources[0], map.resources[1]);
        assert_eq!(map.resources[0].line, 2);
        assert_eq!(map.resources[2].line, 2);
        assert_ne!(map.resources[1], map.resources[2]);
        assert_eq!(map.ops.len(), 2);
        assert_eq!(map.ops[0].line, 3);
        assert_eq!(map.ops[1].line, 4);
        assert_eq!(map.alternatives[0].len(), 1);
        assert_eq!(map.alternatives[1].len(), 2);
        assert_eq!(map.alternatives[1][1].line, 6);
        // Lookup helpers resolve by (possibly expanded) name.
        assert_eq!(
            map.resource_span(d.resource_names(), "solo").unwrap().line,
            2
        );
        let names: Vec<&str> = d.operations().iter().map(|o| o.name()).collect();
        assert_eq!(map.op_span(&names, "y#1").unwrap().line, 4);
    }

    #[test]
    fn empty_alt_block_is_rejected() {
        let e = parse(r#"machine "m" { resources { r; } op x alt { } }"#).unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::Expected { .. }));
    }
}
