//! Pretty-printing machine descriptions back to MDL text.

use crate::alternatives::AltDescription;
use crate::machine::MachineDescription;
use crate::table::ReservationTable;
use std::fmt::Write as _;

/// Renders a flat [`MachineDescription`] as MDL source.
///
/// The output parses back (via [`parse_machine`](super::parse_machine)) to
/// an equal description. Runs of alternative operations expanded from a
/// common base (`X#0 .. X#{n-1}`, equal weights) are re-collapsed into an
/// `alt` block so base attribution survives the round trip; a group whose
/// members were renamed, filtered, or reweighted (e.g. by
/// [`restrict`](MachineDescription::restrict)) falls back to flat
/// printing, which drops the base.
pub fn print(m: &MachineDescription) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "machine \"{}\" {{", m.name());
    let _ = writeln!(out, "    resources {{");
    for r in m.resources() {
        let _ = writeln!(out, "        {};", r.name());
    }
    let _ = writeln!(out, "    }}");
    let ops = m.operations();
    let mut i = 0;
    while i < ops.len() {
        if let Some(j) = collapsible_group_end(m, i) {
            let base = ops[i].base().expect("group starts with a based op");
            let _ = write!(out, "\n    op {base}");
            let total = ops[i].weight() * (j - i) as f64;
            if (total - 1.0).abs() > 1e-12 {
                let _ = write!(out, " weight {total}");
            }
            let _ = writeln!(out, " alt {{");
            for op in &ops[i..j] {
                let _ = writeln!(out, "        {{");
                print_body(&mut out, m, op.table(), "            ");
                let _ = writeln!(out, "        }}");
            }
            let _ = writeln!(out, "    }}");
            i = j;
        } else {
            let op = &ops[i];
            let _ = write!(out, "\n    op {}", op.name());
            if (op.weight() - 1.0).abs() > 1e-12 {
                let _ = write!(out, " weight {}", op.weight());
            }
            let _ = writeln!(out, " {{");
            print_body(&mut out, m, op.table(), "        ");
            let _ = writeln!(out, "    }}");
            i += 1;
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// If the operations starting at `i` form a run that re-expansion would
/// reproduce exactly — names `base#0..base#{n-1}` in order, equal weights
/// whose sum divides back without rounding — returns the run's end index.
fn collapsible_group_end(m: &MachineDescription, i: usize) -> Option<usize> {
    let ops = m.operations();
    let base = ops[i].base()?;
    let mut j = i;
    while j < ops.len() && ops[j].base() == Some(base) {
        j += 1;
    }
    let n = j - i;
    if n < 2 {
        return None;
    }
    let w = ops[i].weight();
    let faithful = ops[i..j].iter().enumerate().all(|(k, op)| {
        op.name() == format!("{base}#{k}") && op.weight() == w
    }) && (w * n as f64) / n as f64 == w;
    faithful.then_some(j)
}

/// Renders an [`AltDescription`] (alternatives preserved) as MDL source.
pub fn print_alt(d: &AltDescription) -> String {
    let names = d.resource_names();
    let mut out = String::new();
    let _ = writeln!(out, "machine \"{}\" {{", d.name());
    let _ = writeln!(out, "    resources {{");
    for n in names {
        let _ = writeln!(out, "        {n};");
    }
    let _ = writeln!(out, "    }}");
    for op in d.operations() {
        let _ = write!(out, "\n    op {}", op.name());
        if (op.weight() - 1.0).abs() > 1e-12 {
            let _ = write!(out, " weight {}", op.weight());
        }
        if op.alternatives().len() == 1 {
            let _ = writeln!(out, " {{");
            print_body_names(&mut out, names, &op.alternatives()[0], "        ");
            let _ = writeln!(out, "    }}");
        } else {
            let _ = writeln!(out, " alt {{");
            for alt in op.alternatives() {
                let _ = writeln!(out, "        {{");
                print_body_names(&mut out, names, alt, "            ");
                let _ = writeln!(out, "        }}");
            }
            let _ = writeln!(out, "    }}");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn print_body(out: &mut String, m: &MachineDescription, t: &ReservationTable, indent: &str) {
    let names: Vec<String> = m.resources().iter().map(|r| r.name().to_owned()).collect();
    print_body_names(out, &names, t, indent);
}

fn print_body_names(out: &mut String, names: &[String], t: &ReservationTable, indent: &str) {
    for r in t.resources() {
        let cycles = t.usage_set(r);
        let spec = cycles_to_spec(&cycles);
        let _ = writeln!(out, "{indent}use {} @ {spec};", names[r.index()]);
    }
}

/// Formats a sorted cycle list compactly, merging runs into ranges:
/// `[2,3,4,6]` becomes `2..5, 6`.
fn cycles_to_spec(cycles: &[u32]) -> String {
    let mut parts = Vec::new();
    let mut i = 0;
    while i < cycles.len() {
        let start = cycles[i];
        let mut end = start;
        while i + 1 < cycles.len() && cycles[i + 1] == end + 1 {
            i += 1;
            end = cycles[i];
        }
        if end > start {
            parts.push(format!("{start}..{}", end + 1));
        } else {
            parts.push(format!("{start}"));
        }
        i += 1;
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdl::parse_machine;
    use crate::MachineBuilder;

    #[test]
    fn cycles_collapse_to_ranges() {
        assert_eq!(cycles_to_spec(&[0]), "0");
        assert_eq!(cycles_to_spec(&[2, 3, 4, 6]), "2..5, 6");
        assert_eq!(cycles_to_spec(&[1, 3, 5]), "1, 3, 5");
        assert_eq!(cycles_to_spec(&[0, 1]), "0..2");
    }

    #[test]
    fn expanded_alternatives_reprint_as_alt_blocks() {
        // Regression: `print` used to flatten alternative operations,
        // dropping their base — the reparse then disagreed on alternative
        // syntax. Expanded groups must round-trip through `alt` blocks.
        let (m, groups) = parse_machine(
            r#"machine "m" {
                resources { p0; p1; r; }
                op ld weight 3.0 alt { { use p0 @ 0; } { use p1 @ 0; } }
                op add { use r @ 0; }
            }"#,
        )
        .unwrap();
        let printed = print(&m);
        assert!(printed.contains("op ld weight 3 alt {"), "printed:\n{printed}");
        let (m2, groups2) = parse_machine(&printed).unwrap();
        assert_eq!(m, m2);
        assert_eq!(
            groups.group_of_base("ld").map(<[_]>::len),
            groups2.group_of_base("ld").map(<[_]>::len)
        );
    }

    #[test]
    fn printed_machine_reparses_equal() {
        let mut b = MachineBuilder::new("rt");
        let r0 = b.resource("alu");
        let r1 = b.resource("bus");
        b.operation("add").usage(r0, 0).usage(r1, 2).finish();
        b.operation("mul").span(r0, 0, 4).weight(0.5).finish();
        let m = b.build().unwrap();
        let (m2, _) = parse_machine(&print(&m)).unwrap();
        assert_eq!(m, m2);
    }
}
