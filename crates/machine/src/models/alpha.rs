//! DEC Alpha 21064 (EV4).
//!
//! Reconstructed from the *DECchip 21064 Microprocessor Hardware Reference
//! Manual*. The 21064 is dual-issue: the IBox pairs one E-box/A-box
//! instruction with one F-box instruction per cycle, so integer and FP
//! operations issue through distinct slotting resources and only collide
//! on the stages and buses they genuinely share. The F-box divider is not
//! pipelined; a double-precision divide occupies it for ~59 cycles, which
//! is what puts the largest forbidden latencies just under 58, as in Bala
//! & Rubin's description of this machine.
//!
//! Mirroring machine-generated descriptions, each class also walks through
//! private decode/score-boarding stages. These are pure redundancy — no
//! cross-class conflicts — and exist precisely so that the reduction has
//! realistic slack to remove (the paper's original Alpha description had
//! 87 resources for 12 classes).

use crate::{MachineBuilder, MachineDescription};

/// Builds the DEC Alpha 21064 machine description (12 operation classes).
pub fn alpha21064() -> MachineDescription {
    let mut b = MachineBuilder::new("alpha-21064");

    // Issue slotting: one E/A-box op and one F-box op per cycle.
    let e_slot = b.resource("ebox-slot");
    let f_slot = b.resource("fbox-slot");

    // E-box (integer) stages.
    let e_alu = b.resource("ebox-alu");
    let e_shift = b.resource("ebox-shifter");
    let e_wb = b.resource("ebox-wb");
    let imul = b.resource("ebox-imul"); // non-pipelined multiplier
    // A-box (load/store) stages.
    let a_addr = b.resource("abox-addr");
    let dcache = b.resource("dcache");
    let wbuffer = b.resource("write-buffer");
    let ld_bus = b.resource("load-fill-bus");
    // IBox branch logic.
    let br_logic = b.resource("ibox-branch");
    // F-box stages.
    let f_s1 = b.resource("fbox-s1");
    let f_s2 = b.resource("fbox-s2");
    let f_s3 = b.resource("fbox-s3");
    let f_s4 = b.resource("fbox-s4");
    let f_rnd = b.resource("fbox-round");
    let f_wb = b.resource("fbox-wb");
    let f_div = b.resource("fbox-divider");

    // Private per-class decode/scoreboard stage chains (redundant by
    // construction; eliminated by reduction).
    let classes = [
        "intop", "shift", "imull", "load", "store", "branch", "jsr", "fpadd", "fpmul",
        "fpcvt", "divs", "divt",
    ];
    let mut dec = Vec::new();
    for c in classes {
        dec.push((
            b.resource(format!("dec-{c}-0")),
            b.resource(format!("dec-{c}-1")),
            b.resource(format!("score-{c}")),
        ));
    }

    macro_rules! front {
        ($ob:expr, $slot:expr, $i:expr) => {
            $ob.usage($slot, 0)
                .usage(dec[$i].0, 0)
                .usage(dec[$i].1, 1)
                .usage(dec[$i].2, 1)
        };
    }

    front!(b.operation("intop").weight(30.0), e_slot, 0)
        .usage(e_alu, 0)
        .usage(e_wb, 1)
        .finish();

    front!(b.operation("shift").weight(8.0), e_slot, 1)
        .usage(e_alu, 0)
        .usage(e_shift, 0)
        .usage(e_wb, 1)
        .finish();

    // Integer multiply: the 21064 multiplies in the E-box over 21 cycles,
    // non-pipelined; the first iteration borrows the barrel shifter.
    front!(b.operation("imull").weight(0.8), e_slot, 2)
        .usage(e_alu, 0)
        .usage(e_shift, 1)
        .span(imul, 0, 21)
        .usage(e_wb, 22)
        .finish();

    front!(b.operation("load").weight(22.0), e_slot, 3)
        .usage(a_addr, 0)
        .usage(dcache, 1)
        .usage(ld_bus, 2)
        .usage(e_wb, 2)
        .finish();

    front!(b.operation("store").weight(12.0), e_slot, 4)
        .usage(a_addr, 0)
        .usage(dcache, 1)
        .usage(wbuffer, 2)
        .finish();

    front!(b.operation("branch").weight(12.0), e_slot, 5)
        .usage(br_logic, 0)
        .usage(e_alu, 0)
        .finish();

    // jsr computes the return address and redirects fetch: the branch
    // logic is busy an extra cycle.
    front!(b.operation("jsr").weight(1.5), e_slot, 6)
        .usages(br_logic, [0, 1])
        .usage(e_alu, 0)
        .usage(e_wb, 1)
        .finish();

    // FP add/sub/compare: fully pipelined, 6-cycle latency.
    front!(b.operation("fpadd").weight(8.0), f_slot, 7)
        .usage(f_s1, 1)
        .usage(f_s2, 2)
        .usage(f_s3, 3)
        .usage(f_rnd, 4)
        .usage(f_wb, 5)
        .finish();

    // FP multiply: fully pipelined, 6-cycle latency, own early stages.
    front!(b.operation("fpmul").weight(6.0), f_slot, 8)
        .usage(f_s1, 1)
        .usage(f_s2, 2)
        .usage(f_s4, 3)
        .usage(f_rnd, 4)
        .usage(f_wb, 5)
        .finish();

    // Converts skip the second stage and enter the shared third stage
    // immediately, which is what separates the add and multiply pipes'
    // forbidden-latency signatures.
    front!(b.operation("fpcvt").weight(2.0), f_slot, 9)
        .usage(f_s1, 1)
        .usage(f_s3, 1)
        .usage(f_rnd, 3)
        .usage(f_wb, 4)
        .finish();

    // FP divide single: divider busy ~30 cycles, not pipelined.
    front!(b.operation("divs").weight(0.6), f_slot, 10)
        .usage(f_s1, 1)
        .span(f_div, 2, 31)
        .usage(f_rnd, 32)
        .usage(f_wb, 33)
        .finish();

    // FP divide double: divider busy ~59 cycles; the largest forbidden
    // latencies of the machine (just under 58) come from this class.
    front!(b.operation("divt").weight(0.4), f_slot, 11)
        .usage(f_s1, 1)
        .span(f_div, 2, 59)
        .usage(f_rnd, 60)
        .usage(f_wb, 61)
        .finish();

    b.build().expect("alpha model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_12_classes() {
        assert_eq!(alpha21064().num_operations(), 12);
    }

    #[test]
    fn dual_issue_int_fp_pairs_are_legal() {
        let m = alpha21064();
        let int = m.operation(m.op_by_name("intop").unwrap()).table();
        let fp = m.operation(m.op_by_name("fpadd").unwrap()).table();
        // An integer op and an FP op may issue in the same cycle...
        assert!(!int.collides_at(fp, 0));
        // ...but two integer ops may not (single E-box slot),
        assert!(int.collides_at(int, 0));
        // ...nor two FP ops (single F-box slot).
        assert!(fp.collides_at(fp, 0));
    }

    #[test]
    fn divider_creates_long_latencies() {
        let m = alpha21064();
        let d = m.operation(m.op_by_name("divt").unwrap()).table();
        assert!(d.collides_at(d, 56), "divider busy overlap at 56");
        assert!(!d.collides_at(d, 70));
    }

    #[test]
    fn private_decode_stages_inflate_resources() {
        let m = alpha21064();
        assert!(m.num_resources() > 40, "got {}", m.num_resources());
    }
}
