//! Cydra 5 numeric processor.
//!
//! Reconstructed from Beck, Yen & Anderson, "The Cydra 5 minisupercomputer:
//! Architecture and implementation" (J. Supercomputing 1993) and Dehnert &
//! Towle, "Compiling for the Cydra 5". The configuration matches the
//! paper's: seven functional units — two memory ports, two address
//! generators, an FP adder (which also executes integer ALU operations),
//! an FP multiplier (which also hosts the non-pipelined iterative
//! divide/square-root datapath), and a branch unit.
//!
//! Cross-unit structural hazards come from the shared register-file write
//! buses (`wb*`), the two result crossbars (`xbarA`/`xbarB`, each serving
//! half the units), the two main-memory data buses, and the predicate bus
//! — exactly the kind of "resources expressed close to the actual
//! hardware" redundancy the reduction exists to remove. Main memory has
//! the Cydra's characteristically long (~21 cycle) load path; thanks to
//! pseudo-random bank interleaving the ports remain fully pipelined, and the
//! iterative multiplier ops occupy their datapath for up to 40 cycles,
//! which keeps every forbidden latency below 41 as in the paper.

use crate::{MachineBuilder, MachineDescription};

/// The operation names of the benchmark subset (paper Table 2 / Figure 4):
/// the classes actually used by the 1327-loop suite. Innermost numeric
/// loops on the Cydra used loads/stores on both ports, address arithmetic,
/// FP add/multiply (divide was compiled to reciprocal iterations), integer
/// ALU ops on the adder unit, and the `brtop` loop-control branch.
pub const CYDRA5_SUBSET_OPS: [&str; 12] = [
    "load.w.0", "load.w.1", "store.w.0", "store.w.1", "aadd.0", "aadd.1", "fadd", "fmul",
    "fmul.d", "iadd", "recip", "brtop",
];

/// Builds the full Cydra 5 machine description.
pub fn cydra5() -> MachineDescription {
    let mut b = MachineBuilder::new("cydra5");

    // --- Shared interconnect ----------------------------------------
    let wb = b.resource_bank("wb", 5); // register-file write buses
    let xbar_a = b.resource("xbarA"); // cross-register-bank result crossbar A
    let xbar_b = b.resource("xbarB"); // cross-register-bank result crossbar B
    let dbus = b.resource_bank("dbus", 2); // main-memory data buses
    let abus = b.resource_bank("abus", 2); // address buses
    let gpr_rd = b.resource_bank("gpr_rd", 4); // register read ports
    let pred_bus = b.resource("pred_bus"); // predicate result bus
    let loop_ctl = b.resource("loop_ctl"); // loop-control logic (brtop)

    // --- Memory ports ------------------------------------------------
    // in-latch, 4 pipe stages, tag check, interleaved-bank launch.
    let mem_in = [b.resource("mem0_in"), b.resource("mem1_in")];
    let mem_s: Vec<Vec<_>> = (0..2).map(|p| b.resource_bank(&format!("mem{p}_s"), 4)).collect();
    let mem_tag = [b.resource("mem0_tag"), b.resource("mem1_tag")];
    let mem_bank = [b.resource("mem0_bank"), b.resource("mem1_bank")];
    let stbuf = b.resource("stbuf"); // store buffer shared by both ports

    // --- Address generators -------------------------------------------
    let adr_in = [b.resource("adr0_in"), b.resource("adr1_in")];
    let adr_s: Vec<Vec<_>> = (0..2).map(|a| b.resource_bank(&format!("adr{a}_s"), 2)).collect();

    // --- FP adder (+ integer ALU) -------------------------------------
    let fadd_in = b.resource("fadd_in");
    let fadd_s = b.resource_bank("fadd_s", 3);
    let fadd_norm = b.resource("fadd_norm");
    let fadd_round = b.resource("fadd_round");
    let cvt_unit = b.resource("cvt_unit");

    // --- FP multiplier (+ iterative divide/sqrt) ----------------------
    let fmul_in = b.resource("fmul_in");
    let fmul_s = b.resource_bank("fmul_s", 4);
    let fmul_div = b.resource("fmul_div"); // non-pipelined iterative datapath

    // --- Branch unit ---------------------------------------------------
    let brn_in = b.resource("brn_in");
    let brn_s = b.resource_bank("brn_s", 2);

    let xbar = [xbar_a, xbar_b]; // per memory/address unit index

    // ===================================================================
    // Memory-port classes, per port p. Loads return over the data bus
    // ~cycle 17 and write back at ~20 (the Cydra's long main-memory
    // path); the pseudo-randomly interleaved banks keep the port fully
    // pipelined, so the bank launch occupies a single cycle. Port p loads
    // return through crossbar p and the dedicated write bus p.
    for p in 0..2usize {
        b.operation(format!("load.w.{p}"))
            .weight(10.0)
            .usage(mem_in[p], 0)
            .usage(abus[p], 0)
            .usage(mem_s[p][0], 1)
            .usage(mem_s[p][1], 2)
            .usage(mem_tag[p], 2)
            .usage(mem_bank[p], 3)
            .usage(dbus[p], 17)
            .usage(mem_s[p][2], 18)
            .usage(mem_s[p][3], 19)
            .usage(xbar[p], 19)
            .usage(wb[p], 20)
            .finish();
        b.operation(format!("load.d.{p}"))
            .weight(4.0)
            .usage(mem_in[p], 0)
            .usage(abus[p], 0)
            .usage(mem_s[p][0], 1)
            .usage(mem_s[p][1], 2)
            .usage(mem_tag[p], 2)
            .usages(mem_bank[p], [3, 4])
            .usages(dbus[p], [17, 18])
            .usages(mem_s[p][2], [18, 19])
            .usages(mem_s[p][3], [19, 20])
            .usages(xbar[p], [19, 20])
            .usages(wb[p], [20, 21])
            .finish();
        // Indexed load: the address mux takes a second pass through the
        // first pipe stage.
        b.operation(format!("load.x.{p}"))
            .weight(2.0)
            .usage(mem_in[p], 0)
            .usage(abus[p], 0)
            .usages(mem_s[p][0], [1, 2])
            .usage(mem_s[p][1], 3)
            .usage(mem_tag[p], 3)
            .usage(mem_bank[p], 4)
            .usage(dbus[p], 18)
            .usage(mem_s[p][2], 19)
            .usage(mem_s[p][3], 20)
            .usage(xbar[p], 20)
            .usage(wb[p], 21)
            .finish();
        // Stores drain through the store buffer and claim the same
        // bank/data-bus slot allocation a load would, so port traffic
        // interleaves cleanly (the hardware's store queue guarantees it).
        b.operation(format!("store.w.{p}"))
            .weight(6.0)
            .usage(mem_in[p], 0)
            .usage(abus[p], 0)
            .usage(gpr_rd[2 + p], 0)
            .usage(mem_s[p][0], 1)
            .usage(mem_s[p][1], 2)
            .usage(mem_tag[p], 2)
            .usage(stbuf, 3)
            .usage(mem_bank[p], 3)
            .usage(dbus[p], 17)
            .finish();
        b.operation(format!("store.d.{p}"))
            .weight(2.0)
            .usage(mem_in[p], 0)
            .usage(abus[p], 0)
            .usage(gpr_rd[2 + p], 0)
            .usage(mem_s[p][0], 1)
            .usage(mem_s[p][1], 2)
            .usage(mem_tag[p], 2)
            .usages(stbuf, [3, 4])
            .usages(mem_bank[p], [3, 4])
            .usages(dbus[p], [17, 18])
            .finish();
        // Prefetch: launches the bank access but returns no data.
        b.operation(format!("pref.{p}"))
            .weight(0.5)
            .usage(mem_in[p], 0)
            .usage(abus[p], 0)
            .usage(mem_s[p][0], 1)
            .usage(mem_s[p][1], 2)
            .usage(mem_tag[p], 2)
            .usage(mem_bank[p], 3)
            .finish();
    }

    // ===================================================================
    // Address-generator classes, per unit a. Both units write through the
    // shared `wb2` bus, so they conflict with each other (and with the
    // integer results of the FP adder). Post-modify addressing drives the
    // unit's address bus one (aadd) or two (asub) cycles after issue.
    for a in 0..2usize {
        b.operation(format!("aadd.{a}"))
            .weight(8.0)
            .usage(adr_in[a], 0)
            .usage(gpr_rd[a], 0)
            .usage(adr_s[a][0], 0)
            .usage(adr_s[a][1], 1)
            .usage(abus[a], 1)
            .usage(xbar[a], 1)
            .usage(wb[2], 2)
            .finish();
        b.operation(format!("asub.{a}"))
            .weight(2.0)
            .usage(adr_in[a], 0)
            .usage(gpr_rd[a], 0)
            .usage(adr_s[a][0], 0)
            .usage(adr_s[a][1], 1)
            .usage(abus[a], 2)
            .usage(xbar[a], 1)
            .usage(wb[2], 2)
            .finish();
        b.operation(format!("amul.{a}"))
            .weight(0.8)
            .usage(adr_in[a], 0)
            .usage(gpr_rd[a], 0)
            .usages(adr_s[a][0], [0, 1])
            .usages(adr_s[a][1], [1, 2])
            .usage(xbar[a], 2)
            .usage(wb[2], 3)
            .finish();
        b.operation(format!("amove.{a}"))
            .weight(1.5)
            .usage(adr_in[a], 0)
            .usage(adr_s[a][0], 0)
            .usage(xbar[a], 0)
            .usage(wb[2], 1)
            .finish();
    }

    // ===================================================================
    // FP adder unit (crossbar group A): FP add/sub/compare/convert plus
    // the integer ALU ops.
    let fp_add_like: [(&str, f64); 2] = [("fadd", 8.0), ("fsub", 4.0)];
    for (name, w) in fp_add_like {
        b.operation(name)
            .weight(w)
            .usage(fadd_in, 0)
            .usage(gpr_rd[0], 0)
            .usage(fadd_s[0], 1)
            .usage(fadd_s[1], 2)
            .usage(fadd_s[2], 3)
            .usage(fadd_norm, 4)
            .usage(fadd_round, 5)
            .usage(wb[4], 6)
            .finish();
    }
    // fmax also broadcasts over the crossbar (its result steers selects
    // on other units), which couples it across unit groups.
    b.operation("fmax")
        .weight(0.7)
        .usage(fadd_in, 0)
        .usage(gpr_rd[0], 0)
        .usage(fadd_s[0], 1)
        .usage(fadd_s[1], 2)
        .usage(fadd_s[2], 3)
        .usage(fadd_norm, 4)
        .usage(fadd_round, 5)
        .usage(xbar_a, 5)
        .usage(wb[4], 6)
        .finish();
    // Double precision: datapath passes are double-pumped.
    for (name, w) in [("fadd.d", 4.0), ("fsub.d", 2.0)] {
        b.operation(name)
            .weight(w)
            .usage(fadd_in, 0)
            .usage(gpr_rd[0], 0)
            .usage(fadd_s[0], 1)
            .usage(fadd_s[1], 2)
            .usage(fadd_s[2], 3)
            .usages(fadd_norm, [4, 5])
            .usage(fadd_round, 6)
            .usages(xbar_a, [6, 7])
            .usages(wb[4], [7, 8])
            .finish();
    }
    // Compares produce predicates, not register results.
    b.operation("fcmp")
        .weight(2.0)
        .usage(fadd_in, 0)
        .usage(gpr_rd[0], 0)
        .usage(fadd_s[0], 1)
        .usage(fadd_s[1], 2)
        .usage(fadd_s[2], 3)
        .usage(pred_bus, 4)
        .finish();
    b.operation("fcmp.d")
        .weight(1.0)
        .usage(fadd_in, 0)
        .usage(gpr_rd[0], 0)
        .usages(fadd_s[0], [1, 2])
        .usages(fadd_s[1], [2, 3])
        .usages(fadd_s[2], [3, 4])
        .usage(pred_bus, 5)
        .finish();
    // Conversions use the dedicated convert datapath plus the rounder.
    for (name, w, extra) in [("cvt.if", 1.5, 0u32), ("cvt.fi", 1.5, 0), ("cvt.fd", 0.8, 1)] {
        b.operation(name)
            .weight(w)
            .usage(fadd_in, 0)
            .usage(gpr_rd[0], 0)
            .usages(cvt_unit, 1..=(2 + extra))
            .usage(fadd_round, 3 + extra)
            .usage(xbar_a, 3 + extra)
            .usage(wb[4], 4 + extra)
            .finish();
    }
    // Integer ALU ops execute on the adder unit's first stage and share
    // the address units' write bus — short latency, high frequency.
    for (name, w) in [("iadd", 10.0), ("isub", 3.0), ("iand", 2.0), ("ior", 2.0)] {
        b.operation(name)
            .weight(w)
            .usage(fadd_in, 0)
            .usage(gpr_rd[0], 0)
            .usage(fadd_s[0], 1)
            .usage(wb[2], 2)
            .finish();
    }
    for (name, w) in [("ishl", 1.5), ("ishr", 1.5)] {
        b.operation(name)
            .weight(w)
            .usage(fadd_in, 0)
            .usage(gpr_rd[0], 0)
            .usage(fadd_norm, 1) // shifts use the normalizer's barrel shifter
            .usage(xbar_a, 1)
            .usage(wb[2], 3)
            .finish();
    }
    b.operation("icmp")
        .weight(3.0)
        .usage(fadd_in, 0)
        .usage(gpr_rd[0], 0)
        .usage(fadd_s[0], 1)
        .usage(pred_bus, 2)
        .finish();
    // Sign manipulation: normalizer then rounder, full FP write-back.
    b.operation("fneg")
        .weight(0.6)
        .usage(fadd_in, 0)
        .usage(gpr_rd[0], 0)
        .usage(fadd_norm, 1)
        .usage(fadd_round, 2)
        .usage(xbar_a, 2)
        .usage(wb[1], 3)
        .finish();

    // ===================================================================
    // FP multiplier unit (crossbar group B): pipelined multiplies,
    // iterative divide/sqrt.
    b.operation("fmul")
        .weight(7.0)
        .usage(fmul_in, 0)
        .usage(gpr_rd[1], 0)
        .usage(fmul_s[0], 1)
        .usage(fmul_s[1], 2)
        .usage(fmul_s[2], 3)
        .usage(fmul_s[3], 4)
        .usage(wb[3], 5)
        .finish();
    b.operation("fmul.d")
        .weight(4.0)
        .usage(fmul_in, 0)
        .usage(gpr_rd[1], 0)
        .usage(fmul_s[0], 1)
        .usage(fmul_s[1], 2)
        .usage(fmul_s[2], 3)
        .usage(fmul_s[3], 4)
        .usages(wb[3], [6, 7])
        .finish();
    b.operation("imul")
        .weight(1.2)
        .usage(fmul_in, 0)
        .usage(gpr_rd[1], 0)
        .usage(fmul_s[0], 1)
        .usage(fmul_s[1], 2)
        .usage(fmul_s[2], 3)
        .usage(xbar_b, 3)
        .usage(wb[2], 4)
        .finish();
    // High-word integer multiply: one extra array pass.
    b.operation("imul.h")
        .weight(0.4)
        .usage(fmul_in, 0)
        .usage(gpr_rd[1], 0)
        .usage(fmul_s[0], 1)
        .usages(fmul_s[1], [2, 3])
        .usage(fmul_s[2], 4)
        .usage(xbar_b, 4)
        .usage(wb[2], 5)
        .finish();
    // Reciprocal seed + Newton step: short occupancy of the iterative
    // datapath (the Cydra compiled divides into these).
    b.operation("recip")
        .weight(0.9)
        .usage(fmul_in, 0)
        .usage(gpr_rd[1], 0)
        .usage(fmul_s[0], 1)
        .span(fmul_div, 2, 9)
        .usage(fmul_s[3], 9)
        .usage(xbar_b, 9)
        .usage(wb[3], 10)
        .finish();
    // Full iterative divide/sqrt classes: the datapath is not pipelined
    // and the longest (sqrt.d) holds it through cycle 39, which bounds
    // every forbidden latency of the machine below 41.
    for (name, w, busy_end, lat) in [
        ("fdiv", 0.5, 18u32, 19u32),
        ("fdiv.d", 0.3, 26, 27),
        ("sqrt", 0.2, 33, 34),
        ("sqrt.d", 0.1, 38, 39),
    ] {
        b.operation(name)
            .weight(w)
            .usage(fmul_in, 0)
            .usage(gpr_rd[1], 0)
            .usage(fmul_s[0], 1)
            .span(fmul_div, 2, busy_end)
            .usage(fmul_s[3], busy_end)
            .usage(xbar_b, busy_end)
            .usage(wb[3], lat)
            .finish();
    }

    // ===================================================================
    // Branch unit (crossbar group B for its link-register write).
    b.operation("brtop") // modulo-loop back branch: also advances loop ctl
        .weight(5.0)
        .usage(brn_in, 0)
        .usage(brn_s[0], 0)
        .usage(brn_s[1], 1)
        .usage(loop_ctl, 1)
        .usage(pred_bus, 2)
        .finish();
    b.operation("br")
        .weight(2.0)
        .usage(brn_in, 0)
        .usage(brn_s[0], 0)
        .usage(brn_s[1], 1)
        .finish();
    b.operation("brc")
        .weight(1.5)
        .usage(brn_in, 0)
        .usage(gpr_rd[3], 0)
        .usage(brn_s[0], 0)
        .usage(brn_s[1], 1)
        .finish();
    b.operation("br.link")
        .weight(0.5)
        .usage(brn_in, 0)
        .usage(brn_s[0], 0)
        .usage(brn_s[1], 1)
        .usage(xbar_b, 1)
        .usage(wb[3], 2)
        .finish();
    b.operation("pred.set")
        .weight(1.0)
        .usage(brn_in, 0)
        .usage(brn_s[0], 0)
        .usage(pred_bus, 1)
        .finish();
    // Move between the general and control register banks.
    b.operation("mm.move")
        .weight(0.7)
        .usage(brn_in, 0)
        .usage(gpr_rd[3], 0)
        .usage(brn_s[0], 0)
        .usage(xbar_b, 0)
        .usage(wb[0], 1)
        .finish();

    b.build().expect("cydra5 model is valid")
}

/// The benchmark subset of the Cydra 5 (paper Table 2 / Figure 4): only
/// the [`CYDRA5_SUBSET_OPS`] classes, with unused resources dropped.
pub fn cydra5_subset() -> MachineDescription {
    cydra5()
        .restrict(&CYDRA5_SUBSET_OPS)
        .expect("subset is valid")
}

/// Alternative-operation groups for a Cydra 5 machine (full or subset):
/// the per-port memory classes and per-unit address classes are
/// interchangeable implementations of one source operation, exactly the
/// situation paper §3 expands and §7's `check-with-alt` exploits.
///
/// Works on any machine containing (a subset of) the Cydra 5 operation
/// names — base operations whose two members are not both present become
/// single-member groups, so this applies to [`cydra5_subset`] too.
pub fn cydra5_alt_groups(m: &MachineDescription) -> crate::alternatives::AltGroups {
    let bases = [
        ("load.w", ["load.w.0", "load.w.1"]),
        ("load.d", ["load.d.0", "load.d.1"]),
        ("load.x", ["load.x.0", "load.x.1"]),
        ("store.w", ["store.w.0", "store.w.1"]),
        ("store.d", ["store.d.0", "store.d.1"]),
        ("pref", ["pref.0", "pref.1"]),
        ("aadd", ["aadd.0", "aadd.1"]),
        ("asub", ["asub.0", "asub.1"]),
        ("amul", ["amul.0", "amul.1"]),
        ("amove", ["amove.0", "amove.1"]),
    ];
    let groups = bases
        .iter()
        .filter_map(|(base, members)| {
            let ids: Vec<_> = members.iter().filter_map(|n| m.op_by_name(n)).collect();
            (ids.len() == 2).then(|| (base.to_string(), ids))
        })
        .collect();
    crate::alternatives::AltGroups::from_groups(m, groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_in_the_papers_regime() {
        let m = cydra5();
        assert!(m.num_operations() >= 45, "{} ops", m.num_operations());
        assert!(m.num_resources() >= 45, "{} resources", m.num_resources());
        // Redundant, hardware-close description: >8 usages/op on average.
        assert!(m.avg_usages_per_op() > 8.0, "{}", m.avg_usages_per_op());
    }

    #[test]
    fn forbidden_latencies_bounded_by_41() {
        let m = cydra5();
        for (_, x) in m.ops() {
            for (_, y) in m.ops() {
                for j in 41..80 {
                    assert!(
                        !y.table().collides_at(x.table(), j),
                        "{} vs {} at {}",
                        x.name(),
                        y.name(),
                        j
                    );
                }
            }
        }
    }

    #[test]
    fn subset_has_12_classes_and_fewer_resources() {
        let m = cydra5_subset();
        assert_eq!(m.num_operations(), 12);
        assert!(m.num_resources() < cydra5().num_resources());
    }

    #[test]
    fn ports_conflict_within_not_across() {
        let m = cydra5();
        let l0 = m.operation(m.op_by_name("load.w.0").unwrap()).table();
        let l1 = m.operation(m.op_by_name("load.w.1").unwrap()).table();
        assert!(l0.collides_at(l0, 0));
        // Different ports, different buses: simultaneous issue is fine.
        assert!(!l0.collides_at(l1, 0));
    }

    #[test]
    fn write_bus_couples_address_units() {
        let m = cydra5();
        let a0 = m.operation(m.op_by_name("aadd.0").unwrap()).table();
        let a1 = m.operation(m.op_by_name("aadd.1").unwrap()).table();
        // Same cycle issue on both address units collides on wb2.
        assert!(a0.collides_at(a1, 0));
        assert!(!a0.collides_at(a1, 1));
    }

    #[test]
    fn crossbar_couples_unit_groups() {
        let m = cydra5();
        // fmax (xbarA@5) vs cvt.if (xbarA@3): a convert issued 2 cycles
        // after an fmax collides on crossbar A.
        let fmax = m.operation(m.op_by_name("fmax").unwrap()).table();
        let cvt = m.operation(m.op_by_name("cvt.if").unwrap()).table();
        assert!(fmax.collides_at(cvt, 2));
        assert!(!fmax.collides_at(cvt, 1));
        // recip (xbarB@9) vs mm.move (xbarB@0) couple the multiplier and
        // branch units across crossbar B.
        let recip = m.operation(m.op_by_name("recip").unwrap()).table();
        let mv = m.operation(m.op_by_name("mm.move").unwrap()).table();
        assert!(recip.collides_at(mv, 9));
        // Frequent classes keep dedicated write buses: loads never meet
        // fadd results.
        let load0 = m.operation(m.op_by_name("load.w.0").unwrap()).table();
        let fadd = m.operation(m.op_by_name("fadd").unwrap()).table();
        for j in -30..=30 {
            assert!(!load0.collides_at(fadd, j), "load.w.0 vs fadd at {j}");
        }
    }

    #[test]
    fn divide_family_shares_iterative_datapath() {
        let m = cydra5();
        let d = m.operation(m.op_by_name("fdiv").unwrap()).table();
        let s = m.operation(m.op_by_name("sqrt.d").unwrap()).table();
        assert!(d.collides_at(s, 5));
        assert!(s.collides_at(d, 30));
    }
}
