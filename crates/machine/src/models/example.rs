//! The paper's Figure 1 running example.

use crate::{MachineBuilder, MachineDescription};

/// The hypothetical two-operation machine of the paper's Figure 1.
///
/// * Operation `A` models a fully pipelined functional unit: it flows
///   through three stages in consecutive cycles (3 usages).
/// * Operation `B` models a partially pipelined unit: resource `mul-stage`
///   is held for 4 consecutive cycles and `round-stage` for 2 (8 usages
///   total).
///
/// The resulting forbidden latencies are exactly the paper's:
/// `F[A][A] = {0}`, `F[B][A] = {1}`, `F[A][B] = {-1}`, and
/// `F[B][B] = {0, ±1, ±2, ±3}`. Reduction shrinks this description to 2
/// synthesized resources with 1 usage for `A` and 4 for `B` (Figure 1d).
pub fn example_machine() -> MachineDescription {
    let mut b = MachineBuilder::new("fig1-example");
    let r0 = b.resource("stage0");
    let r1 = b.resource("stage1");
    let r2 = b.resource("stage2");
    let r3 = b.resource("mul-stage");
    let r4 = b.resource("round-stage");

    // A: fully pipelined, one stage per cycle.
    b.operation("A").usage(r0, 0).usage(r1, 1).usage(r2, 2).finish();

    // B: enters the shared stages one cycle "ahead" of A (creating the
    // cross latency 1 in F[B][A]), then occupies the multiply stage for 4
    // cycles and the rounding stage for 2.
    b.operation("B")
        .usage(r1, 0)
        .usage(r2, 1)
        .usages(r3, [2, 3, 4, 5])
        .usages(r4, [6, 7])
        .finish();

    b.build().expect("example machine is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbidden_latencies_match_paper() {
        let m = example_machine();
        let a = m.operation(m.op_by_name("A").unwrap()).table();
        let b = m.operation(m.op_by_name("B").unwrap()).table();

        // F[X][Y] contains j  <=>  X cannot issue j cycles after Y
        //                     <=>  Y.collides_at(X, j).
        // F[A][A] = {0}
        for j in -10..=10i64 {
            assert_eq!(a.collides_at(a, j), j == 0, "F[A][A] at {j}");
        }
        // F[B][A] = {1}: B cannot issue 1 cycle after A.
        for j in -10..=10i64 {
            assert_eq!(a.collides_at(b, j), j == 1, "F[B][A] at {j}");
        }
        // F[A][B] = {-1}.
        for j in -10..=10i64 {
            assert_eq!(b.collides_at(a, j), j == -1, "F[A][B] at {j}");
        }
        // F[B][B] = {0, ±1, ±2, ±3}.
        for j in -10..=10i64 {
            assert_eq!(b.collides_at(b, j), j.abs() <= 3, "F[B][B] at {j}");
        }
    }
}
