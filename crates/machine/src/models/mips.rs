//! MIPS R3000 integer unit + R3010 floating-point accelerator.
//!
//! Reconstructed from Kane & Heinrich, *MIPS RISC Architecture* and the
//! R3010 datapath: the FPA has an unpack stage, a two-stage adder with
//! rounding and packing, a four-stage multiplier array, and a
//! non-pipelined divider. The R3000 side has a single-issue pipeline with
//! a dedicated, non-pipelined integer multiply/divide unit (12-cycle
//! multiply, 33-cycle divide into HI/LO).
//!
//! Like Proebsting & Fraser's original description (15 classes, 428
//! forbidden latencies, all < 34), this model is written close to the
//! hardware, so it carries redundancy: every instruction reserves the
//! fetch and issue stages, and FP operations walk through shared
//! unpack/round/pack/writeback stages that largely shadow one another.

use crate::{MachineBuilder, MachineDescription};

/// Builds the MIPS R3000/R3010 machine description (15 operation classes).
pub fn mips_r3000() -> MachineDescription {
    let mut b = MachineBuilder::new("mips-r3000-r3010");

    // --- R3000 integer pipeline -------------------------------------
    let fetch = b.resource("if");
    let issue = b.resource("rd"); // register read / issue stage
    let alu = b.resource("alu");
    let dmem = b.resource("mem");
    let wb = b.resource("wb");
    let pc = b.resource("pc-adder");
    // Non-pipelined integer multiply/divide unit.
    let imd = b.resource("imuldiv");
    let hilo = b.resource("hilo");

    // --- R3010 floating point accelerator ---------------------------
    let fp_issue = b.resource("fp-issue");
    let unpack = b.resource("fp-unpack");
    let add1 = b.resource("fp-add1");
    let add2 = b.resource("fp-add2");
    let round = b.resource("fp-round");
    let pack = b.resource("fp-pack");
    let mul1 = b.resource("fp-mul1");
    let mul2 = b.resource("fp-mul2");
    let mul3 = b.resource("fp-mul3");
    let mul4 = b.resource("fp-mul4");
    let div = b.resource("fp-div");
    let fp_wb = b.resource("fp-wb");
    let exc = b.resource("fp-exc"); // exception detect stage
    let cpbus = b.resource("cp-bus"); // coprocessor transfer bus

    // Every instruction occupies fetch and issue in cycle 0.
    macro_rules! front {
        ($ob:expr) => {
            $ob.usage(fetch, 0).usage(issue, 0)
        };
    }

    front!(b.operation("alu").weight(30.0))
        .usage(alu, 0)
        .usage(wb, 1)
        .finish();

    front!(b.operation("load").weight(20.0))
        .usage(alu, 0) // address computation
        .usage(dmem, 1)
        .usage(wb, 2)
        .finish();

    // The write-through store holds the data port for two cycles while the
    // write buffer drains.
    front!(b.operation("store").weight(12.0))
        .usage(alu, 0)
        .usages(dmem, [1, 2])
        .finish();

    front!(b.operation("branch").weight(12.0))
        .usage(alu, 0)
        .usage(pc, 0)
        .finish();

    // Integer multiply: 12-cycle non-pipelined unit, result to HI/LO.
    front!(b.operation("mult").weight(2.0))
        .span(imd, 0, 12)
        .usage(hilo, 11)
        .finish();

    // Integer divide: 33-cycle non-pipelined (largest latencies: < 34).
    front!(b.operation("div").weight(0.5))
        .span(imd, 0, 33)
        .usage(hilo, 32)
        .finish();

    front!(b.operation("mfhi").weight(2.0))
        .usage(hilo, 0)
        .usage(alu, 0)
        .usage(wb, 1)
        .finish();

    // FP add single: unpack, two adder passes, round, pack.
    front!(b.operation("add.s").weight(6.0))
        .usage(fp_issue, 0)
        .usage(unpack, 0)
        .usage(add1, 1)
        .usage(round, 1)
        .usage(pack, 1)
        .usage(fp_wb, 1)
        .usage(exc, 1)
        .finish();

    // FP add double: the adder datapath is 32 bits wide, so doubles pass
    // through the add/round stages twice.
    front!(b.operation("add.d").weight(4.0))
        .usage(fp_issue, 0)
        .usage(unpack, 0)
        .usage(add1, 1)
        .usage(add2, 1)
        .usages(round, [1, 2])
        .usage(pack, 2)
        .usage(fp_wb, 2)
        .usage(exc, 2)
        .finish();

    // FP multiply single: 4-stage array, one pass.
    front!(b.operation("mul.s").weight(4.0))
        .usage(fp_issue, 0)
        .usage(unpack, 0)
        .usage(mul1, 1)
        .usage(mul2, 2)
        .usage(mul3, 3)
        .usage(round, 3)
        .usage(pack, 3)
        .usage(fp_wb, 3)
        .usage(exc, 3)
        .finish();

    // FP multiply double: array stages are double-pumped.
    front!(b.operation("mul.d").weight(3.0))
        .usage(fp_issue, 0)
        .usage(unpack, 0)
        .usages(mul1, [1, 2])
        .usages(mul2, [2, 3])
        .usage(mul3, 3)
        .usage(mul4, 4)
        .usage(round, 4)
        .usage(pack, 4)
        .usage(fp_wb, 4)
        .usage(exc, 4)
        .finish();

    // FP divide single: 12-cycle non-pipelined divider.
    front!(b.operation("div.s").weight(0.8))
        .usage(fp_issue, 0)
        .usage(unpack, 0)
        .span(div, 1, 11)
        .usage(round, 11)
        .usage(pack, 11)
        .usage(fp_wb, 11)
        .usage(exc, 11)
        .finish();

    // FP divide double: 19-cycle non-pipelined divider.
    front!(b.operation("div.d").weight(0.4))
        .usage(fp_issue, 0)
        .usage(unpack, 0)
        .span(div, 1, 18)
        .usage(round, 18)
        .usage(pack, 18)
        .usage(fp_wb, 18)
        .usage(exc, 18)
        .finish();

    // Convert: unpack, one add pass, round, pack (3 cycles).
    front!(b.operation("cvt").weight(1.5))
        .usage(fp_issue, 0)
        .usage(unpack, 0)
        .usage(add1, 1)
        .usage(round, 2)
        .usage(pack, 2)
        .usage(fp_wb, 2)
        .usage(exc, 2)
        .finish();

    // Move between CPU and FPA register files over the coprocessor bus;
    // the transfer lands in the FPA register file one cycle later than an
    // FP result would.
    front!(b.operation("mtc1").weight(2.5))
        .usage(cpbus, 0)
        .usage(fp_issue, 0)
        .usage(fp_wb, 2)
        .finish();

    b.build().expect("mips model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_15_classes() {
        assert_eq!(mips_r3000().num_operations(), 15);
    }

    #[test]
    fn latencies_stay_below_34() {
        let m = mips_r3000();
        assert!(m.max_table_length() <= 34);
    }

    #[test]
    fn divider_is_non_pipelined() {
        let m = mips_r3000();
        let d = m.operation(m.op_by_name("div.s").unwrap()).table();
        // Back-to-back div.s must conflict for 10 consecutive latencies.
        for j in 1..10 {
            assert!(d.collides_at(d, j), "div.s self-conflict at {j}");
        }
    }

    #[test]
    fn alu_ops_are_fully_pipelined() {
        let m = mips_r3000();
        let a = m.operation(m.op_by_name("alu").unwrap()).table();
        assert!(a.collides_at(a, 0));
        for j in 1..8 {
            assert!(!a.collides_at(a, j), "alu self-conflict at {j}");
        }
    }
}
