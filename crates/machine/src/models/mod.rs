//! Prebuilt target machine descriptions.
//!
//! The PLDI '96 paper evaluates its reduction on three machines whose
//! descriptions were proprietary (HP's Cydra 5 compiler model, Bala &
//! Rubin's Alpha 21064 description, Proebsting & Fraser's MIPS
//! R3000/R3010 description). The models here are reconstructed from the
//! public architecture documentation of those machines and tuned to sit in
//! the same complexity regime (operation-class counts, latency magnitudes,
//! and description redundancy); see DESIGN.md §5 for the substitution
//! rationale. [`example_machine`] is the paper's own Figure 1 machine,
//! reproduced exactly.

mod alpha;
mod cydra5;
mod example;
mod mips;

pub use alpha::alpha21064;
pub use cydra5::{cydra5, cydra5_alt_groups, cydra5_subset, CYDRA5_SUBSET_OPS};
pub use example::example_machine;
pub use mips::mips_r3000;

use crate::MachineDescription;

/// All prebuilt machines, for sweeping tests and benches.
pub fn all_machines() -> Vec<MachineDescription> {
    vec![example_machine(), mips_r3000(), alpha21064(), cydra5(), cydra5_subset()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_validate() {
        for m in all_machines() {
            assert!(m.num_operations() > 0, "{} has ops", m.name());
            assert!(m.num_resources() > 0, "{} has resources", m.name());
            assert!(m.total_usages() > 0, "{} has usages", m.name());
        }
    }

    #[test]
    fn model_scale_matches_paper_regime() {
        let mips = mips_r3000();
        assert!(mips.num_operations() >= 12 && mips.num_operations() <= 20);
        let alpha = alpha21064();
        assert!(alpha.num_operations() >= 10 && alpha.num_operations() <= 16);
        let cydra = cydra5();
        assert!(cydra.num_operations() >= 40, "cydra has {} classes", cydra.num_operations());
        assert!(cydra.num_resources() >= 40);
        let sub = cydra5_subset();
        assert!(sub.num_operations() >= 10 && sub.num_operations() <= 16);
        assert!(sub.num_resources() < cydra.num_resources());
    }

    #[test]
    fn example_machine_matches_figure_1() {
        let m = example_machine();
        assert_eq!(m.num_resources(), 5);
        assert_eq!(m.num_operations(), 2);
        let a = m.operation(m.op_by_name("A").unwrap());
        let b = m.operation(m.op_by_name("B").unwrap());
        assert_eq!(a.table().num_usages(), 3);
        assert_eq!(b.table().num_usages(), 8);
    }
}
