//! ASCII rendering of reservation tables, in the style of the paper's
//! Figures 1 and 4.

use crate::machine::MachineDescription;
use crate::table::ReservationTable;
use std::fmt::Write as _;

/// Renders the reservation table of a single operation as a grid with one
/// row per resource the machine declares and one column per cycle.
///
/// `mark` is the character placed at reserved entries (the paper uses the
/// operation's letter).
///
/// # Example
///
/// ```
/// use rmd_machine::{MachineBuilder, render};
///
/// let mut b = MachineBuilder::new("m");
/// let r0 = b.resource("issue");
/// let r1 = b.resource("alu");
/// b.operation("A").usage(r0, 0).usage(r1, 1).finish();
/// let m = b.build().unwrap();
/// let grid = render::table(&m, m.operations()[0].table(), 'A');
/// assert!(grid.contains("issue"));
/// ```
pub fn table(m: &MachineDescription, t: &ReservationTable, mark: char) -> String {
    let width = t.length().max(1);
    let name_w = m
        .resources()
        .iter()
        .map(|r| r.name().len())
        .max()
        .unwrap_or(4)
        .max(5);
    let mut out = String::new();
    let _ = write!(out, "{:>name_w$} |", "cycle");
    for c in 0..width {
        let _ = write!(out, "{c:>3}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}-+{}", "-".repeat(name_w), "-".repeat(3 * width as usize));
    for (i, r) in m.resources().iter().enumerate() {
        let _ = write!(out, "{:>name_w$} |", r.name());
        for c in 0..width {
            let used = t.uses(crate::ids::ResourceId(i as u32), c);
            let _ = write!(out, "{:>3}", if used { mark } else { '.' });
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders every operation's reservation table, using the first character
/// of each operation name as its mark.
pub fn machine(m: &MachineDescription) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({} resources, {} usages)",
        m.name(),
        m.num_resources(),
        m.total_usages()
    );
    for op in m.operations() {
        let mark = op.name().chars().next().unwrap_or('?').to_ascii_uppercase();
        let _ = writeln!(out, "\noperation {} ({} usages):", op.name(), op.table().num_usages());
        let _ = write!(out, "{}", table(m, op.table(), mark));
    }
    out
}

/// Renders a machine as one combined grid per resource row showing which
/// operations use it when — compact overview used by the Figure 4
/// reproduction.
pub fn overview(m: &MachineDescription) -> String {
    let width = m.max_table_length().max(1);
    let name_w = m
        .resources()
        .iter()
        .map(|r| r.name().len())
        .max()
        .unwrap_or(4)
        .max(5);
    let mut out = String::new();
    let _ = write!(out, "{:>name_w$} |", "cycle");
    for c in 0..width {
        let _ = write!(out, "{:>3}", c % 100);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}-+{}", "-".repeat(name_w), "-".repeat(3 * width as usize));
    for (i, r) in m.resources().iter().enumerate() {
        let rid = crate::ids::ResourceId(i as u32);
        let _ = write!(out, "{:>name_w$} |", r.name());
        for c in 0..width {
            let n = m
                .operations()
                .iter()
                .filter(|op| op.table().uses(rid, c))
                .count();
            let cell = match n {
                0 => ".".to_owned(),
                n if n < 10 => n.to_string(),
                _ => "+".to_owned(),
            };
            let _ = write!(out, "{cell:>3}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineBuilder;

    fn toy() -> MachineDescription {
        let mut b = MachineBuilder::new("toy");
        let r0 = b.resource("iss");
        let r1 = b.resource("alu");
        b.operation("add").usage(r0, 0).usage(r1, 1).finish();
        b.operation("mul").usage(r0, 0).span(r1, 1, 3).finish();
        b.build().unwrap()
    }

    #[test]
    fn table_marks_reserved_cells() {
        let m = toy();
        let s = table(&m, m.operations()[0].table(), 'A');
        let alu_line = s.lines().find(|l| l.contains("alu")).unwrap();
        assert!(alu_line.contains('A'));
        let iss_line = s.lines().find(|l| l.contains("iss")).unwrap();
        assert!(iss_line.contains('A'));
    }

    #[test]
    fn machine_render_lists_all_ops() {
        let m = toy();
        let s = machine(&m);
        assert!(s.contains("operation add"));
        assert!(s.contains("operation mul"));
    }

    #[test]
    fn overview_counts_users() {
        let m = toy();
        let s = overview(&m);
        let iss = s.lines().find(|l| l.contains("iss")).unwrap();
        // Both ops use `iss` in cycle 0.
        assert!(iss.contains('2'));
    }
}
