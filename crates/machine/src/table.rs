//! Reservation tables: per-operation resource usage patterns.

use crate::ids::ResourceId;
use core::fmt;

/// A single reservation-table entry: `resource` is reserved for exclusive
/// use in `cycle` (relative to the issue cycle of the operation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Usage {
    /// The resource being reserved.
    pub resource: ResourceId,
    /// The cycle, relative to issue, in which the resource is reserved.
    pub cycle: u32,
}

impl Usage {
    /// Creates a usage of `resource` in `cycle`.
    #[inline]
    pub fn new(resource: ResourceId, cycle: u32) -> Self {
        Usage { resource, cycle }
    }
}

impl fmt::Display for Usage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.resource, self.cycle)
    }
}

/// The reservation table of one operation.
///
/// A reservation table records, for each cycle relative to the operation's
/// issue time, which resources the operation reserves for exclusive use.
/// Internally it is a sorted, deduplicated list of [`Usage`]s, which keeps
/// pairwise latency extraction (paper §3, step 1) a simple linear scan.
///
/// # Example
///
/// ```
/// use rmd_machine::{ReservationTable, ResourceId, Usage};
///
/// let mut t = ReservationTable::new();
/// t.reserve(ResourceId(3), 2);
/// t.reserve(ResourceId(0), 0);
/// t.reserve(ResourceId(3), 2); // duplicates collapse
/// assert_eq!(t.num_usages(), 2);
/// assert_eq!(t.length(), 3); // occupies cycles 0..=2
/// assert!(t.uses(ResourceId(3), 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ReservationTable {
    usages: Vec<Usage>,
}

impl ReservationTable {
    /// Creates an empty reservation table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from an iterator of `(resource, cycle)` pairs.
    pub fn from_usages<I>(usages: I) -> Self
    where
        I: IntoIterator<Item = (ResourceId, u32)>,
    {
        let mut t = Self::new();
        for (r, c) in usages {
            t.reserve(r, c);
        }
        t
    }

    /// Records that `resource` is reserved in `cycle`.
    ///
    /// Duplicate reservations are ignored, matching the paper's model in
    /// which an entry either is or is not present.
    pub fn reserve(&mut self, resource: ResourceId, cycle: u32) {
        let u = Usage::new(resource, cycle);
        match self.usages.binary_search(&u) {
            Ok(_) => {}
            Err(pos) => self.usages.insert(pos, u),
        }
    }

    /// Removes the reservation of `resource` in `cycle`, if present.
    /// Returns `true` if a usage was removed.
    pub fn release(&mut self, resource: ResourceId, cycle: u32) -> bool {
        let u = Usage::new(resource, cycle);
        match self.usages.binary_search(&u) {
            Ok(pos) => {
                self.usages.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Returns `true` if `resource` is reserved in `cycle`.
    pub fn uses(&self, resource: ResourceId, cycle: u32) -> bool {
        self.usages
            .binary_search(&Usage::new(resource, cycle))
            .is_ok()
    }

    /// The usages, sorted by `(resource, cycle)`.
    pub fn usages(&self) -> &[Usage] {
        &self.usages
    }

    /// Number of usages (reserved entries) in the table.
    pub fn num_usages(&self) -> usize {
        self.usages.len()
    }

    /// Returns `true` if the operation reserves no resource at all.
    pub fn is_empty(&self) -> bool {
        self.usages.is_empty()
    }

    /// The number of columns the table occupies: one past the last reserved
    /// cycle, or zero for an empty table.
    pub fn length(&self) -> u32 {
        self.usages.iter().map(|u| u.cycle + 1).max().unwrap_or(0)
    }

    /// The *usage set* of `resource`: the sorted cycles in which this
    /// operation reserves it (paper §3: the set `X_i`).
    pub fn usage_set(&self, resource: ResourceId) -> Vec<u32> {
        self.usages
            .iter()
            .filter(|u| u.resource == resource)
            .map(|u| u.cycle)
            .collect()
    }

    /// Iterates over the distinct resources this table touches, in id order.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        let mut last = None;
        self.usages.iter().filter_map(move |u| {
            if last == Some(u.resource) {
                None
            } else {
                last = Some(u.resource);
                Some(u.resource)
            }
        })
    }

    /// Returns a copy of this table with every usage shifted `delta` cycles
    /// later.
    pub fn shifted(&self, delta: u32) -> ReservationTable {
        ReservationTable {
            usages: self
                .usages
                .iter()
                .map(|u| Usage::new(u.resource, u.cycle + delta))
                .collect(),
        }
    }

    /// Returns the time-reversed table: usage at cycle `c` maps to
    /// `length() - 1 - c`. Used to build reverse automata.
    pub fn reversed(&self) -> ReservationTable {
        let len = self.length();
        let mut t = ReservationTable::new();
        for u in &self.usages {
            t.reserve(u.resource, len - 1 - u.cycle);
        }
        t
    }

    /// Returns `true` if issuing `other` exactly `latency` cycles after
    /// `self` creates a simultaneous use of some shared resource.
    ///
    /// Negative latencies mean `other` issues *before* `self`.
    pub fn collides_at(&self, other: &ReservationTable, latency: i64) -> bool {
        // Both lists are sorted by (resource, cycle); merge-scan.
        for u in &self.usages {
            let want = i64::from(u.cycle) - latency;
            if want < 0 {
                continue;
            }
            let Ok(want) = u32::try_from(want) else {
                continue;
            };
            if other.uses(u.resource, want) {
                return true;
            }
        }
        false
    }
}

impl FromIterator<(ResourceId, u32)> for ReservationTable {
    fn from_iter<I: IntoIterator<Item = (ResourceId, u32)>>(iter: I) -> Self {
        Self::from_usages(iter)
    }
}

impl Extend<(ResourceId, u32)> for ReservationTable {
    fn extend<I: IntoIterator<Item = (ResourceId, u32)>>(&mut self, iter: I) {
        for (r, c) in iter {
            self.reserve(r, c);
        }
    }
}

impl fmt::Display for ReservationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, u) in self.usages.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ResourceId {
        ResourceId(i)
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut t = ReservationTable::new();
        t.reserve(r(1), 4);
        assert!(t.uses(r(1), 4));
        assert!(t.release(r(1), 4));
        assert!(!t.uses(r(1), 4));
        assert!(!t.release(r(1), 4));
        assert!(t.is_empty());
    }

    #[test]
    fn duplicates_collapse() {
        let t = ReservationTable::from_usages([(r(0), 0), (r(0), 0), (r(0), 1)]);
        assert_eq!(t.num_usages(), 2);
    }

    #[test]
    fn length_is_one_past_last_cycle() {
        let t = ReservationTable::from_usages([(r(0), 0), (r(4), 7)]);
        assert_eq!(t.length(), 8);
        assert_eq!(ReservationTable::new().length(), 0);
    }

    #[test]
    fn usage_set_extracts_cycles_of_one_resource() {
        let t = ReservationTable::from_usages([(r(3), 2), (r(3), 5), (r(3), 3), (r(4), 6)]);
        assert_eq!(t.usage_set(r(3)), vec![2, 3, 5]);
        assert_eq!(t.usage_set(r(9)), Vec::<u32>::new());
    }

    #[test]
    fn resources_are_deduped_in_order() {
        let t = ReservationTable::from_usages([(r(2), 0), (r(2), 1), (r(5), 0), (r(1), 3)]);
        let rs: Vec<_> = t.resources().collect();
        assert_eq!(rs, vec![r(1), r(2), r(5)]);
    }

    #[test]
    fn shifted_moves_all_usages() {
        let t = ReservationTable::from_usages([(r(0), 0), (r(1), 2)]);
        let s = t.shifted(3);
        assert!(s.uses(r(0), 3));
        assert!(s.uses(r(1), 5));
        assert_eq!(s.num_usages(), 2);
    }

    #[test]
    fn reversed_mirrors_cycles() {
        let t = ReservationTable::from_usages([(r(0), 0), (r(1), 2)]);
        let rev = t.reversed();
        assert!(rev.uses(r(0), 2));
        assert!(rev.uses(r(1), 0));
        assert_eq!(rev.reversed(), t);
    }

    #[test]
    fn collides_at_detects_shared_resource_overlap() {
        // A uses r0@0; B uses r0@1. B issued 1 cycle before A collides:
        // A@t uses r0 at t, B@(t-1) uses r0 at t. So collides_at(A, B, -1)?
        // collides_at(self=A, other=B, latency): other issues `latency`
        // cycles after self. A@0, B@latency: collision iff 0 = latency + 1,
        // i.e. latency = -1.
        let a = ReservationTable::from_usages([(r(0), 0)]);
        let b = ReservationTable::from_usages([(r(0), 1)]);
        assert!(a.collides_at(&b, -1));
        assert!(!a.collides_at(&b, 0));
        assert!(!a.collides_at(&b, 1));
        assert!(b.collides_at(&a, 1));
    }

    #[test]
    fn self_collision_at_zero() {
        let a = ReservationTable::from_usages([(r(0), 0)]);
        assert!(a.collides_at(&a, 0));
    }

    #[test]
    fn disjoint_resources_never_collide() {
        let a = ReservationTable::from_usages([(r(0), 0), (r(1), 1)]);
        let b = ReservationTable::from_usages([(r(2), 0), (r(3), 1)]);
        for lat in -4..=4 {
            assert!(!a.collides_at(&b, lat));
        }
    }

    #[test]
    fn display_is_compact() {
        let t = ReservationTable::from_usages([(r(0), 0), (r(1), 2)]);
        assert_eq!(t.to_string(), "{r0@0, r1@2}");
    }
}
