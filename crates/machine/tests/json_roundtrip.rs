//! JSON (de)serialization round-trips for machine descriptions, using
//! the in-tree `json` module (no external serialization dependencies).

#![cfg(feature = "json")]

use rmd_machine::json::{from_json, to_json, JsonError};
use rmd_machine::models::all_machines;
use rmd_machine::MachineError;

#[test]
fn models_round_trip_through_json() {
    for m in all_machines() {
        let text = to_json(&m);
        let back = from_json(&text).expect("deserialize");
        assert_eq!(m, back, "{}", m.name());
        // Derived state (the name index) must be rebuilt on deserialize.
        for (id, op) in m.ops() {
            assert_eq!(back.op_by_name(op.name()), Some(id));
        }
    }
}

#[test]
fn invalid_json_machines_are_rejected() {
    // An operation with an out-of-range resource id must fail validation
    // at deserialization time, not at first use.
    let text = r#"{
        "name": "bad",
        "resources": [{"name": "r0"}],
        "operations": [{
            "name": "x",
            "table": {"usages": [{"resource": 7, "cycle": 0}]},
            "base": null,
            "weight": 1.0
        }]
    }"#;
    match from_json(text) {
        Err(JsonError::Invalid(MachineError::UnknownResource { .. })) => {}
        other => panic!("undeclared resource must be rejected, got {other:?}"),
    }
}

#[test]
fn malformed_json_reports_syntax_errors() {
    for bad in ["", "{", "{\"name\": }", "[1,2,", "{\"a\":1}trailing"] {
        match from_json(bad) {
            Err(JsonError::Syntax { .. }) => {}
            other => panic!("expected syntax error for {bad:?}, got {other:?}"),
        }
    }
}
