//! Table-driven parser diagnostics over malformed `.mdl` inputs.
//!
//! Each case takes the shipped `machines/vliw_dsp.mdl` description and
//! applies one targeted source mutation — an unknown keyword, a
//! duplicate resource declaration, an out-of-range cycle, and friends —
//! then asserts the parser rejects it with the right [`ParseErrorKind`],
//! a span pointing at the mutated line, and a human-readable message.

use rmd_machine::mdl::{parse_machine, ParseError, ParseErrorKind};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../machines/vliw_dsp.mdl"
);

fn fixture_source() -> String {
    std::fs::read_to_string(FIXTURE).expect("machines/vliw_dsp.mdl ships with the repo")
}

struct Case {
    name: &'static str,
    /// Unique substring of the pristine fixture to replace (first
    /// occurrence only, so repeated lines stay unambiguous).
    find: &'static str,
    replace: &'static str,
    /// Expected 1-based line of the reported span.
    line: u32,
    /// Expected 1-based column, if the case pins one down.
    column: Option<u32>,
    /// Substring the rendered diagnostic must contain.
    message: &'static str,
    /// Kind-level predicate.
    kind: fn(&ParseErrorKind) -> bool,
}

const CASES: &[Case] = &[
    Case {
        name: "unknown keyword in the resources header",
        find: "resources {",
        replace: "resourcez {",
        line: 6,
        column: Some(5),
        message: "expected `resources`",
        kind: |k| matches!(k, ParseErrorKind::Expected { .. }),
    },
    Case {
        name: "unknown keyword in place of `op`",
        find: "op store {",
        replace: "operation store {",
        line: 46,
        column: Some(5),
        message: "expected `op`",
        kind: |k| matches!(k, ParseErrorKind::Expected { .. }),
    },
    Case {
        name: "duplicate resource declaration",
        find: "mem_port;",
        replace: "mem_port; coeff_bus;",
        // Semantic errors point at the offending (re)declaration.
        line: 13,
        column: Some(19),
        message: "duplicate resource name `coeff_bus`",
        kind: |k| matches!(k, ParseErrorKind::Semantic(_)),
    },
    Case {
        name: "cycle too large for a u32",
        find: "use sreg_wr @ 12;",
        replace: "use sreg_wr @ 4294967296;",
        line: 38,
        column: Some(23),
        message: "expected integer, found number `4294967296`",
        kind: |k| matches!(k, ParseErrorKind::Expected { .. }),
    },
    Case {
        name: "empty cycle range",
        find: "use sdiv @ 0..11;",
        replace: "use sdiv @ 11..11;",
        line: 37,
        column: None,
        message: "empty cycle range",
        kind: |k| matches!(k, ParseErrorKind::EmptyRange),
    },
    Case {
        name: "use of an undeclared resource",
        find: "use mem_port @ 1",
        replace: "use mem_bus @ 1",
        line: 42,
        column: None,
        message: "unknown resource `mem_bus`",
        kind: |k| matches!(k, ParseErrorKind::UnknownResource(n) if n == "mem_bus"),
    },
];

fn mutated_error(case: &Case) -> ParseError {
    let src = fixture_source();
    assert!(
        src.contains(case.find),
        "{}: fixture no longer contains `{}` — update the case",
        case.name,
        case.find
    );
    let mutated = src.replacen(case.find, case.replace, 1);
    match parse_machine(&mutated) {
        Err(e) => e,
        Ok(_) => panic!("{}: malformed input was accepted", case.name),
    }
}

#[test]
fn pristine_fixture_parses_cleanly() {
    let (m, groups) = parse_machine(&fixture_source()).expect("shipped model must parse");
    assert_eq!(m.name(), "vliw-dsp");
    // `load` expands to two alternatives; every other op is singleton.
    assert_eq!(m.num_operations(), 7);
    assert_eq!(groups.group_of_base("load").map(<[_]>::len), Some(2));
}

#[test]
fn malformed_fixtures_report_kind_span_and_message() {
    for case in CASES {
        let e = mutated_error(case);
        assert!(
            (case.kind)(e.kind()),
            "{}: wrong kind: {:?}",
            case.name,
            e.kind()
        );
        assert_eq!(
            e.span().line,
            case.line,
            "{}: span line (error: {e})",
            case.name
        );
        if let Some(col) = case.column {
            assert_eq!(e.span().column, col, "{}: span column ({e})", case.name);
        }
        let rendered = e.to_string();
        assert!(
            rendered.contains(case.message),
            "{}: diagnostic `{rendered}` does not mention `{}`",
            case.name,
            case.message
        );
    }
}

#[test]
fn semantic_errors_survive_the_parse_error_conversion() {
    // `parse_machine` funnels expansion failures (MachineError) into
    // ParseErrorKind::Semantic; the message must keep the underlying
    // cause rather than flattening to a generic "invalid machine", and
    // the span must point at the redeclaration.
    let case = CASES
        .iter()
        .find(|c| c.name == "duplicate resource declaration")
        .expect("case exists");
    let e = mutated_error(case);
    assert_eq!(
        e.to_string(),
        "13:19: invalid machine: duplicate resource name `coeff_bus`"
    );
}

#[test]
fn every_parser_error_carries_a_nonempty_span() {
    // Regression: semantic (post-parse) errors used to carry the default
    // all-zero span, and errors at end-of-input a zero-length one. Every
    // diagnostic must now name a real source location.
    let mut sources: Vec<String> = CASES
        .iter()
        .map(|c| fixture_source().replacen(c.find, c.replace, 1))
        .collect();
    sources.extend(
        [
            // Truncated input: the error sits at Eof.
            r#"machine "m" { resources { r; }"#,
            // An operation with no usages fails expansion (semantic).
            r#"machine "m" { resources { r; } op idle { } op x { use r @ 0; } }"#,
            // No operations at all (semantic; falls back to the name span).
            r#"machine "m" { resources { r; } }"#,
        ]
        .map(str::to_owned),
    );
    for src in &sources {
        let e = parse_machine(src).expect_err("all inputs here are malformed");
        let s = e.span();
        assert!(
            !s.is_empty() && s.line >= 1 && s.column >= 1,
            "error `{e}` carries an empty span {s:?} for source: {src}"
        );
    }
}

#[test]
fn huge_weights_round_trip_through_printer_and_parser() {
    // Regression: weights at or above 2^32 print as plain digit runs,
    // which the lexer used to reject with NumberOverflow — a
    // printer/parser disagreement. They now lex as floats.
    let src = r#"machine "m" {
        resources { r; }
        op hot weight 100000000000000000000 { use r @ 0; }
        op alt_hot weight 8589934592 alt { { use r @ 0; } { use r @ 1; } }
    }"#;
    let (m, _) = parse_machine(src).expect("huge weights parse");
    let printed = rmd_machine::mdl::print(&m);
    let (m2, _) = parse_machine(&printed).expect("printed output reparses");
    assert_eq!(m, m2);
    assert!((m.operations()[0].weight() - 1e20).abs() < 1e5);
}
