//! JSON (de)serialization round-trips for machine descriptions.

#![cfg(feature = "serde")]

use rmd_machine::models::all_machines;
use rmd_machine::MachineDescription;

#[test]
fn models_round_trip_through_json() {
    for m in all_machines() {
        let json = serde_json::to_string(&m).expect("serialize");
        let back: MachineDescription = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(m, back, "{}", m.name());
        // Derived state (the name index) must be rebuilt on deserialize.
        for (id, op) in m.ops() {
            assert_eq!(back.op_by_name(op.name()), Some(id));
        }
    }
}

#[test]
fn invalid_json_machines_are_rejected() {
    // An operation with an out-of-range resource id must fail validation
    // at deserialization time, not at first use.
    let json = r#"{
        "name": "bad",
        "resources": [{"name": "r0"}],
        "operations": [{
            "name": "x",
            "table": {"usages": [{"resource": 7, "cycle": 0}]},
            "base": null,
            "weight": 1.0
        }]
    }"#;
    let r: Result<MachineDescription, _> = serde_json::from_str(json);
    assert!(r.is_err(), "undeclared resource must be rejected");
}
