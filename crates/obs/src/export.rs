//! Event and registry exporters: JSONL, Chrome trace-event JSON, and a
//! compact registry rendering.
//!
//! JSON is emitted by hand — this crate is dependency-free on purpose —
//! with full string escaping, so the output is valid JSON for any
//! category/name/argument content. All formats are deterministic
//! functions of their input (keys in fixed order, no clocks), which is
//! what makes the Chrome-trace golden test possible.

use crate::metrics::MetricRegistry;
use crate::span::{Event, EventKind};
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders events as JSON Lines: one self-contained JSON object per
/// event, oldest first. Keys: `cat`, `name`, `ph` (`"span"` or
/// `"instant"`), `ts_ns`, `dur_ns`, `tid`, and `args` (an object,
/// present only when the event carries an argument).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str("{\"cat\":");
        push_json_string(&mut out, e.cat);
        out.push_str(",\"name\":");
        push_json_string(&mut out, e.name);
        out.push_str(",\"ph\":");
        push_json_string(&mut out, e.kind.tag());
        let _ = write!(out, ",\"ts_ns\":{},\"dur_ns\":{},\"tid\":{}", e.start_ns, e.dur_ns, e.tid);
        if let Some((k, v)) = e.arg {
            out.push_str(",\"args\":{");
            push_json_string(&mut out, k);
            let _ = write!(out, ":{v}");
            out.push('}');
        }
        out.push_str("}\n");
    }
    out
}

/// Microseconds with nanosecond precision, rendered deterministically
/// (`123.456`), as the Chrome trace-event format expects for `ts`/`dur`.
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

/// Renders events in the Chrome trace-event format (the JSON object
/// form), loadable in Perfetto or `chrome://tracing`.
///
/// Spans become complete events (`"ph":"X"`), instants become
/// thread-scoped instant events (`"ph":"i"`, `"s":"t"`). Timestamps are
/// microseconds with three decimals; `pid` is always 1 (one process),
/// `tid` is the recorder's thread index.
pub fn events_to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str("{\"name\":");
        push_json_string(&mut out, e.name);
        out.push_str(",\"cat\":");
        push_json_string(&mut out, e.cat);
        match e.kind {
            EventKind::Span => {
                out.push_str(",\"ph\":\"X\",\"ts\":");
                push_us(&mut out, e.start_ns);
                out.push_str(",\"dur\":");
                push_us(&mut out, e.dur_ns);
            }
            EventKind::Instant => {
                out.push_str(",\"ph\":\"i\",\"ts\":");
                push_us(&mut out, e.start_ns);
                out.push_str(",\"s\":\"t\"");
            }
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", e.tid);
        if let Some((k, v)) = e.arg {
            out.push_str(",\"args\":{");
            push_json_string(&mut out, k);
            let _ = write!(out, ":{v}");
            out.push('}');
        }
        out.push('}');
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Renders a registry as one compact JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,p50,p99}}}`.
///
/// Histogram `min`/`max`/quantiles are 0 for empty histograms; keys are
/// sorted (BTreeMap order), so equal registries render identically.
pub fn registry_to_json(reg: &MetricRegistry) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (k, v)) in reg.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, k);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in reg.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, k);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in reg.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, k);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.approx_quantile(0.50),
            h.approx_quantile(0.99),
        );
    }
    out.push_str("}}");
    out
}

/// Appends a metric name in Prometheus form: every character outside
/// `[a-zA-Z0-9_:]` (dots, dashes, …) becomes `_`, and a leading digit
/// gains a `_` prefix. Deterministic and idempotent.
fn push_prom_name(out: &mut String, name: &str) {
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        out.push('_');
    }
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
}

/// Renders a registry in the Prometheus / OpenMetrics text exposition
/// format.
///
/// Counters and gauges become one `# TYPE` line plus one sample each.
/// Histograms are exposed as summaries: `<name>_count`, `<name>_sum`,
/// and `{quantile="0.5"}` / `{quantile="0.99"}` samples (the log2
/// bucket upper bounds from [`Histogram::approx_quantile`]), plus
/// `<name>_min` / `<name>_max` gauges since the registry tracks them
/// exactly. Metric names are sanitized (`serve.latency_ns` →
/// `serve_latency_ns`); keys iterate in BTreeMap order, so equal
/// registries render identically — same determinism contract as
/// [`registry_to_json`].
///
/// [`Histogram::approx_quantile`]: crate::Histogram::approx_quantile
pub fn registry_to_prom(reg: &MetricRegistry) -> String {
    let mut out = String::new();
    for (k, v) in reg.counters() {
        out.push_str("# TYPE ");
        push_prom_name(&mut out, k);
        out.push_str(" counter\n");
        push_prom_name(&mut out, k);
        let _ = writeln!(out, " {v}");
    }
    for (k, v) in reg.gauges() {
        out.push_str("# TYPE ");
        push_prom_name(&mut out, k);
        out.push_str(" gauge\n");
        push_prom_name(&mut out, k);
        let _ = writeln!(out, " {v}");
    }
    for (k, h) in reg.histograms() {
        out.push_str("# TYPE ");
        push_prom_name(&mut out, k);
        out.push_str(" summary\n");
        for (q, v) in [(0.5, h.approx_quantile(0.50)), (0.99, h.approx_quantile(0.99))] {
            push_prom_name(&mut out, k);
            let _ = writeln!(out, "{{quantile=\"{q}\"}} {v}");
        }
        push_prom_name(&mut out, k);
        let _ = writeln!(out, "_sum {}", h.sum());
        push_prom_name(&mut out, k);
        let _ = writeln!(out, "_count {}", h.count());
        push_prom_name(&mut out, k);
        let _ = writeln!(out, "_min {}", h.min().unwrap_or(0));
        push_prom_name(&mut out, k);
        let _ = writeln!(out, "_max {}", h.max().unwrap_or(0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cat: "reduction",
                name: "genset",
                kind: EventKind::Span,
                start_ns: 1500,
                dur_ns: 2500,
                tid: 0,
                arg: Some(("pairs", 42)),
            },
            Event {
                cat: "sched",
                name: "attempt",
                kind: EventKind::Span,
                start_ns: 5000,
                dur_ns: 100,
                tid: 1,
                arg: None,
            },
            Event {
                cat: "analyze",
                name: "violation",
                kind: EventKind::Instant,
                start_ns: 6001,
                dur_ns: 0,
                tid: 0,
                arg: Some(("event", 3)),
            },
        ]
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let s = events_to_jsonl(&sample_events());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"cat\":\"reduction\",\"name\":\"genset\",\"ph\":\"span\",\
             \"ts_ns\":1500,\"dur_ns\":2500,\"tid\":0,\"args\":{\"pairs\":42}}"
        );
        assert!(lines[1].contains("\"ph\":\"span\""));
        assert!(!lines[1].contains("args"));
        assert!(lines[2].contains("\"ph\":\"instant\""));
    }

    #[test]
    fn chrome_trace_golden() {
        // Pinned byte-for-byte: Perfetto compatibility depends on the
        // exact field set, and the profile-smoke CI job parses this.
        let expected = "\
{\"traceEvents\":[
{\"name\":\"genset\",\"cat\":\"reduction\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2.500,\"pid\":1,\"tid\":0,\"args\":{\"pairs\":42}},
{\"name\":\"attempt\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":5.000,\"dur\":0.100,\"pid\":1,\"tid\":1},
{\"name\":\"violation\",\"cat\":\"analyze\",\"ph\":\"i\",\"ts\":6.001,\"s\":\"t\",\"pid\":1,\"tid\":0,\"args\":{\"event\":3}}
],\"displayTimeUnit\":\"ns\"}
";
        assert_eq!(events_to_chrome_trace(&sample_events()), expected);
    }

    #[test]
    fn empty_event_list_is_still_valid() {
        assert_eq!(events_to_jsonl(&[]), "");
        assert_eq!(
            events_to_chrome_trace(&[]),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn prom_exposition_golden() {
        // Pinned byte-for-byte like the Chrome trace: scrapers parse
        // this text, so the exact line set is the contract.
        let mut reg = MetricRegistry::new();
        reg.inc("serve.ok", 3);
        reg.inc("serve.errors.timeout", 1);
        reg.set_gauge("serve.machines_cached", 2);
        reg.observe("serve.latency_ns", 10);
        reg.observe("serve.latency_ns", 1000);
        let expected = "\
# TYPE serve_errors_timeout counter
serve_errors_timeout 1
# TYPE serve_ok counter
serve_ok 3
# TYPE serve_machines_cached gauge
serve_machines_cached 2
# TYPE serve_latency_ns summary
serve_latency_ns{quantile=\"0.5\"} 15
serve_latency_ns{quantile=\"0.99\"} 1000
serve_latency_ns_sum 1010
serve_latency_ns_count 2
serve_latency_ns_min 10
serve_latency_ns_max 1000
";
        assert_eq!(registry_to_prom(&reg), expected);
    }

    #[test]
    fn prom_names_are_sanitized() {
        let mut reg = MetricRegistry::new();
        reg.inc("bench.cydra5-subset.loops", 4);
        reg.set_gauge("1weird name", 9);
        let s = registry_to_prom(&reg);
        assert!(s.contains("bench_cydra5_subset_loops 4"), "{s}");
        assert!(s.contains("_1weird_name 9"), "{s}");
        assert_eq!(registry_to_prom(&MetricRegistry::new()), "");
    }

    #[test]
    fn registry_renders_sorted_and_compact() {
        let mut reg = MetricRegistry::new();
        reg.inc("b.calls", 2);
        reg.inc("a.calls", 1);
        reg.set_gauge("cache.entries", 7);
        reg.observe("lat", 10);
        reg.observe("lat", 1000);
        let s = registry_to_json(&reg);
        assert_eq!(
            s,
            "{\"counters\":{\"a.calls\":1,\"b.calls\":2},\
             \"gauges\":{\"cache.entries\":7},\
             \"histograms\":{\"lat\":{\"count\":2,\"sum\":1010,\"min\":10,\
             \"max\":1000,\"p50\":15,\"p99\":1000}}}"
        );
    }
}
