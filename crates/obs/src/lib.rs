//! `rmd-obs` — the observability layer of the rmd workspace.
//!
//! The paper's whole evaluation (Tables 4–6, Figure 12) is built from
//! measurements: work units per query function, per-II scheduler effort,
//! reduction-pipeline cost. This crate provides the shared, dependency-free
//! substrate those measurements flow through:
//!
//! * **Spans and events** ([`span`], [`instant`], [`Event`]) — a
//!   lightweight tracing API recording into *thread-local ring buffers*.
//!   Recording is gated by a single process-global flag
//!   ([`set_enabled`] / [`is_enabled`]); with tracing off (the default)
//!   a [`span`] call is one relaxed atomic load and constructs nothing,
//!   so release hot paths pay essentially zero — the same philosophy as
//!   the `debug_assertions`-gated `ProtocolChecker` in `rmd-query`.
//! * **Metrics** ([`MetricRegistry`], [`Histogram`]) — monotonic
//!   counters, gauges, and log2-bucketed histograms whose `merge` is
//!   associative and commutative with the empty registry as identity,
//!   so the `rmd-bench::parallel` work-stealing workers can each record
//!   privately and merge deterministically by index.
//! * **Work units** ([`WorkCounters`], [`FnCounter`], [`QueryFn`]) —
//!   the paper's §8 accounting ("one unit of work handles a single
//!   resource usage or a single non-empty word"), shared by every query
//!   backend and exportable into a [`MetricRegistry`].
//! * **Exporters** ([`export`]) — JSONL event streams and Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`), plus
//!   a compact JSON rendering of a registry.
//!
//! This crate deliberately has **no dependencies** (not even the
//! workspace's serde shim): every other crate, including the innermost
//! query hot paths, can depend on it without cycles or baggage.
//!
//! # Example
//!
//! ```
//! use rmd_obs as obs;
//!
//! obs::set_enabled(true);
//! {
//!     let _g = obs::span_with("reduction", "genset", "pairs", 42);
//!     // ... work ...
//! } // span recorded on drop
//! obs::instant("reduction", "verified");
//! let events = obs::drain_events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].name, "genset"); // recorded when the guard dropped
//! obs::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
mod metrics;
mod span;
mod work;

pub use metrics::{Histogram, MetricRegistry, HIST_BUCKETS};
pub use span::{
    drain_events, dropped_events, instant, instant_with, is_enabled, now_ns, set_enabled,
    set_ring_capacity, span, span_with, Event, EventKind, SpanGuard,
};
pub use work::{FnCounter, QueryFn, WorkCounters};
