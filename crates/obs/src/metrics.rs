//! Counters, gauges, and log2-bucketed histograms with an associative,
//! commutative `merge` — the property the parallel bench runner needs to
//! record per-worker metrics privately and combine them in any grouping
//! without changing the totals.

use std::collections::BTreeMap;
use std::fmt;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)` — 65 buckets cover `u64`.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, work units, …).
///
/// Exact `count`/`sum`/`min`/`max` ride alongside the buckets, so means
/// are exact and only percentiles are approximate (to the bucket upper
/// bound). [`merge`](Histogram::merge) is associative and commutative
/// with the empty histogram as identity — each field merges by plain
/// addition or min/max.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    /// `u64::MAX` when empty: the identity element for `min`.
    min: u64,
    /// `0` when empty: the identity element for `max`.
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive `[lo, hi]` value range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HIST_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HIST_BUCKETS);
        if i == 0 {
            (0, 0)
        } else if i == HIST_BUCKETS - 1 {
            (1 << (i - 1), u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i` (0 when out of range).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Approximate `p`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// first bucket at which the cumulative count reaches `p · count`,
    /// clamped to the observed `max`. Returns 0 when empty.
    pub fn approx_quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self`. Associative, commutative, identity =
    /// empty histogram.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(empty)");
        }
        write!(
            f,
            "n={} mean={:.1} min={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.approx_quantile(0.50),
            self.approx_quantile(0.99),
            self.max,
        )
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Keys are stored in `BTreeMap`s so iteration — and therefore every
/// exporter — is deterministic. [`merge`](MetricRegistry::merge)
/// combines per-worker registries: counters add, gauges take the
/// maximum (the only idempotent/associative choice that needs no
/// timestamps), histograms merge bucket-wise. All three are associative
/// and commutative with the empty registry as identity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `by` to the monotonic counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Sets gauge `name` to `v`. Merging gauges takes the maximum.
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Records a sample into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Merges a whole histogram into `name` (creating it if absent).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if let Some(mine) = self.histograms.get_mut(name) {
            mine.merge(h);
        } else {
            self.histograms.insert(name.to_owned(), *h);
        }
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`: counters add, gauges max, histograms
    /// merge. Associative and commutative; identity = empty registry.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (k, &v) in &other.counters {
            self.inc(k, v);
        }
        for (k, &v) in &other.gauges {
            let cur = self.gauges.get(k).copied().unwrap_or(0);
            self.gauges.insert(k.clone(), cur.max(v));
        }
        for (k, h) in &other.histograms {
            self.merge_histogram(k, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn record_tracks_exact_stats() {
        let mut h = Histogram::new();
        for v in [5u64, 0, 17, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 27);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(17));
        assert!((h.mean() - 6.75).abs() < 1e-12);
        assert_eq!(h.bucket(0), 1); // the 0
        assert_eq!(h.bucket(3), 2); // the two 5s in [4,8)
        assert_eq!(h.bucket(5), 1); // 17 in [16,32)
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        assert_eq!(h.approx_quantile(0.5), 15); // [8,16) upper bound
        assert_eq!(h.approx_quantile(1.0), 1000); // clamped to max
        assert_eq!(Histogram::new().approx_quantile(0.5), 0);
    }

    #[test]
    fn empty_histogram_is_merge_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let mut left = h;
        left.merge(&Histogram::new());
        let mut right = Histogram::new();
        right.merge(&h);
        assert_eq!(left, h);
        assert_eq!(right, h);
    }

    #[test]
    fn registry_merge_counters_add_gauges_max_histograms_merge() {
        let mut a = MetricRegistry::new();
        a.inc("c", 2);
        a.set_gauge("g", 7);
        a.observe("h", 1);
        let mut b = MetricRegistry::new();
        b.inc("c", 3);
        b.inc("only_b", 1);
        b.set_gauge("g", 5);
        b.observe("h", 9);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("g"), Some(7));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 10);
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let mut r = MetricRegistry::new();
        r.inc("zeta", 1);
        r.inc("alpha", 1);
        r.inc("mid", 1);
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
